"""Noise-aware routing: maximise estimated fidelity instead of minimising SWAPs.

Run with::

    python examples/noise_aware_routing.py

The weighted-MaxSAT objective (the paper's Q6 experiment) weights every
potential SWAP and every gate-execution edge by its log-infidelity under a
synthetic calibration, so the optimal model maximises the product of gate
fidelities.  On a device with strongly non-uniform error rates this chooses a
different layout than plain SWAP minimisation.
"""

from repro import NoiseAwareSatMapRouter, SatMapRouter, random_circuit
from repro.core.satmap import _routed_fidelity
from repro.hardware.noise import NoiseModel
from repro.hardware.topologies import reduced_tokyo_architecture


def main() -> None:
    architecture = reduced_tokyo_architecture(6)
    # A deliberately skewed calibration: some edges are an order of magnitude
    # worse than others, as on real hardware snapshots.
    noise = NoiseModel.synthetic(architecture, seed=2019, low=0.004, high=0.15)
    circuit = random_circuit(5, 12, seed=3, name="workload")

    print(f"Routing {circuit.name} ({circuit.num_two_qubit_gates} two-qubit gates) "
          f"onto {architecture.name}")
    print("Edge error rates:")
    for edge in architecture.edges:
        print(f"  {edge}: {noise.edge_error(*edge):.3f}")
    print()

    aware = NoiseAwareSatMapRouter(noise, slice_size=10, time_budget=30).route(
        circuit, architecture)
    oblivious = SatMapRouter(slice_size=10, time_budget=30).route(circuit, architecture)

    print(f"noise-aware     : {aware.summary()}")
    print(f"  estimated success probability: {aware.objective_value:.4f}")
    oblivious_fidelity = _routed_fidelity(oblivious.routed_circuit, noise)
    print(f"noise-oblivious : {oblivious.summary()}")
    print(f"  estimated success probability: {oblivious_fidelity:.4f}")
    print()
    if aware.objective_value >= oblivious_fidelity:
        print("The noise-aware objective found a routing with at least as high an "
              "estimated fidelity, as expected.")
    else:
        print("The anytime search stopped before beating the noise-oblivious routing; "
              "raise time_budget to close the gap.")


if __name__ == "__main__":
    main()
