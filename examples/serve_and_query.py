"""Serve routing over HTTP and query it: a full gateway round trip.

Starts a :class:`~repro.server.app.RoutingGateway` on a background thread
(the same app ``repro serve`` runs), then walks a
:class:`~repro.server.client.RoutingClient` through the whole surface:

1. health check and registry/device listings,
2. submitting jobs -- including an identical duplicate from a "second
   client" that dedups into the same solve,
3. long-polling for completion and fetching full results,
4. reading the Prometheus-style ``/metrics`` scrape,
5. graceful drain.

Run with::

    PYTHONPATH=src python examples/serve_and_query.py
"""

from __future__ import annotations

from repro.circuits.random_circuits import random_circuit
from repro.server import GatewayThread, RoutingClient
from repro.service import BatchRoutingService


def main() -> None:
    service = BatchRoutingService(mode="thread", time_budget=5.0)
    with GatewayThread(service=service, time_budget=5.0) as gateway:
        print(f"gateway listening on {gateway.url}\n")
        alice = RoutingClient(port=gateway.port, client_id="alice")
        bob = RoutingClient(port=gateway.port, client_id="bob")

        health = alice.health()
        print(f"health: {health['status']} "
              f"(server v{health['version']}, wire v{health['wire_version']})")
        routers = [entry["name"] for entry in alice.routers()]
        print(f"routers: {', '.join(routers)}")
        print(f"architectures: {', '.join(alice.architectures()[:6])}, ...\n")

        # Alice submits two distinct circuits; Bob submits a byte-identical
        # copy of the first one -- the gateway answers with the same job id
        # and the service solves it exactly once.
        shared = random_circuit(4, 10, seed=1, name="shared")
        extra = random_circuit(4, 8, seed=2, name="extra")
        ticket_a = alice.submit(shared, architecture="tokyo8",
                                router="satmap:slice_size=25", time_budget=5)
        ticket_b = bob.submit(shared, architecture="tokyo8",
                              router="satmap:slice_size=25", time_budget=5)
        ticket_c = alice.submit(extra, architecture="tokyo8",
                                router="sabre:seed=0")
        print(f"alice's job: {ticket_a['job_id'][:16]}... "
              f"({ticket_a['status']})")
        print(f"bob's copy:  {ticket_b['job_id'][:16]}... "
              f"deduplicated={ticket_b['deduplicated']}")

        for ticket in (ticket_a, ticket_c):
            result = alice.wait(ticket["job_id"], timeout=60)
            print(f"done: {result.summary()}")

        print("\nselected /metrics lines:")
        for line in alice.metrics_text().splitlines():
            if any(token in line for token in
                   ("submitted", "deduplicated", "completed", "cache_")):
                print(f"  {line}")

        stats = alice.stats()
        print(f"\nadmission: {stats['admission']['admitted']} admitted, "
              f"{stats['admission']['rejected_quota']} over quota")
        print("draining...")
        alice.drain()
    print("gateway drained and closed")


if __name__ == "__main__":
    main()
