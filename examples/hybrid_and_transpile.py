"""Hybrid routing plus post-routing transpilation and scheduling.

Run with::

    python examples/hybrid_and_transpile.py

This example walks the full compilation path a downstream user would take:

1. generate a QFT workload (the classic connectivity-hostile kernel);
2. route it three ways -- full SATMAP, the Section-IX hybrid mapper
   (optimal MaxSAT placement + SABRE routing), and plain SABRE;
3. decompose the inserted SWAPs to CNOTs, run the cleanup passes, and
   compare gate counts;
4. schedule each routed circuit and compare makespans; and
5. score every variant under a synthetic device calibration.

It demonstrates the parts of the library that sit around the core QMR
contribution: :mod:`repro.circuits.passes`, :mod:`repro.circuits.scheduling`,
:mod:`repro.hardware.calibration`, and :class:`repro.core.HybridSatMapRouter`.
"""

from repro.analysis.reporting import render_table
from repro.baselines import SabreRouter
from repro.circuits.named_circuits import qft_circuit
from repro.circuits.passes import decompose_swaps, default_cleanup_pipeline
from repro.circuits.scheduling import routing_latency_overhead, schedule_length
from repro.core import HybridSatMapRouter, SatMapRouter
from repro.hardware.calibration import DeviceCalibration
from repro.hardware.topologies import reduced_tokyo_architecture

SATMAP_BUDGET = 20.0


def main() -> None:
    architecture = reduced_tokyo_architecture(8)
    calibration = DeviceCalibration.synthetic(architecture, seed=11)
    workload = qft_circuit(6)
    print(f"Workload: {workload}")
    print(f"Device:   {architecture}")
    print()

    routers = {
        "SATMAP": SatMapRouter(slice_size=10, time_budget=SATMAP_BUDGET),
        "HYBRID": HybridSatMapRouter(time_budget=SATMAP_BUDGET),
        "SABRE": SabreRouter(),
    }

    rows = []
    routed_variants = {}
    for name, router in routers.items():
        result = router.route(workload, architecture)
        if not result.solved:
            rows.append([name, "-", "-", "-", "-", "-"])
            continue

        physical = decompose_swaps(result.routed_circuit)
        cleaned = default_cleanup_pipeline().run(physical)
        routed_variants[name] = cleaned

        overhead = routing_latency_overhead(workload, cleaned)
        rows.append([
            name,
            result.swap_count,
            cleaned.num_two_qubit_gates,
            cleaned.depth(),
            round(schedule_length(cleaned) / 1000.0, 2),
            round(overhead, 2),
        ])

    print(render_table(
        ["router", "swaps", "2q gates after cleanup", "depth",
         "makespan (us)", "latency overhead"],
        rows, title="QFT-6 on Tokyo-8: routing, transpilation, scheduling"))
    print()

    ranking = calibration.compare_routings(routed_variants)
    print(render_table(
        ["router", "estimated fidelity"],
        [[name, round(fidelity, 4)] for name, fidelity in ranking],
        title="Estimated success probability under a synthetic calibration"))
    print()
    print("SATMAP pays for its optimal swap count with compile time; the "
          "hybrid mapper recovers most of the gate-count benefit while only "
          "solving a single-step placement instance.")


if __name__ == "__main__":
    main()
