"""Quickstart: map and route a small circuit onto the IBM Tokyo layout.

Run with::

    python examples/quickstart.py

The example builds the paper's running example (Fig. 3), routes it onto a
4-qubit line and onto an 8-qubit Tokyo subgraph with SATMAP, prints the
optimal SWAP count, and shows the routed circuit as OpenQASM.
"""

from repro import QuantumCircuit, SatMapRouter, verify_routing
from repro.circuits.gates import cx
from repro.circuits.qasm import circuit_to_qasm
from repro.hardware.topologies import line_architecture, reduced_tokyo_architecture


def build_running_example() -> QuantumCircuit:
    """The circuit of Fig. 3(a): four CNOTs, all sharing logical qubit q0."""
    circuit = QuantumCircuit(4, name="running_example")
    circuit.extend([cx(0, 1), cx(0, 2), cx(3, 2), cx(0, 3)])
    return circuit


def main() -> None:
    circuit = build_running_example()
    print(f"Original circuit: {circuit}")
    print(f"Two-qubit interactions: {circuit.interaction_sequence()}")
    print()

    # The paper's Fig. 3(b) device is a 4-qubit line; the optimal solution
    # inserts exactly one SWAP.
    line = line_architecture(4)
    router = SatMapRouter(time_budget=30)
    result = router.route(circuit, line)
    print(f"On {line.name}: {result.summary()}")
    print(f"  initial mapping (logical -> physical): {result.initial_mapping}")
    print(f"  added CNOTs: {result.added_cnots}")
    swaps = verify_routing(circuit, result.routed_circuit, result.initial_mapping, line)
    print(f"  independently verified ({swaps} SWAPs)")
    print()

    # On a better-connected Tokyo subgraph no SWAPs are needed at all.
    tokyo8 = reduced_tokyo_architecture(8)
    result = SatMapRouter(time_budget=30).route(circuit, tokyo8)
    print(f"On {tokyo8.name}: {result.summary()}")
    print()
    print("Routed circuit as OpenQASM 2.0:")
    print(circuit_to_qasm(result.routed_circuit))


if __name__ == "__main__":
    main()
