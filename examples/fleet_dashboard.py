"""Operating a fleet: SLOs, events, tail sampling, `repro top`, profiling.

Starts the same sharded fleet as ``examples/fleet_demo.py`` but with the
full operational stack switched on, then walks the endpoints an operator
would actually use during an incident:

1. declare an SLO on the command line the fleet evaluates per shard and
   the dispatcher merges into one fleet-wide verdict (``/v1/slo``);
2. route a batch, then render one ``repro top`` dashboard frame -- the
   same plain-text screen ``repro top --url ...`` repaints live;
3. kill a worker and read the dispatcher's structured event log
   (``/v1/events``) to see the restart recorded with its shard and pid;
4. attach the sampling profiler to every shard at once
   (``POST /v1/admin/profile``) and print the hottest collapsed stacks;
5. show the tail sampler's verdicts: errors/deadline/slow traces are
   always kept, fast ones are sampled at the configured rate.

Run with::

    PYTHONPATH=src python examples/fleet_dashboard.py
"""

from __future__ import annotations

import os
import signal
import sys
import tempfile
import time

from repro.circuits.random_circuits import random_circuit
from repro.cluster import FleetConfig, FleetThread
from repro.obs import read_events, read_traces, run_top
from repro.server import RoutingClient


def wait_for_restart(client: RoutingClient, shard: int, old_pid: int) -> dict:
    deadline = time.monotonic() + 30.0
    while time.monotonic() < deadline:
        worker = next(entry for entry
                      in client.cluster()["fleet"]["worker_detail"]
                      if entry["shard"] == shard)
        if worker["alive"] and worker["pid"] != old_pid:
            return worker
        time.sleep(0.2)
    raise RuntimeError(f"shard {shard} did not restart")


def main() -> None:
    with tempfile.TemporaryDirectory(prefix="fleet-dash-") as scratch:
        config = FleetConfig(
            workers=2, cache_dir=os.path.join(scratch, "cache"),
            time_budget=5.0, pool_mode="thread", pool_workers=2,
            health_interval=0.2,
            # The operational stack: a p95<2s / 99% availability objective
            # evaluated over a rolling window, structured events persisted
            # as JSONL, and tail sampling that keeps every error/deadline/
            # slow trace but only 30% of the fast ones.
            slos=({"route": "*", "quantile": 0.95, "latency_target": 2.0,
                   "availability_target": 0.99},),
            events_dir=os.path.join(scratch, "events"),
            trace_dir=os.path.join(scratch, "traces"),
            trace_sample_rate=0.3, slow_trace_seconds=1.0)
        with FleetThread(config) as fleet:
            print(f"dispatcher listening on {fleet.url}\n")
            client = RoutingClient(port=fleet.port, client_id="operator",
                                   retry_quota=4)

            # Feed the SLO windows with a small batch.
            circuits = [random_circuit(4, 8, seed=seed, name=f"dash_{seed}")
                        for seed in range(6)]
            tickets = [client.submit(circuit, architecture="tokyo6",
                                     router="sabre:seed=0")
                       for circuit in circuits]
            for ticket in tickets:
                client.wait(ticket["job_id"], timeout=60)

            # One `repro top` frame: header, SLO verdict, a row per shard.
            print("one dashboard frame (what `repro top` repaints live):\n")
            run_top(client, iterations=1, clear=False, stream=sys.stdout)

            # The merged fleet SLO verdict behind that header.
            slo = client.slo()
            objective = slo["fleet"]["objectives"][0]
            print(f"\nfleet SLO: {objective['quantile_label']} = "
                  f"{objective['latency']:.3f}s against a "
                  f"{objective['latency_target']:.0f}s target, availability "
                  f"{objective['availability'] * 100.0:.1f}%, "
                  f"burn rate {objective['error_budget_burn_rate']}, "
                  f"ok={objective['ok']}")

            # Chaos: kill shard 0 and read the incident off the event log.
            victim = next(worker for worker
                          in client.cluster()["fleet"]["worker_detail"]
                          if worker["shard"] == 0)
            print(f"\nkilling shard 0 (pid {victim['pid']})...")
            os.kill(victim["pid"], signal.SIGKILL)
            reborn = wait_for_restart(client, 0, victim["pid"])
            print(f"shard 0 reborn as pid {reborn['pid']}")
            deadline = time.monotonic() + 10.0
            restart_events = []
            while time.monotonic() < deadline and not restart_events:
                events = client.events(level="warning")["events"]
                restart_events = [event for event in events
                                  if event["event"] == "worker-restart"]
                time.sleep(0.1)
            for event in restart_events:
                print(f"event log: {event['level']} {event['event']} "
                      f"shard={event['shard']} pid={event['pid']} "
                      f"restarts={event['restarts']}")

            # Profile the whole fleet for half a second while it solves.
            busy = client.submit(random_circuit(6, 30, seed=99, name="hot"),
                                 architecture="tokyo6", router="sabre:seed=1")
            profile = client.profile(seconds=0.5)
            client.wait(busy["job_id"], timeout=60)
            print(f"\nprofiled dispatcher + {len(profile['shards'])} shards "
                  f"for 0.5s ({profile['dispatcher']['samples']} dispatcher "
                  "samples); hottest shard-0 stacks:")
            report = profile["shards"]["0"]
            for entry in (report or {}).get("top", [])[:3]:
                print(f"  {entry['self']:3d} self  {entry['total']:3d} total"
                      f"  {entry['frame']}")

            # What the tail sampler decided: the shared trace directory
            # holds only the traces each shard's sampler chose to keep.
            kept = read_traces(os.path.join(scratch, "traces"))
            print(f"\ntail sampling kept {len(kept)} of "
                  f"{len(tickets) + 1} traces at rate 0.3 "
                  "(errors/deadline/slow would always survive)")
            persisted = read_events(os.path.join(scratch, "events"))
            owners = sorted({record["owner"] for record in persisted})
            print(f"{len(persisted)} events persisted as JSONL by "
                  f"{owners}")

            print("\ndraining the fleet...")
            client.drain()
        print("fleet drained; all workers exited")


if __name__ == "__main__":
    main()
