"""Architecture sweep: route one workload across the whole device catalogue.

Run with::

    python examples/architecture_sweep.py

The paper's Q4 experiment varies the connectivity graph (Tokyo-, Tokyo,
Tokyo+) and finds that heuristic routers fall further behind the optimum as
connectivity grows.  This example widens that sweep to the full device
catalogue -- IBM ladder and heavy-hex shapes, a Sycamore-style lattice, a
Rigetti-style octagon chain, a trapped-ion all-to-all trap -- and prints, for
each device, the SWAP cost of SATMAP and of the heuristic baselines plus a
text bar chart of the resulting cost ratios.
"""

from repro.analysis.plotting import bar_chart
from repro.analysis.reporting import render_table
from repro.baselines import BmtLikeRouter, SabreRouter, TketLikeRouter
from repro.circuits.random_circuits import random_circuit
from repro.core import SatMapRouter
from repro.hardware.devices import architecture_properties, device_catalog

#: Devices kept small enough that every router finishes in seconds.
SWEEP_DEVICES = ["yorktown", "ourense", "line-16", "ring-16", "guadalupe",
                 "melbourne", "sycamore-12", "aspen-16", "tokyo-", "tokyo",
                 "tokyo+", "trapped-ion-11"]
SATMAP_BUDGET = 10.0


def main() -> None:
    catalog = device_catalog()
    workload = random_circuit(num_qubits=5, num_two_qubit_gates=25, seed=17,
                              interaction_bias=0.4, name="sweep_workload")
    print(f"Workload: {workload}")
    print()

    rows = []
    ratios = {}
    for name in SWEEP_DEVICES:
        architecture = catalog[name]()
        properties = architecture_properties(architecture)

        satmap = SatMapRouter(slice_size=10, time_budget=SATMAP_BUDGET).route(
            workload, architecture)
        sabre = SabreRouter().route(workload, architecture)
        tket = TketLikeRouter().route(workload, architecture)
        bmt = BmtLikeRouter().route(workload, architecture)

        def swaps(result):
            return result.swap_count if result.solved else None

        rows.append([
            name,
            int(properties["num_qubits"]),
            round(properties["average_degree"], 2),
            swaps(satmap) if swaps(satmap) is not None else "-",
            swaps(sabre) if swaps(sabre) is not None else "-",
            swaps(tket) if swaps(tket) is not None else "-",
            swaps(bmt) if swaps(bmt) is not None else "-",
        ])
        if satmap.solved and tket.solved and satmap.swap_count > 0:
            ratios[name] = tket.swap_count / satmap.swap_count

    print(render_table(
        ["device", "qubits", "avg degree", "SATMAP swaps", "SABRE swaps",
         "TKET-like swaps", "BMT-like swaps"],
        rows, title="One workload, every device"))
    print()
    if ratios:
        print(bar_chart(ratios, title="TKET-like cost / SATMAP cost (higher = "
                                      "heuristic further from optimal)", unit="x"))
        print()
    print("Reading the sweep: on sparse devices (lines, rings) the heuristics "
          "stay close to SATMAP; as connectivity grows (Tokyo+, trapped-ion) "
          "the gap widens -- the paper's Q4 observation.")


if __name__ == "__main__":
    main()
