"""Trace a routed job end to end: spans, SAT counters, and histograms.

Walks the observability surface added by :mod:`repro.obs`:

1. route a circuit through the batch service and print the span tree the
   job produced (queue wait, encode, per-``sat-solve`` CDCL counters,
   extract, verify),
2. do the same through a live HTTP gateway -- the worker's subtree crosses
   the process/pickle boundary and is grafted under the gateway's root,
   fetched back via ``GET /v1/jobs/<id>/trace``,
3. persist finished traces as size-rotated JSONL (``--trace-dir``) and
   load them back,
4. scrape ``/metrics`` and show the latency/depth histograms, validated
   with the built-in exposition checker.

Run with::

    PYTHONPATH=src python examples/trace_a_job.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro.circuits.random_circuits import random_circuit
from repro.obs import check_exposition, find_span, read_traces, render_trace, \
    validate_trace
from repro.server import GatewayThread, RoutingClient
from repro.service import BatchRoutingService, RoutingJob


def trace_through_the_service() -> None:
    print("=== 1. tracing through the batch service ===")
    circuit = random_circuit(num_qubits=3, num_two_qubit_gates=6, seed=3,
                             name="traced")
    with BatchRoutingService(mode="serial", cache=False,
                             time_budget=10.0) as service:
        from repro.hardware.devices import named_architectures
        job = RoutingJob.from_circuit(circuit, named_architectures()["line8"],
                                      router="satmap")
        [result] = service.route_batch([job])
    print(render_trace(result.trace))
    assert validate_trace(result.trace) == []
    solve = find_span(result.trace, "solve")
    print(f"\nsolve span: {solve['attributes']}")
    print(f"result.solver_stats: {result.solver_stats}\n")


def trace_through_the_gateway(trace_dir: Path) -> None:
    print("=== 2. tracing through the HTTP gateway ===")
    service = BatchRoutingService(mode="thread", time_budget=5.0, cache=False)
    with GatewayThread(service=service, time_budget=5.0,
                       trace_dir=trace_dir) as gateway:
        client = RoutingClient(port=gateway.port, client_id="tracer")
        circuit = random_circuit(num_qubits=3, num_two_qubit_gates=5, seed=5,
                                 name="gateway-traced")
        ticket = client.submit(circuit, architecture="line8", router="satmap",
                               time_budget=5)
        client.wait(ticket["job_id"], timeout=60)

        # The span tree and its rendered form, one request away.
        payload = client.trace(ticket["job_id"])
        print(payload["rendered"])
        assert validate_trace(payload["trace"]) == []

        print("\n=== 3. /metrics histograms (checked exposition) ===")
        text = client.metrics_text()
        assert check_exposition(text) == []
        for line in text.splitlines():
            if line.startswith(("repro_job_seconds_count",
                                "repro_queue_wait_seconds_count",
                                "repro_gateway_job_seconds_count")) \
                    or "repro_stage_seconds_bucket" in line and '+Inf' in line:
                print(f"  {line}")

    print("\n=== 4. traces persisted as JSONL ===")
    for tree in read_traces(trace_dir):
        print(f"  {tree['attributes'].get('job', '?')[:16]}... "
              f"root={tree['name']} spans={_count_spans(tree)} "
              f"status={tree['attributes'].get('status')}")


def _count_spans(tree: dict) -> int:
    return 1 + sum(_count_spans(child) for child in tree.get("children", []))


def main() -> None:
    with tempfile.TemporaryDirectory() as scratch:
        trace_through_the_service()
        trace_through_the_gateway(Path(scratch) / "traces")
    print("\ndone: every tree validated, exposition clean")


if __name__ == "__main__":
    main()
