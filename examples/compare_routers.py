"""Compare SATMAP against the heuristic and constraint-based baselines.

Run with::

    python examples/compare_routers.py

This is a miniature version of the paper's Q1/Q2 evaluation: a handful of
benchmark circuits are routed onto an 8-qubit Tokyo subgraph by every router
in the library, and the script prints the solve-rate table (Table I style) and
the heuristic cost-ratio summary (Fig. 12 style).
"""

from repro.analysis.experiments import run_many_routers
from repro.analysis.reporting import (
    render_cost_ratio_summary,
    render_records_table,
    render_solve_rate_table,
)
from repro.analysis.suite import default_architecture, tiny_suite
from repro.baselines import (
    AStarLayerRouter,
    ExhaustiveOptimalRouter,
    OlsqStyleRouter,
    SabreRouter,
    TketLikeRouter,
)
from repro.core import SatMapRouter


def main() -> None:
    suite = tiny_suite()[:6]
    architecture = default_architecture(8)
    print(f"Routing {len(suite)} circuits onto {architecture.name} "
          f"({architecture.num_qubits} qubits, {len(architecture.edges)} edges)")
    print()

    routers = {
        "SATMAP": lambda: SatMapRouter(slice_size=25, time_budget=10),
        "TB-OLSQ-like": lambda: OlsqStyleRouter(time_budget=10),
        "EX-MQT-like": lambda: ExhaustiveOptimalRouter(time_budget=10),
        "SABRE": lambda: SabreRouter(),
        "TKET-like": lambda: TketLikeRouter(),
        "MQT-A*": lambda: AStarLayerRouter(),
    }
    comparison = run_many_routers(routers, suite, architecture)

    print(render_solve_rate_table(comparison, total=len(suite),
                                  title="Solve rate (Table I style)"))
    print()
    print(render_cost_ratio_summary(
        comparison, "SATMAP", ["SABRE", "TKET-like", "MQT-A*"],
        title="Heuristic cost relative to SATMAP (Fig. 12 style)"))
    print()
    print(render_records_table(comparison, title="Per-benchmark detail"))


if __name__ == "__main__":
    main()
