"""A sharded serving fleet in one script: dispatch, dedup, crash, recover.

Starts a :class:`~repro.cluster.ClusterDispatcher` with three real worker
processes (the same fleet ``repro serve --workers 3`` runs), then
demonstrates what the dispatcher adds on top of a single gateway:

1. topology: ``/v1/cluster`` shows the consistent-hash ring and every
   worker's shard, port, and pid;
2. shard routing: each submission's ticket reports the shard that owns
   its job key, and the client predicts the same shard ring-side;
3. fleet-wide dedup: the same circuit from two "different clients" lands
   on the same shard and solves exactly once;
4. a dispatch span re-rooted above the worker's own trace;
5. chaos: SIGKILL one worker, watch the health sweep restart it on the
   same shard, and re-fetch the dead shard's result from the shared disk
   cache;
6. fleet-aggregated ``/v1/stats`` and ``/metrics``, then graceful drain.

Run with::

    PYTHONPATH=src python examples/fleet_demo.py
"""

from __future__ import annotations

import os
import signal
import tempfile
import time

from repro.circuits.random_circuits import random_circuit
from repro.cluster import FleetConfig, FleetThread
from repro.server import RoutingClient


def main() -> None:
    with tempfile.TemporaryDirectory(prefix="fleet-demo-") as cache_dir:
        config = FleetConfig(workers=3, cache_dir=cache_dir,
                             time_budget=5.0, pool_mode="thread",
                             pool_workers=2, health_interval=0.2)
        with FleetThread(config) as fleet:
            print(f"dispatcher listening on {fleet.url}\n")
            alice = RoutingClient(port=fleet.port, client_id="alice")
            bob = RoutingClient(port=fleet.port, client_id="bob")

            topology = alice.cluster()
            print("fleet topology:")
            for worker in topology["fleet"]["worker_detail"]:
                print(f"  shard {worker['shard']}: pid {worker['pid']} "
                      f"on 127.0.0.1:{worker['port']}")
            print(f"  ring: {topology['ring']['replicas']} virtual nodes "
                  f"per shard over shards {topology['ring']['shards']}\n")

            # Distinct circuits spread over the ring; identical ones collide.
            circuits = [random_circuit(4, 8, seed=seed, name=f"demo_{seed}")
                        for seed in range(5)]
            tickets = [alice.submit(circuit, architecture="tokyo6",
                                    router="sabre:seed=0")
                       for circuit in circuits]
            for circuit, ticket in zip(circuits, tickets):
                predicted = alice.shard_for(ticket["job_id"])
                print(f"  {circuit.name} -> shard {ticket['shard']} "
                      f"(client-side ring predicts {predicted})")

            # Bob submits a byte-identical copy of the first circuit: the
            # ring sends it to the same shard, whose gateway dedups it.
            duplicate = bob.submit(circuits[0], architecture="tokyo6",
                                   router="sabre:seed=0")
            print(f"\nbob's duplicate of {circuits[0].name}: shard "
                  f"{duplicate['shard']}, deduplicated="
                  f"{duplicate['deduplicated']}")

            results = [alice.wait(ticket["job_id"], timeout=60)
                       for ticket in tickets]
            print("all solved:", all(result.solved for result in results))

            trace = alice.trace(tickets[0]["job_id"])
            print(f"\ntrace of {circuits[0].name} (dispatch span on top):")
            print("  " + trace["rendered"].replace("\n", "\n  "))

            # Chaos: kill the shard that solved circuit 0, then watch the
            # dispatcher's health sweep bring it back on the SAME shard.
            victim_shard = tickets[0]["shard"]
            victim = next(worker for worker
                          in alice.cluster()["fleet"]["worker_detail"]
                          if worker["shard"] == victim_shard)
            print(f"killing shard {victim_shard} (pid {victim['pid']})...")
            os.kill(victim["pid"], signal.SIGKILL)
            deadline = time.monotonic() + 30.0
            while time.monotonic() < deadline:
                worker = next(entry for entry
                              in alice.cluster()["fleet"]["worker_detail"]
                              if entry["shard"] == victim_shard)
                if worker["alive"] and worker["restarts"] > 0:
                    print(f"shard {victim_shard} reborn as pid "
                          f"{worker['pid']} after "
                          f"{worker['restarts']} restart(s)")
                    break
                time.sleep(0.2)

            # The reborn worker's memory is empty, but the shared disk cache
            # still has the answer -- same shard, same key, cache hit.
            again = alice.submit(circuits[0], architecture="tokyo6",
                                 router="sabre:seed=0")
            result = alice.wait(again["job_id"], timeout=60)
            print(f"resubmitted {circuits[0].name}: shard {again['shard']}, "
                  f"notes: {result.notes}\n")

            stats = alice.stats()
            totals = stats["totals"]["gateway"]
            print(f"fleet totals: {totals['submitted']} solves for "
                  f"{totals['submitted'] + totals['deduplicated']} "
                  f"submissions across {stats['fleet']['workers']} shards; "
                  f"{stats['fleet']['dispatcher']['worker_restarts']} "
                  f"worker restart(s)")
            scrape = alice.metrics_text()
            cluster_lines = [line for line in scrape.splitlines()
                             if line.startswith("repro_cluster_dispatched")]
            print("dispatch counters:")
            for line in cluster_lines:
                print(f"  {line}")

            print("\ndraining the fleet...")
            alice.drain()
        print("fleet drained; all workers exited")


if __name__ == "__main__":
    main()
