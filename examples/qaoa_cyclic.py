"""Route a QAOA MaxCut circuit with the cyclic relaxation (Section VI).

Run with::

    python examples/qaoa_cyclic.py

A QAOA circuit repeats the same cost-plus-mixer block once per cycle, so the
cyclic relaxation only solves the block -- with the extra constraint that the
final qubit map equals the initial one -- and stitches the solution.  The
script contrasts that with routing the full unrolled circuit and with a
heuristic router.
"""

from repro import SatMapRouter, route_cyclic
from repro.baselines import TketLikeRouter
from repro.circuits.circuit import QuantumCircuit
from repro.circuits.gates import Gate
from repro.circuits.qaoa import maxcut_qaoa_circuit, qaoa_repeated_block
from repro.hardware.topologies import reduced_tokyo_architecture

NUM_QUBITS = 6
CYCLES = 3
SEED = 7


def main() -> None:
    architecture = reduced_tokyo_architecture(8)
    block = qaoa_repeated_block(NUM_QUBITS, degree=3, seed=SEED)
    prelude = QuantumCircuit(NUM_QUBITS, name="hadamards")
    for qubit in range(NUM_QUBITS):
        prelude.append(Gate("h", (qubit,)))
    full_circuit = maxcut_qaoa_circuit(NUM_QUBITS, CYCLES, seed=SEED)

    print(f"QAOA MaxCut on a 3-regular graph: {NUM_QUBITS} qubits, {CYCLES} cycles")
    print(f"Repeated block: {block.num_two_qubit_gates} two-qubit gates; "
          f"full circuit: {full_circuit.num_two_qubit_gates}")
    print(f"Target architecture: {architecture.name}")
    print()

    cyclic = route_cyclic(block, CYCLES, architecture, prelude=prelude,
                          router=SatMapRouter(slice_size=10, time_budget=30))
    print(f"CYC-SATMAP : {cyclic.summary()}")
    print(f"  final map == initial map: {cyclic.final_mapping == cyclic.initial_mapping}")

    plain = SatMapRouter(slice_size=10, time_budget=30).route(full_circuit, architecture)
    print(f"SATMAP     : {plain.summary()}")

    tket = TketLikeRouter().route(full_circuit, architecture)
    print(f"TKET-like  : {tket.summary()}")
    print()
    print("The cyclic solution can be reused for any number of cycles: its cost "
          "per cycle is fixed, whereas the unrolled solve has to be repeated.")


if __name__ == "__main__":
    main()
