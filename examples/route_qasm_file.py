"""Route an OpenQASM 2.0 file from the command line.

Run with::

    python examples/route_qasm_file.py path/to/circuit.qasm [--arch tokyo]
    python examples/route_qasm_file.py --demo

Without a file, ``--demo`` writes a small QASM program to a temporary file
first, so the example is runnable out of the box.  The routed circuit is
written next to the input as ``<name>.routed.qasm``.
"""

import argparse
import sys
import tempfile
from pathlib import Path

from repro import SatMapRouter, load_qasm, verify_routing
from repro.baselines import SabreRouter
from repro.circuits.qasm import save_qasm
from repro.hardware.topologies import (
    grid_architecture,
    line_architecture,
    reduced_tokyo_architecture,
    tokyo_architecture,
)

DEMO_QASM = """OPENQASM 2.0;
include "qelib1.inc";
qreg q[5];
creg c[5];
h q[0];
cx q[0],q[1];
cx q[1],q[2];
cx q[0],q[3];
cx q[3],q[4];
cx q[4],q[0];
cx q[2],q[4];
measure q[0] -> c[0];
"""

ARCHITECTURES = {
    "tokyo": tokyo_architecture,
    "tokyo8": lambda: reduced_tokyo_architecture(8),
    "line8": lambda: line_architecture(8),
    "grid3x3": lambda: grid_architecture(3, 3),
}


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("qasm", nargs="?", help="path to an OpenQASM 2.0 file")
    parser.add_argument("--demo", action="store_true",
                        help="route a built-in demo program instead of a file")
    parser.add_argument("--arch", choices=sorted(ARCHITECTURES), default="tokyo8")
    parser.add_argument("--slice-size", type=int, default=25)
    parser.add_argument("--time-budget", type=float, default=30.0)
    parser.add_argument("--compare-sabre", action="store_true",
                        help="also run SABRE and report its cost")
    return parser.parse_args()


def main() -> int:
    args = parse_args()
    if args.demo or not args.qasm:
        demo_path = Path(tempfile.mkdtemp()) / "demo.qasm"
        demo_path.write_text(DEMO_QASM)
        qasm_path = demo_path
        print(f"No input given; using the built-in demo program at {qasm_path}")
    else:
        qasm_path = Path(args.qasm)
        if not qasm_path.exists():
            print(f"error: {qasm_path} does not exist", file=sys.stderr)
            return 1

    circuit = load_qasm(qasm_path)
    architecture = ARCHITECTURES[args.arch]()
    print(f"Loaded {circuit.name}: {circuit.num_qubits} qubits, "
          f"{circuit.num_two_qubit_gates} two-qubit gates")
    print(f"Routing onto {architecture.name} with slice size {args.slice_size} "
          f"and a {args.time_budget:.0f}s budget")

    router = SatMapRouter(slice_size=args.slice_size, time_budget=args.time_budget)
    result = router.route(circuit, architecture)
    print(result.summary())
    if not result.solved:
        print("No routing found within the budget; try a larger --time-budget.")
        return 2

    verify_routing(circuit, result.routed_circuit, result.initial_mapping, architecture)
    output_path = qasm_path.with_suffix(".routed.qasm")
    save_qasm(result.routed_circuit, output_path)
    print(f"Verified routed circuit written to {output_path}")

    if args.compare_sabre:
        sabre = SabreRouter().route(circuit, architecture)
        print(f"SABRE for comparison: {sabre.summary()}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
