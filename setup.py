"""Setup shim so the package can be installed in environments without ``wheel``.

All real metadata lives in ``pyproject.toml``; this file only exists to allow
``pip install -e . --no-use-pep517`` (legacy editable install) when PEP 517
build isolation is unavailable (e.g. offline machines).
"""

from setuptools import setup

setup()
