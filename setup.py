"""Package metadata and install configuration.

The project is pure Python with no third-party runtime dependencies, so all
metadata lives here (no ``pyproject.toml`` is required) and the package
installs with plain ``pip install .`` or ``pip install -e .`` even on
machines without PEP 517 build isolation.
"""

import re
from pathlib import Path

from setuptools import find_packages, setup

_here = Path(__file__).parent
_readme = _here / "README.md"

# Single-source the version: repro.__version__ is the only place it lives.
_version = re.search(
    r'^__version__\s*=\s*"([^"]+)"',
    (_here / "src" / "repro" / "__init__.py").read_text(),
    re.MULTILINE,
).group(1)

setup(
    name="repro-satmap",
    version=_version,
    description=(
        "Reproduction of 'Qubit Mapping and Routing via MaxSAT' (MICRO 2022) "
        "with a parallel batch-routing service"
    ),
    long_description=_readme.read_text() if _readme.exists() else "",
    long_description_content_type="text/markdown",
    author="paper-repo-growth",
    license="MIT",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    entry_points={
        "console_scripts": [
            "repro = repro.cli:main",
        ],
    },
    classifiers=[
        "Programming Language :: Python :: 3",
        "License :: OSI Approved :: MIT License",
        "Topic :: Scientific/Engineering",
        "Intended Audience :: Science/Research",
    ],
)
