"""Package metadata and install configuration.

The project is pure Python with no third-party runtime dependencies, so all
metadata lives here (no ``pyproject.toml`` is required) and the package
installs with plain ``pip install .`` or ``pip install -e .`` even on
machines without PEP 517 build isolation.

One optional C extension, ``repro.sat._native.core``, holds the CDCL inner
loops.  Its build is strictly best-effort: any toolchain failure (no
compiler, broken headers, ``REPRO_SKIP_NATIVE=1``) downgrades to a warning
and the install proceeds pure-Python — ``repro.sat`` falls back to the
reference solver at import time.
"""

import os
import re
import sys
from pathlib import Path

from setuptools import Extension, find_packages, setup
from setuptools.command.build_ext import build_ext

_here = Path(__file__).parent
_readme = _here / "README.md"

# Single-source the version: repro.__version__ is the only place it lives.
_version = re.search(
    r'^__version__\s*=\s*"([^"]+)"',
    (_here / "src" / "repro" / "__init__.py").read_text(),
    re.MULTILINE,
).group(1)


class optional_build_ext(build_ext):
    """Build the native solver core if we can; never fail the install."""

    def run(self):
        if os.environ.get("REPRO_SKIP_NATIVE"):
            self._skip("REPRO_SKIP_NATIVE is set")
            return
        try:
            super().run()
        except Exception as exc:  # CompileError, missing toolchain, ...
            self._skip(f"build failed ({exc!r})")

    def build_extension(self, ext):
        try:
            super().build_extension(ext)
        except Exception as exc:
            self._skip(f"building {ext.name} failed ({exc!r})")

    @staticmethod
    def _skip(reason):
        print(
            "WARNING: skipping the optional repro.sat._native.core "
            f"extension: {reason}. Installing pure-Python; the reference "
            "SAT solver will be used (solver_backend=python).",
            file=sys.stderr,
        )


setup(
    name="repro-satmap",
    version=_version,
    description=(
        "Reproduction of 'Qubit Mapping and Routing via MaxSAT' (MICRO 2022) "
        "with a parallel batch-routing service"
    ),
    long_description=_readme.read_text() if _readme.exists() else "",
    long_description_content_type="text/markdown",
    author="paper-repo-growth",
    license="MIT",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    ext_modules=[
        Extension(
            "repro.sat._native.core",
            sources=["src/repro/sat/_native/core.c"],
            optional=True,
        ),
    ],
    cmdclass={"build_ext": optional_build_ext},
    entry_points={
        "console_scripts": [
            "repro = repro.cli:main",
        ],
    },
    classifiers=[
        "Programming Language :: Python :: 3",
        "License :: OSI Approved :: MIT License",
        "Topic :: Scientific/Engineering",
        "Intended Audience :: Science/Research",
    ],
)
