"""Command-line interface: ``python -m repro <command>``.

The subcommands cover the common workflows:

* ``route``    -- map and route an OpenQASM 2.0 file onto a named architecture
  (SATMAP by default, any router via ``--router``) and write the routed
  circuit next to the input;
* ``compare``  -- run SATMAP and the heuristic baselines over a QASM file (or
  the built-in tiny suite) and print Table I / Fig. 12 style summaries;
* ``batch``    -- route many QASM files (or a generated suite) through the
  parallel :class:`~repro.service.BatchRoutingService`: worker pool,
  optional portfolio racing, and an on-disk result cache;
* ``bench-service`` -- measure service throughput (serial vs. pooled vs.
  warm cache) on a generated batch;
* ``info``     -- print the properties of a named architecture;
* ``devices``  -- list every architecture in the device catalogue;
* ``draw``     -- print a text diagram of a QASM circuit;
* ``generate`` -- write a benchmark circuit (QFT, GHZ, QAOA, random) to QASM;
* ``version``  -- print the package version (also ``repro --version``).

The CLI is intentionally thin: every subcommand is a small wrapper over the
public library API, so anything it does can also be done programmatically.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.analysis.experiments import run_many_routers
from repro.analysis.reporting import (
    render_cost_ratio_summary,
    render_solve_rate_table,
    render_table,
)
from repro.analysis.suite import tiny_suite
from repro.baselines import (
    AStarLayerRouter,
    BmtLikeRouter,
    NaiveShortestPathRouter,
    SabreRouter,
    TketLikeRouter,
)
from repro.circuits.drawer import circuit_summary, draw_circuit
from repro.circuits.library import BenchmarkCircuit
from repro.circuits.named_circuits import ghz_circuit, qft_circuit
from repro.circuits.qaoa import maxcut_qaoa_circuit
from repro.circuits.qasm import load_qasm, save_qasm
from repro.circuits.random_circuits import random_circuit
from repro.core import HybridSatMapRouter, SatMapRouter, verify_routing
from repro.hardware.architecture import Architecture
from repro.hardware.devices import architecture_properties, device_catalog
from repro.service import BatchRoutingService, RoutingJob
from repro.service.registry import router_names as service_router_names
from repro.hardware.topologies import (
    full_architecture,
    grid_architecture,
    heavy_hex_architecture,
    line_architecture,
    reduced_tokyo_architecture,
    ring_architecture,
    tokyo_architecture,
    tokyo_minus_architecture,
    tokyo_plus_architecture,
)


def available_architectures() -> dict[str, Architecture]:
    """Named architectures selectable from the command line."""
    architectures = {
        "tokyo": tokyo_architecture(),
        "tokyo-": tokyo_minus_architecture(),
        "tokyo+": tokyo_plus_architecture(),
        "tokyo8": reduced_tokyo_architecture(8),
        "tokyo6": reduced_tokyo_architecture(6),
        "line8": line_architecture(8),
        "line16": line_architecture(16),
        "ring8": ring_architecture(8),
        "grid3x3": grid_architecture(3, 3),
        "grid4x4": grid_architecture(4, 4),
        "heavy-hex": heavy_hex_architecture(),
        "full8": full_architecture(8),
    }
    for name, constructor in device_catalog().items():
        architectures.setdefault(name, constructor())
    return architectures


def available_routers(time_budget: float) -> dict[str, object]:
    """Router constructors selectable with ``route --router``."""
    return {
        "satmap": lambda: SatMapRouter(slice_size=25, time_budget=time_budget),
        "nl-satmap": lambda: SatMapRouter(time_budget=time_budget),
        "hybrid": lambda: HybridSatMapRouter(time_budget=time_budget),
        "sabre": lambda: SabreRouter(time_budget=time_budget),
        "tket": lambda: TketLikeRouter(time_budget=time_budget),
        "astar": lambda: AStarLayerRouter(time_budget=time_budget),
        "bmt": lambda: BmtLikeRouter(time_budget=time_budget),
        "naive": lambda: NaiveShortestPathRouter(time_budget=time_budget),
    }


def build_parser() -> argparse.ArgumentParser:
    from repro import __version__

    parser = argparse.ArgumentParser(
        prog="repro",
        description="Qubit mapping and routing via MaxSAT (SATMAP reproduction)",
    )
    parser.add_argument("--version", action="version",
                        version=f"repro {__version__}")
    subparsers = parser.add_subparsers(dest="command", required=True)

    route = subparsers.add_parser("route", help="route an OpenQASM 2.0 file")
    route.add_argument("qasm", type=Path, help="input OpenQASM 2.0 file")
    route.add_argument("--arch", default="tokyo", choices=sorted(available_architectures()))
    route.add_argument("--router", default="satmap", choices=sorted(available_routers(1.0)),
                       help="routing algorithm (default: satmap with slicing)")
    route.add_argument("--slice-size", type=int, default=25,
                       help="two-qubit gates per slice (0 disables slicing; satmap only)")
    route.add_argument("--time-budget", type=float, default=60.0)
    route.add_argument("--swaps-per-gate", type=int, default=1)
    route.add_argument("--from-scratch", action="store_true",
                       help="disable incremental solve sessions (rebuild the "
                            "SAT solver on every call; satmap only)")
    route.add_argument("--output", type=Path, default=None,
                       help="output path (default: <input>.routed.qasm)")

    compare = subparsers.add_parser("compare",
                                    help="compare SATMAP against heuristic baselines")
    compare.add_argument("qasm", type=Path, nargs="?", default=None,
                         help="optional OpenQASM file; omit to use the built-in suite")
    compare.add_argument("--arch", default="tokyo8",
                         choices=sorted(available_architectures()))
    compare.add_argument("--time-budget", type=float, default=10.0)

    batch = subparsers.add_parser(
        "batch", help="route a batch of circuits through the parallel service")
    batch.add_argument("qasm", type=Path, nargs="*",
                       help="OpenQASM 2.0 files; omit to route the built-in tiny suite")
    batch.add_argument("--arch", default="tokyo8",
                       choices=sorted(available_architectures()))
    batch.add_argument("--router", default="satmap", choices=service_router_names(),
                       help="registry router executed per job (default: satmap)")
    batch.add_argument("--suite-size", type=int, default=8,
                       help="number of built-in circuits when no files are given")
    batch.add_argument("--time-budget", type=float, default=10.0,
                       help="per-job budget in seconds")
    batch.add_argument("--workers", type=int, default=None,
                       help="worker processes (default: CPU count)")
    batch.add_argument("--mode", default="auto",
                       choices=["auto", "process", "thread", "serial"])
    batch.add_argument("--cache-dir", type=Path, default=Path(".repro-cache"),
                       help="on-disk result cache directory")
    batch.add_argument("--no-cache", action="store_true",
                       help="disable the result cache entirely")
    batch.add_argument("--portfolio", action="store_true",
                       help="race SATMAP against heuristic baselines per job")
    batch.add_argument("--quiet", action="store_true",
                       help="suppress per-job progress lines")

    bench_service = subparsers.add_parser(
        "bench-service",
        help="measure service throughput: serial vs. pooled vs. warm cache")
    bench_service.add_argument("--arch", default="tokyo8",
                               choices=sorted(available_architectures()))
    bench_service.add_argument("--router", default="satmap",
                               choices=service_router_names())
    bench_service.add_argument("--jobs", type=int, default=12)
    bench_service.add_argument("--time-budget", type=float, default=5.0)
    bench_service.add_argument("--workers", type=int, default=None)

    info = subparsers.add_parser("info", help="describe a named architecture")
    info.add_argument("--arch", default="tokyo", choices=sorted(available_architectures()))

    subparsers.add_parser("devices", help="list the device catalogue")

    draw = subparsers.add_parser("draw", help="print a text diagram of a QASM circuit")
    draw.add_argument("qasm", type=Path, help="input OpenQASM 2.0 file")
    draw.add_argument("--max-columns", type=int, default=40)
    draw.add_argument("--ascii", action="store_true", help="avoid unicode symbols")

    generate = subparsers.add_parser("generate", help="write a benchmark circuit to QASM")
    generate.add_argument("kind", choices=["qft", "ghz", "qaoa", "random"])
    generate.add_argument("output", type=Path, help="output OpenQASM 2.0 path")
    generate.add_argument("--qubits", type=int, default=5)
    generate.add_argument("--gates", type=int, default=20,
                          help="two-qubit gate count (random circuits only)")
    generate.add_argument("--cycles", type=int, default=2, help="QAOA cycles")
    generate.add_argument("--seed", type=int, default=0)

    subparsers.add_parser("version", help="print the package version")
    return parser


def command_route(args: argparse.Namespace) -> int:
    architecture = available_architectures()[args.arch]
    circuit = load_qasm(args.qasm)
    if args.router == "satmap":
        slice_size = args.slice_size if args.slice_size > 0 else None
        router = SatMapRouter(slice_size=slice_size, swaps_per_gate=args.swaps_per_gate,
                              time_budget=args.time_budget,
                              incremental=not args.from_scratch)
    else:
        router = available_routers(args.time_budget)[args.router]()
    result = router.route(circuit, architecture)
    print(result.summary())
    if not result.solved:
        return 2
    verify_routing(circuit, result.routed_circuit, result.initial_mapping, architecture)
    output = args.output or args.qasm.with_suffix(".routed.qasm")
    save_qasm(result.routed_circuit, output)
    print(f"initial mapping: {result.initial_mapping}")
    print(f"routed circuit written to {output}")
    return 0


def command_compare(args: argparse.Namespace) -> int:
    architecture = available_architectures()[args.arch]
    if args.qasm is not None:
        circuit = load_qasm(args.qasm)
        suite = [BenchmarkCircuit(circuit.name, circuit.num_qubits,
                                  circuit.num_two_qubit_gates, circuit)]
    else:
        suite = tiny_suite()[:6]
    routers = {
        "SATMAP": lambda: SatMapRouter(slice_size=25, time_budget=args.time_budget),
        "SABRE": lambda: SabreRouter(),
        "TKET-like": lambda: TketLikeRouter(),
        "MQT-A*": lambda: AStarLayerRouter(),
    }
    comparison = run_many_routers(routers, suite, architecture)
    print(render_solve_rate_table(comparison, total=len(suite),
                                  title=f"Solve rate on {architecture.name}"))
    print()
    print(render_cost_ratio_summary(comparison, "SATMAP",
                                    ["SABRE", "TKET-like", "MQT-A*"]))
    return 0


def _batch_jobs(args: argparse.Namespace) -> list[RoutingJob]:
    """Jobs for ``batch``: the given QASM files or the built-in tiny suite."""
    architecture = available_architectures()[args.arch]
    jobs = []
    if args.qasm:
        for path in args.qasm:
            circuit = load_qasm(path)
            jobs.append(RoutingJob.from_circuit(circuit, architecture,
                                                router=args.router, name=path.stem))
    else:
        for bench in tiny_suite()[:max(1, args.suite_size)]:
            jobs.append(RoutingJob.from_circuit(bench.circuit, architecture,
                                                router=args.router, name=bench.name))
    return jobs


def command_batch(args: argparse.Namespace) -> int:
    import time as _time

    if args.time_budget <= 0:
        print("error: --time-budget must be positive", file=sys.stderr)
        return 2
    missing = [path for path in args.qasm if not path.exists()]
    if missing:
        print(f"error: no such file: {', '.join(map(str, missing))}", file=sys.stderr)
        return 2
    jobs = _batch_jobs(args)
    progress = None
    if not args.quiet:
        progress = lambda update: print(update.format())  # noqa: E731
    start = _time.monotonic()
    with BatchRoutingService(
        max_workers=args.workers,
        mode=args.mode,
        time_budget=args.time_budget,
        cache=False if args.no_cache else None,
        cache_dir=None if args.no_cache else args.cache_dir,
        portfolio=args.portfolio or None,
    ) as service:
        results = service.route_batch(jobs, progress=progress)
        wall = _time.monotonic() - start

        rows = []
        for job, result in zip(jobs, results):
            rows.append([
                job.name, result.router_name, result.status.value,
                result.swap_count if result.solved else "-",
                result.added_cnots if result.solved else "-",
                round(result.solve_time, 3),
                "hit" if "cache-hit" in result.notes else "",
            ])
        print()
        print(render_table(
            ["circuit", "router", "status", "swaps", "CNOTs", "time (s)", "cache"],
            rows, title=f"Batch of {len(jobs)} jobs on {args.arch}"))
        print()
        print(service.telemetry.summary())
        cache_stats = service.stats().get("cache")
        if cache_stats is not None:
            print(f"cache: {cache_stats['hits']} hits / {cache_stats['misses']} misses "
                  f"({cache_stats['entries']} entries on disk at {args.cache_dir})")
        print(f"batch wall time: {wall:.3f}s "
              f"({len(jobs) / wall if wall > 0 else 0.0:.2f} jobs/s)")
        solved = sum(1 for result in results if result.solved)
        print(f"solved {solved}/{len(jobs)} jobs")
        return 0 if solved == len(jobs) else 2


def command_bench_service(args: argparse.Namespace) -> int:
    import time as _time

    if args.time_budget <= 0:
        print("error: --time-budget must be positive", file=sys.stderr)
        return 2
    architecture = available_architectures()[args.arch]
    suite = tiny_suite()
    benches = [suite[index % len(suite)] for index in range(max(1, args.jobs))]

    def make_jobs() -> list[RoutingJob]:
        return [RoutingJob.from_circuit(bench.circuit, architecture,
                                        router=args.router, name=f"{bench.name}#{i}")
                for i, bench in enumerate(benches)]

    def timed(service: BatchRoutingService) -> tuple[float, int]:
        jobs = make_jobs()
        start = _time.monotonic()
        results = service.route_batch(jobs, time_budget=args.time_budget)
        elapsed = _time.monotonic() - start
        return elapsed, sum(1 for result in results if result.solved)

    with BatchRoutingService(max_workers=1, mode="serial", cache=False) as serial:
        serial_time, serial_solved = timed(serial)
    with BatchRoutingService(max_workers=args.workers, mode="auto") as pooled:
        pooled_time, pooled_solved = timed(pooled)
        warm_time, warm_solved = timed(pooled)
        hits = pooled.cache.hits

    rows = [
        ["serial (no cache)", round(serial_time, 3),
         round(len(benches) / max(serial_time, 1e-9), 2), serial_solved],
        [f"pooled ({pooled.pool.mode}, cold cache)", round(pooled_time, 3),
         round(len(benches) / max(pooled_time, 1e-9), 2), pooled_solved],
        ["pooled (warm cache)", round(warm_time, 3),
         round(len(benches) / max(warm_time, 1e-9), 2), warm_solved],
    ]
    print(render_table(["configuration", "time (s)", "jobs/s", "solved"], rows,
                       title=f"Service throughput: {len(benches)} x {args.router} "
                             f"on {args.arch}"))
    print(f"cache hits on warm run: {hits}")
    print(f"warm-cache speedup over serial: {serial_time / max(warm_time, 1e-9):.1f}x")
    return 0


def command_info(args: argparse.Namespace) -> int:
    architecture = available_architectures()[args.arch]
    rows = [
        ["name", architecture.name],
        ["physical qubits", architecture.num_qubits],
        ["edges", len(architecture.edges)],
        ["average degree", architecture.average_degree],
        ["diameter", architecture.diameter()],
        ["connected", architecture.is_connected()],
    ]
    print(render_table(["property", "value"], rows))
    return 0


def command_devices(args: argparse.Namespace) -> int:
    rows = []
    for name, constructor in sorted(device_catalog().items()):
        properties = architecture_properties(constructor())
        rows.append([name, int(properties["num_qubits"]), int(properties["num_edges"]),
                     round(properties["average_degree"], 2), int(properties["diameter"])])
    print(render_table(["device", "qubits", "edges", "avg degree", "diameter"], rows,
                       title="Device catalogue"))
    return 0


def command_draw(args: argparse.Namespace) -> int:
    circuit = load_qasm(args.qasm)
    print(circuit_summary(circuit))
    print(draw_circuit(circuit, max_columns=args.max_columns, unicode=not args.ascii))
    return 0


def command_version(args: argparse.Namespace) -> int:
    from repro import __version__

    print(f"repro {__version__}")
    return 0


def command_generate(args: argparse.Namespace) -> int:
    if args.kind == "qft":
        circuit = qft_circuit(args.qubits)
    elif args.kind == "ghz":
        circuit = ghz_circuit(args.qubits)
    elif args.kind == "qaoa":
        circuit = maxcut_qaoa_circuit(num_qubits=args.qubits, num_cycles=args.cycles,
                                      seed=args.seed)
    else:
        circuit = random_circuit(num_qubits=args.qubits, num_two_qubit_gates=args.gates,
                                 seed=args.seed)
    save_qasm(circuit, args.output)
    print(f"{circuit_summary(circuit)}")
    print(f"written to {args.output}")
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    commands = {
        "route": command_route,
        "compare": command_compare,
        "batch": command_batch,
        "bench-service": command_bench_service,
        "info": command_info,
        "devices": command_devices,
        "draw": command_draw,
        "generate": command_generate,
        "version": command_version,
    }
    handler = commands.get(args.command)
    if handler is None:  # pragma: no cover - argparse enforces the choices
        return 1
    return handler(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
