"""Command-line interface: ``python -m repro <command>``.

The subcommands cover the common workflows:

* ``route``    -- map and route an OpenQASM 2.0 file onto a named architecture
  (SATMAP by default, any router spec via ``--router``) and write the routed
  circuit next to the input; ``--json`` for scriptable output;
* ``compare``  -- run SATMAP and the heuristic baselines over a QASM file (or
  the built-in tiny suite) and print Table I / Fig. 12 style summaries
  (``--json`` for the raw records);
* ``batch``    -- route many QASM files (or a generated suite) through the
  parallel :class:`~repro.service.BatchRoutingService`: worker pool,
  optional portfolio racing, and an on-disk result cache;
* ``bench-service`` -- measure service throughput (serial vs. pooled vs.
  warm cache) on a generated batch;
* ``serve``    -- run the JSON-over-HTTP routing gateway
  (:mod:`repro.server`): concurrent submissions, cross-client dedup,
  admission quotas, ``/metrics``, graceful drain on SIGTERM;
* ``submit``   -- submit a QASM file to a running gateway and wait for the
  routed result;
* ``trace``    -- fetch a finished job's span tree from a running gateway
  and print it as an indented timing tree (``--json`` for the raw spans,
  ``--slow-ms`` to flag spans past a wall-clock threshold);
* ``top``      -- live terminal dashboard over a running gateway or fleet:
  per-shard throughput, queue depth, cache hit rate, tail latencies, and
  SLO error-budget status, repainted every ``--interval`` seconds;
* ``routers``  -- list every registered router: capabilities and option
  schemas, straight from the :mod:`repro.api` registry;
* ``info``     -- print the properties of a named architecture;
* ``devices``  -- list every architecture in the device catalogue;
* ``draw``     -- print a text diagram of a QASM circuit;
* ``generate`` -- write a benchmark circuit (QFT, GHZ, QAOA, random) to QASM;
* ``version``  -- print the package version (also ``repro --version``).

Anywhere a router is named, a full *spec string* is accepted --
``--router satmap:slice_size=10,swaps_per_gate=2`` -- and validated against
the registry's option schemas at argument-parsing time.

The CLI is intentionally thin: every subcommand is a small wrapper over the
public library API, so anything it does can also be done programmatically.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys
from pathlib import Path

from repro.analysis.experiments import run_many_routers
from repro.analysis.reporting import (
    render_cost_ratio_summary,
    render_solve_rate_table,
    render_table,
)
from repro.analysis.suite import tiny_suite
from repro.api import RouterSpec, describe_routers, get_router, list_routers
from repro.circuits.drawer import circuit_summary, draw_circuit
from repro.circuits.library import BenchmarkCircuit
from repro.circuits.named_circuits import ghz_circuit, qft_circuit
from repro.circuits.qaoa import maxcut_qaoa_circuit
from repro.circuits.qasm import load_qasm, save_qasm
from repro.circuits.random_circuits import random_circuit
from repro.core import verify_routing
from repro.hardware.architecture import Architecture
from repro.hardware.devices import (
    architecture_record,
    device_records,
    named_architectures,
)
from repro.service import BatchRoutingService, RoutingJob


def available_architectures() -> dict[str, Architecture]:
    """Named architectures selectable from the command line.

    Thin alias of :func:`repro.hardware.devices.named_architectures` -- the
    same table the network gateway resolves architecture names against.
    """
    return named_architectures()


def available_routers(time_budget: float) -> dict[str, object]:
    """Router constructors selectable with ``route --router``.

    Deprecated shim over the :mod:`repro.api` registry (every registered
    router, not a hand-kept subset); kept because older scripts imported it.
    """
    def factory(name: str):
        return lambda: get_router(name, time_budget=time_budget)

    return {name: factory(name) for name in list_routers()}


def _router_spec(text: str) -> str:
    """argparse type for ``--router``: validate a spec string, keep the text.

    Validation against the registry (unknown routers *and* unknown/ill-typed
    options) happens at parse time, so ``repro route --router no-such`` or
    ``--router satmap:slize_size=9`` exit with a usage error instead of
    failing mid-run.
    """
    try:
        RouterSpec.from_string(text).validated()
    except Exception as error:
        raise argparse.ArgumentTypeError(str(error)) from None
    return text


def _slo_objective(text: str) -> dict:
    """argparse type for ``serve --slo``: ``[route:]pQQ<SECONDS[@AVAIL]``.

    Examples: ``p95<2`` (all traffic, p95 within 2s, 99% availability),
    ``satmap:p99<5@0.995`` (one route, explicit availability floor).
    Returned as a plain dict so the objective pickles into worker processes
    (:class:`repro.obs.slo.SloObjective` normalises it on the other side).
    """
    from repro.obs.slo import SloObjective

    spec = text.strip()
    route, _, rest = spec.rpartition(":")
    route = route or "*"
    rest, _, avail = rest.partition("@")
    quantile_text, sep, latency_text = rest.partition("<")
    try:
        if not sep or not quantile_text.startswith("p"):
            raise ValueError("expected [route:]p<quantile><<seconds>[@avail]")
        objective = SloObjective(
            route=route,
            quantile=float(quantile_text[1:]) / 100.0,
            latency_target=float(latency_text),
            availability_target=float(avail) if avail else 0.99,
        )
    except ValueError as error:
        raise argparse.ArgumentTypeError(
            f"bad SLO spec {text!r}: {error}") from None
    return objective.to_dict()


def build_parser() -> argparse.ArgumentParser:
    from repro import __version__

    parser = argparse.ArgumentParser(
        prog="repro",
        description="Qubit mapping and routing via MaxSAT (SATMAP reproduction)",
    )
    parser.add_argument("--version", action="version",
                        version=f"repro {__version__}")
    subparsers = parser.add_subparsers(dest="command", required=True)

    route = subparsers.add_parser("route", help="route an OpenQASM 2.0 file")
    route.add_argument("qasm", type=Path, help="input OpenQASM 2.0 file")
    route.add_argument("--arch", default="tokyo", choices=sorted(available_architectures()))
    route.add_argument("--router", default="satmap", type=_router_spec,
                       help="router spec, e.g. satmap or "
                            "satmap:slice_size=10,swaps_per_gate=2 "
                            "(default: satmap with slicing; see `repro routers`)")
    route.add_argument("--slice-size", type=int, default=25,
                       help="two-qubit gates per slice (0 disables slicing; satmap only)")
    route.add_argument("--time-budget", type=float, default=60.0)
    route.add_argument("--swaps-per-gate", type=int, default=1)
    route.add_argument("--from-scratch", action="store_true",
                       help="disable incremental solve sessions (rebuild the "
                            "SAT solver on every call; satmap only)")
    route.add_argument("--cube-workers", type=int, default=None,
                       help="race N cube-and-conquer workers over the "
                            "initial-mapping space (satmap only; default: serial)")
    route.add_argument("--solver-backend", default=None,
                       choices=["python", "native", "auto"],
                       help="SAT solve core (default: $REPRO_SAT_BACKEND, "
                            "then auto: native when built, else python)")
    route.add_argument("--pipeline-slices", action="store_true",
                       help="pre-encode slice k+1 in a worker process while "
                            "slice k solves (satmap only)")
    route.add_argument("--output", type=Path, default=None,
                       help="output path (default: <input>.routed.qasm)")
    route.add_argument("--json", action="store_true",
                       help="print a machine-readable JSON result instead of text")

    compare = subparsers.add_parser("compare",
                                    help="compare SATMAP against heuristic baselines")
    compare.add_argument("qasm", type=Path, nargs="?", default=None,
                         help="optional OpenQASM file; omit to use the built-in suite")
    compare.add_argument("--arch", default="tokyo8",
                         choices=sorted(available_architectures()))
    compare.add_argument("--time-budget", type=float, default=10.0)
    compare.add_argument("--json", action="store_true",
                         help="print the raw experiment records as JSON")

    batch = subparsers.add_parser(
        "batch", help="route a batch of circuits through the parallel service")
    batch.add_argument("qasm", type=Path, nargs="*",
                       help="OpenQASM 2.0 files; omit to route the built-in tiny suite")
    batch.add_argument("--arch", default="tokyo8",
                       choices=sorted(available_architectures()))
    batch.add_argument("--router", default="satmap", type=_router_spec,
                       help="router spec executed per job (default: satmap)")
    batch.add_argument("--suite-size", type=int, default=8,
                       help="number of built-in circuits when no files are given")
    batch.add_argument("--time-budget", type=float, default=10.0,
                       help="per-job budget in seconds")
    batch.add_argument("--workers", type=int, default=None,
                       help="worker processes (default: CPU count)")
    batch.add_argument("--mode", default="auto",
                       choices=["auto", "process", "thread", "serial"])
    batch.add_argument("--cache-dir", type=Path, default=Path(".repro-cache"),
                       help="on-disk result cache directory")
    batch.add_argument("--no-cache", action="store_true",
                       help="disable the result cache entirely")
    batch.add_argument("--solver-backend", default=None,
                       choices=["python", "native", "auto"],
                       help="SAT solve core for every job (default: "
                            "$REPRO_SAT_BACKEND, then auto)")
    batch.add_argument("--portfolio", action="store_true",
                       help="race SATMAP against heuristic baselines per job")
    batch.add_argument("--quiet", action="store_true",
                       help="suppress per-job progress lines")

    bench_service = subparsers.add_parser(
        "bench-service",
        help="measure service throughput: serial vs. pooled vs. warm cache")
    bench_service.add_argument("--arch", default="tokyo8",
                               choices=sorted(available_architectures()))
    bench_service.add_argument("--router", default="satmap", type=_router_spec)
    bench_service.add_argument("--jobs", type=int, default=12)
    bench_service.add_argument("--time-budget", type=float, default=5.0)
    bench_service.add_argument("--workers", type=int, default=None)
    bench_service.add_argument("--solver-backend", default=None,
                               choices=["python", "native", "auto"],
                               help="SAT solve core (default: "
                                    "$REPRO_SAT_BACKEND, then auto)")

    serve = subparsers.add_parser(
        "serve", help="run the JSON-over-HTTP routing gateway")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8037,
                       help="listen port (0 picks a free one)")
    serve.add_argument("--time-budget", type=float, default=10.0,
                       help="default per-job budget in seconds")
    serve.add_argument("--workers", type=int, default=1,
                       help="shard worker processes behind one dispatcher; "
                            "1 runs today's single in-process gateway")
    serve.add_argument("--pool-workers", type=int, default=None,
                       help="solver pool size inside each worker "
                            "(default: CPU count)")
    serve.add_argument("--mode", default="auto",
                       choices=["auto", "process", "thread", "serial"])
    serve.add_argument("--cache-dir", type=Path, default=Path(".repro-cache"),
                       help="on-disk result cache directory")
    serve.add_argument("--no-cache", action="store_true",
                       help="disable the result cache entirely")
    serve.add_argument("--cache-max-mb", type=float, default=None,
                       help="bound the result cache; LRU-evict past this size")
    serve.add_argument("--rate", type=float, default=20.0,
                       help="per-client sustained submissions per second")
    serve.add_argument("--burst", type=float, default=40.0,
                       help="per-client burst allowance (token bucket size)")
    serve.add_argument("--max-pending", type=int, default=256,
                       help="refuse submissions past this backlog (backpressure)")
    serve.add_argument("--portfolio", action="store_true",
                       help="race SATMAP against heuristic baselines per job")
    serve.add_argument("--trace-dir", type=Path, default=None,
                       help="append finished-job traces as JSONL under this "
                            "directory (size-rotated)")
    serve.add_argument("--events-dir", type=Path, default=None,
                       help="append structured operational events as JSONL "
                            "under this directory (size-rotated; events stay "
                            "in memory and at /v1/events either way)")
    serve.add_argument("--trace-sample", type=float, default=None,
                       metavar="RATE",
                       help="tail-sampling keep probability for fast, "
                            "successful traces in [0, 1]; errors, timeouts "
                            "and slow traces are always kept "
                            "(default: keep everything)")
    serve.add_argument("--slow-trace-ms", type=float, default=None,
                       help="always keep traces whose root span lasts at "
                            "least this many milliseconds")
    serve.add_argument("--solver-backend", default=None,
                       choices=["python", "native", "auto"],
                       help="SAT solve core on every fleet worker (default: "
                            "$REPRO_SAT_BACKEND, then auto)")
    serve.add_argument("--slo", action="append", type=_slo_objective,
                       default=None, metavar="SPEC",
                       help="SLO objective as [route:]pQQ<SECONDS[@AVAIL], "
                            "e.g. p95<2 or satmap:p99<5@0.995; repeatable "
                            "(default: p95<2@0.99 over all traffic)")

    submit = subparsers.add_parser(
        "submit", help="submit a QASM file to a running gateway")
    submit.add_argument("qasm", type=Path, help="input OpenQASM 2.0 file")
    submit.add_argument("--url", default="http://127.0.0.1:8037",
                        help="gateway address")
    submit.add_argument("--arch", default="tokyo",
                        choices=sorted(available_architectures()))
    submit.add_argument("--router", default="satmap", type=_router_spec,
                        help="router spec, e.g. satmap:slice_size=10")
    submit.add_argument("--time-budget", type=float, default=None,
                        help="per-job budget in seconds (server default if unset)")
    submit.add_argument("--timeout", type=float, default=300.0,
                        help="client-side wait timeout in seconds")
    submit.add_argument("--no-wait", action="store_true",
                        help="print the job ticket and return immediately")
    submit.add_argument("--client-id", default=None,
                        help="quota identity sent as X-Client-Id")
    submit.add_argument("--output", type=Path, default=None,
                        help="write the routed circuit here when solved")
    submit.add_argument("--json", action="store_true",
                        help="print a machine-readable JSON record")

    trace = subparsers.add_parser(
        "trace", help="print a finished job's span tree from a gateway")
    trace.add_argument("job_id", help="job id returned by submit")
    trace.add_argument("--url", default="http://127.0.0.1:8037",
                       help="gateway address")
    trace.add_argument("--client-id", default=None,
                       help="quota identity sent as X-Client-Id")
    trace.add_argument("--slow-ms", type=float, default=None,
                       help="flag spans lasting at least this many "
                            "milliseconds with !slow (renders locally)")
    trace.add_argument("--json", action="store_true",
                       help="print the raw span tree as JSON")

    top = subparsers.add_parser(
        "top", help="live dashboard over a running gateway or fleet")
    top.add_argument("--url", default="http://127.0.0.1:8037",
                     help="gateway or dispatcher address")
    top.add_argument("--interval", type=float, default=2.0,
                     help="seconds between repaints")
    top.add_argument("--once", action="store_true",
                     help="print a single frame and exit (no screen clear)")
    top.add_argument("--client-id", default=None,
                     help="quota identity sent as X-Client-Id")

    info = subparsers.add_parser("info", help="describe a named architecture")
    info.add_argument("--arch", default="tokyo", choices=sorted(available_architectures()))
    info.add_argument("--json", action="store_true",
                      help="print the architecture record (with edges) as JSON")

    devices = subparsers.add_parser("devices", help="list the device catalogue")
    devices.add_argument("--json", action="store_true",
                         help="print the catalogue records as JSON")

    routers = subparsers.add_parser(
        "routers", help="list registered routers (capabilities, options)")
    routers.add_argument("name", nargs="?", default=None,
                         help="show the full option schema of one router")
    routers.add_argument("--capability", default=None,
                         help="only routers with this capability tag "
                              "(e.g. noise_aware, optimal, anytime)")
    routers.add_argument("--json", action="store_true",
                         help="print the registry entries as JSON")

    draw = subparsers.add_parser("draw", help="print a text diagram of a QASM circuit")
    draw.add_argument("qasm", type=Path, help="input OpenQASM 2.0 file")
    draw.add_argument("--max-columns", type=int, default=40)
    draw.add_argument("--ascii", action="store_true", help="avoid unicode symbols")

    generate = subparsers.add_parser("generate", help="write a benchmark circuit to QASM")
    generate.add_argument("kind", choices=["qft", "ghz", "qaoa", "random"])
    generate.add_argument("output", type=Path, help="output OpenQASM 2.0 path")
    generate.add_argument("--qubits", type=int, default=5)
    generate.add_argument("--gates", type=int, default=20,
                          help="two-qubit gate count (random circuits only)")
    generate.add_argument("--cycles", type=int, default=2, help="QAOA cycles")
    generate.add_argument("--seed", type=int, default=0)

    subparsers.add_parser("version", help="print the package version")
    return parser


def _route_spec(args: argparse.Namespace) -> RouterSpec:
    """The effective spec of ``repro route``: spec string + legacy flags.

    The dedicated flags (``--slice-size``, ``--swaps-per-gate``,
    ``--from-scratch``) only configure plain ``satmap``, as they always did;
    any other router is configured through its spec options.  Options written
    in the spec string win over the flags.
    """
    spec = RouterSpec.from_string(args.router)
    defaults: dict = {"time_budget": args.time_budget}
    if spec.name == "satmap":
        defaults.update(
            slice_size=args.slice_size if args.slice_size > 0 else None,
            swaps_per_gate=args.swaps_per_gate,
            incremental=not args.from_scratch,
        )
        if args.cube_workers is not None:
            defaults["cube_workers"] = args.cube_workers
        if args.pipeline_slices:
            defaults["pipeline_slices"] = True
    return spec.with_defaults(**defaults)


def _result_json(result, spec: RouterSpec, architecture: Architecture,
                 output: Path | None = None) -> dict:
    """The machine-readable shape shared by ``route --json`` records."""
    payload = {
        "circuit": result.circuit_name,
        "architecture": architecture.name,
        "spec": spec.to_dict(),
        "router": result.router_name,
        "status": result.status.value,
        "solved": result.solved,
        "optimal": result.optimal,
        "swap_count": result.swap_count if result.solved else None,
        "added_cnots": result.added_cnots if result.solved else None,
        "solve_time": round(result.solve_time, 6),
        "initial_mapping": {str(k): v for k, v in result.initial_mapping.items()},
        "notes": result.notes,
        "output": str(output) if output is not None else None,
    }
    if result.objective_value is not None:
        payload["objective_value"] = result.objective_value
    return payload


def _apply_solver_backend(args: argparse.Namespace) -> None:
    """Export ``--solver-backend`` so every layer (including spawned pool
    and fleet workers, which inherit the environment) resolves the same
    SAT solve core."""
    backend = getattr(args, "solver_backend", None)
    if backend:
        import os

        os.environ["REPRO_SAT_BACKEND"] = backend


def command_route(args: argparse.Namespace) -> int:
    _apply_solver_backend(args)
    architecture = available_architectures()[args.arch]
    circuit = load_qasm(args.qasm)
    spec = _route_spec(args)
    router = get_router(spec)
    result = router.route(circuit, architecture)
    output = None
    if result.solved:
        verify_routing(circuit, result.routed_circuit, result.initial_mapping,
                       architecture)
        output = args.output or args.qasm.with_suffix(".routed.qasm")
        save_qasm(result.routed_circuit, output)
    if args.json:
        print(json.dumps(_result_json(result, spec, architecture, output),
                         indent=2, sort_keys=True))
        return 0 if result.solved else 2
    print(result.summary())
    if not result.solved:
        return 2
    print(f"initial mapping: {result.initial_mapping}")
    print(f"routed circuit written to {output}")
    return 0


def command_compare(args: argparse.Namespace) -> int:
    architecture = available_architectures()[args.arch]
    if args.qasm is not None:
        circuit = load_qasm(args.qasm)
        suite = [BenchmarkCircuit(circuit.name, circuit.num_qubits,
                                  circuit.num_two_qubit_gates, circuit)]
    else:
        suite = tiny_suite()[:6]
    routers = {
        "SATMAP": f"satmap:time_budget={args.time_budget}",
        "SABRE": "sabre",
        "TKET-like": "tket",
        "MQT-A*": "astar",
    }
    comparison = run_many_routers(routers, suite, architecture)
    if args.json:
        records = [dataclasses.asdict(record)
                   for router in comparison.routers()
                   for record in comparison.records[router]]
        print(json.dumps({"architecture": architecture.name,
                          "suite_size": len(suite),
                          "records": records}, indent=2, sort_keys=True))
        return 0
    print(render_solve_rate_table(comparison, total=len(suite),
                                  title=f"Solve rate on {architecture.name}"))
    print()
    print(render_cost_ratio_summary(comparison, "SATMAP",
                                    ["SABRE", "TKET-like", "MQT-A*"]))
    return 0


def _batch_jobs(args: argparse.Namespace) -> list[RoutingJob]:
    """Jobs for ``batch``: the given QASM files or the built-in tiny suite."""
    architecture = available_architectures()[args.arch]
    jobs = []
    if args.qasm:
        for path in args.qasm:
            circuit = load_qasm(path)
            jobs.append(RoutingJob.from_circuit(circuit, architecture,
                                                router=args.router, name=path.stem))
    else:
        for bench in tiny_suite()[:max(1, args.suite_size)]:
            jobs.append(RoutingJob.from_circuit(bench.circuit, architecture,
                                                router=args.router, name=bench.name))
    return jobs


def command_batch(args: argparse.Namespace) -> int:
    import time as _time

    _apply_solver_backend(args)
    if args.time_budget <= 0:
        print("error: --time-budget must be positive", file=sys.stderr)
        return 2
    missing = [path for path in args.qasm if not path.exists()]
    if missing:
        print(f"error: no such file: {', '.join(map(str, missing))}", file=sys.stderr)
        return 2
    jobs = _batch_jobs(args)
    progress = None
    if not args.quiet:
        progress = lambda update: print(update.format())  # noqa: E731
    start = _time.monotonic()
    with BatchRoutingService(
        max_workers=args.workers,
        mode=args.mode,
        time_budget=args.time_budget,
        cache=False if args.no_cache else None,
        cache_dir=None if args.no_cache else args.cache_dir,
        portfolio=args.portfolio or None,
    ) as service:
        results = service.route_batch(jobs, progress=progress)
        wall = _time.monotonic() - start

        rows = []
        for job, result in zip(jobs, results):
            rows.append([
                job.name, result.router_name, result.status.value,
                result.swap_count if result.solved else "-",
                result.added_cnots if result.solved else "-",
                round(result.solve_time, 3),
                "hit" if "cache-hit" in result.notes else "",
            ])
        print()
        print(render_table(
            ["circuit", "router", "status", "swaps", "CNOTs", "time (s)", "cache"],
            rows, title=f"Batch of {len(jobs)} jobs on {args.arch}"))
        print()
        print(service.telemetry.summary())
        cache_stats = service.stats().get("cache")
        if cache_stats is not None:
            print(f"cache: {cache_stats['hits']} hits / {cache_stats['misses']} misses "
                  f"({cache_stats['entries']} entries on disk at {args.cache_dir})")
        print(f"batch wall time: {wall:.3f}s "
              f"({len(jobs) / wall if wall > 0 else 0.0:.2f} jobs/s)")
        solved = sum(1 for result in results if result.solved)
        print(f"solved {solved}/{len(jobs)} jobs")
        return 0 if solved == len(jobs) else 2


def command_bench_service(args: argparse.Namespace) -> int:
    import time as _time

    _apply_solver_backend(args)
    if args.time_budget <= 0:
        print("error: --time-budget must be positive", file=sys.stderr)
        return 2
    architecture = available_architectures()[args.arch]
    suite = tiny_suite()
    benches = [suite[index % len(suite)] for index in range(max(1, args.jobs))]

    def make_jobs() -> list[RoutingJob]:
        return [RoutingJob.from_circuit(bench.circuit, architecture,
                                        router=args.router, name=f"{bench.name}#{i}")
                for i, bench in enumerate(benches)]

    def timed(service: BatchRoutingService) -> tuple[float, int]:
        jobs = make_jobs()
        start = _time.monotonic()
        results = service.route_batch(jobs, time_budget=args.time_budget)
        elapsed = _time.monotonic() - start
        return elapsed, sum(1 for result in results if result.solved)

    with BatchRoutingService(max_workers=1, mode="serial", cache=False) as serial:
        serial_time, serial_solved = timed(serial)
    with BatchRoutingService(max_workers=args.workers, mode="auto") as pooled:
        pooled_time, pooled_solved = timed(pooled)
        warm_time, warm_solved = timed(pooled)
        hits = pooled.cache.hits

    rows = [
        ["serial (no cache)", round(serial_time, 3),
         round(len(benches) / max(serial_time, 1e-9), 2), serial_solved],
        [f"pooled ({pooled.pool.mode}, cold cache)", round(pooled_time, 3),
         round(len(benches) / max(pooled_time, 1e-9), 2), pooled_solved],
        ["pooled (warm cache)", round(warm_time, 3),
         round(len(benches) / max(warm_time, 1e-9), 2), warm_solved],
    ]
    print(render_table(["configuration", "time (s)", "jobs/s", "solved"], rows,
                       title=f"Service throughput: {len(benches)} x {args.router} "
                             f"on {args.arch}"))
    print(f"cache hits on warm run: {hits}")
    print(f"warm-cache speedup over serial: {serial_time / max(warm_time, 1e-9):.1f}x")
    return 0


def command_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.server import AdmissionController, RoutingGateway
    from repro.server.app import serve as serve_gateway

    _apply_solver_backend(args)
    if args.time_budget <= 0:
        print("error: --time-budget must be positive", file=sys.stderr)
        return 2
    if args.workers < 1:
        print("error: --workers must be at least 1", file=sys.stderr)
        return 2
    if args.trace_sample is not None and not 0.0 <= args.trace_sample <= 1.0:
        print("error: --trace-sample must be in [0, 1]", file=sys.stderr)
        return 2
    max_bytes = (int(args.cache_max_mb * 1024 * 1024)
                 if args.cache_max_mb else None)
    if args.workers > 1:
        return _serve_fleet(args, max_bytes)
    service = BatchRoutingService(
        max_workers=args.pool_workers,
        mode=args.mode,
        time_budget=args.time_budget,
        cache=False if args.no_cache else None,
        cache_dir=None if args.no_cache else args.cache_dir,
        cache_max_bytes=max_bytes,
        portfolio=args.portfolio or None,
    )
    admission = AdmissionController(rate=args.rate, burst=args.burst,
                                    max_pending=args.max_pending)
    sampler = None
    if args.trace_sample is not None or args.slow_trace_ms is not None:
        from repro.obs.sampling import TailSampler

        sampler = TailSampler(
            rate=args.trace_sample if args.trace_sample is not None else 1.0,
            slow_threshold=(args.slow_trace_ms / 1000.0
                            if args.slow_trace_ms is not None else None))
    gateway = RoutingGateway(service=service, host=args.host, port=args.port,
                             admission=admission,
                             time_budget=args.time_budget,
                             trace_dir=args.trace_dir,
                             events_dir=args.events_dir,
                             slo=tuple(args.slo or ()),
                             sampler=sampler)

    def announce(started: RoutingGateway) -> None:
        print(f"repro gateway listening on {started.url} "
              f"(budget {args.time_budget}s, rate {args.rate}/s, "
              f"burst {args.burst:g}, backlog {args.max_pending})")
        print("SIGTERM or ^C drains in-flight jobs before exiting")

    try:
        asyncio.run(serve_gateway(gateway, on_started=announce))
    finally:
        service.close()
    print(service.telemetry.summary())
    return 0


def _serve_fleet(args: argparse.Namespace, max_bytes: int | None) -> int:
    """``repro serve --workers N`` for N > 1: the sharded dispatcher fleet."""
    import asyncio

    from repro.cluster import ClusterDispatcher, FleetConfig, serve_fleet

    config = FleetConfig(
        workers=args.workers,
        host=args.host,
        port=args.port,
        time_budget=args.time_budget,
        pool_workers=args.pool_workers,
        pool_mode=args.mode,
        cache_dir=None if args.no_cache else str(args.cache_dir),
        cache_max_bytes=max_bytes,
        portfolio=args.portfolio or None,
        rate=args.rate,
        burst=args.burst,
        max_pending=args.max_pending,
        trace_dir=str(args.trace_dir) if args.trace_dir else None,
        events_dir=str(args.events_dir) if args.events_dir else None,
        slos=tuple(args.slo or ()),
        trace_sample_rate=args.trace_sample,
        slow_trace_seconds=(args.slow_trace_ms / 1000.0
                            if args.slow_trace_ms is not None else None),
        solver_backend=args.solver_backend,
    )
    dispatcher = ClusterDispatcher(config)

    def announce(started: ClusterDispatcher) -> None:
        shards = ", ".join(
            f"{worker['shard']}:{worker['port']}"
            for worker in started._fleet_section()["worker_detail"])
        print(f"repro fleet dispatcher listening on {started.url} "
              f"({config.workers} shard workers: {shards})")
        print(f"budget {config.time_budget}s, rate {config.rate}/s, "
              f"burst {config.burst:g}, backlog {config.max_pending}")
        print("SIGTERM or ^C drains every worker before exiting")

    asyncio.run(serve_fleet(dispatcher, on_started=announce))
    counters = dispatcher.counters
    print(f"fleet served {counters['requests']} requests, dispatched "
          f"{counters['dispatched']} submissions, restarted "
          f"{counters['worker_restarts']} workers")
    return 0


def command_submit(args: argparse.Namespace) -> int:
    from repro.server import QuotaExceededError, RoutingClient, ServerError

    client = RoutingClient.from_url(args.url, client_id=args.client_id,
                                    timeout=min(60.0, args.timeout))
    qasm_text = args.qasm.read_text()
    try:
        ticket = client.submit(qasm_text, architecture=args.arch,
                               router=args.router, name=args.qasm.stem,
                               time_budget=args.time_budget)
    except QuotaExceededError as error:
        print(f"error: over quota; retry after {error.retry_after:.1f}s",
              file=sys.stderr)
        return 3
    except (ServerError, ConnectionError, OSError) as error:
        print(f"error: cannot submit to {client.url}: {error}", file=sys.stderr)
        return 2
    if args.no_wait:
        if args.json:
            print(json.dumps(ticket, indent=2, sort_keys=True))
        else:
            dedup = " (deduplicated)" if ticket.get("deduplicated") else ""
            print(f"job {ticket['job_id']} {ticket['status']}{dedup}")
        return 0
    try:
        result = client.wait(ticket["job_id"], timeout=args.timeout)
    except (ServerError, TimeoutError, ConnectionError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    output = None
    if result.solved and args.output is not None:
        save_qasm(result.routed_circuit, args.output)
        output = args.output
    if args.json:
        payload = {
            "job_id": ticket["job_id"],
            "deduplicated": ticket.get("deduplicated", False),
            "server": client.url,
            "status": result.status.value,
            "solved": result.solved,
            "router": result.router_name,
            "swap_count": result.swap_count if result.solved else None,
            "added_cnots": result.added_cnots if result.solved else None,
            "solve_time": round(result.solve_time, 6),
            "notes": result.notes,
            "output": str(output) if output is not None else None,
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        print(result.summary())
        if output is not None:
            print(f"routed circuit written to {output}")
    return 0 if result.solved else 2


def command_trace(args: argparse.Namespace) -> int:
    from repro.server import RoutingClient, ServerError

    client = RoutingClient.from_url(args.url, client_id=args.client_id)
    try:
        payload = client.trace(args.job_id)
    except (ServerError, ConnectionError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(payload.get("trace"), indent=2, sort_keys=True))
        return 0
    rendered = payload.get("rendered")
    if rendered and args.slow_ms is None:
        print(rendered)
    else:
        from repro.obs import render_trace
        threshold = args.slow_ms / 1000.0 if args.slow_ms is not None else None
        print(render_trace(payload["trace"], slow_threshold=threshold))
    return 0


def command_top(args: argparse.Namespace) -> int:
    from repro.obs.dashboard import run_top
    from repro.server import RoutingClient

    if args.interval <= 0:
        print("error: --interval must be positive", file=sys.stderr)
        return 2
    client = RoutingClient.from_url(args.url, client_id=args.client_id)
    frames = run_top(client,
                     interval=args.interval,
                     iterations=1 if args.once else None,
                     clear=not args.once)
    return 0 if frames else 2


def command_info(args: argparse.Namespace) -> int:
    from repro.sat.backends import describe_backends

    architecture = available_architectures()[args.arch]
    record = architecture_record(architecture, key=args.arch, include_edges=True)
    backends = describe_backends()
    if args.json:
        record = dict(record, solver_backends=backends)
        print(json.dumps(record, indent=2, sort_keys=True))
        return 0
    rows = [
        ["name", record["name"]],
        ["physical qubits", record["num_qubits"]],
        ["edges", record["num_edges"]],
        ["average degree", record["average_degree"]],
        ["diameter", record["diameter"]],
        ["connected", record["connected"]],
        ["solver backends", ", ".join(backends["available"])],
        ["solver default", backends["default"]],
    ]
    print(render_table(["property", "value"], rows))
    return 0


def command_devices(args: argparse.Namespace) -> int:
    records = device_records()
    if args.json:
        print(json.dumps(records, indent=2, sort_keys=True))
        return 0
    rows = [[record["device"], record["num_qubits"], record["num_edges"],
             round(record["average_degree"], 2), record["diameter"]]
            for record in records]
    print(render_table(["device", "qubits", "edges", "avg degree", "diameter"], rows,
                       title="Device catalogue"))
    print(f"\nrouters: {', '.join(list_routers())} (see `repro routers`)")
    return 0


def _render_option(option: dict) -> str:
    default = option["default"]
    rendered = "none" if default is None else default
    return f"{option['name']}={rendered}"


def command_routers(args: argparse.Namespace) -> int:
    entries = describe_routers(args.capability)
    if args.name is not None:
        entries = [entry for entry in entries if entry["name"] == args.name]
        if not entries:
            known = ", ".join(list_routers(args.capability))
            print(f"error: unknown router {args.name!r}; known: {known}",
                  file=sys.stderr)
            return 2
    if args.json:
        print(json.dumps(entries, indent=2, sort_keys=True))
        return 0
    if args.name is not None:
        entry = entries[0]
        print(f"{entry['name']}: {entry['summary']}")
        print(f"capabilities: {', '.join(entry['capabilities']) or '-'}")
        rows = [[option["name"], option["type"] + ("?" if option["allow_none"] else ""),
                 "none" if option["default"] is None else option["default"],
                 option["help"]]
                for option in entry["options"]]
        print(render_table(["option", "type", "default", "description"], rows))
        print(f"\nspec string: {entry['name']}:"
              + ",".join(f"{o['name']}=..." for o in entry["options"][:2]))
        return 0
    rows = [[entry["name"], ", ".join(entry["capabilities"]),
             " ".join(_render_option(option) for option in entry["options"]
                      if option["name"] not in ("time_budget", "verify")) or "-",
             entry["summary"]]
            for entry in entries]
    print(render_table(["router", "capabilities", "options (defaults)", "summary"],
                       rows, title="Registered routers"))
    from repro.sat.backends import describe_backends

    backends = describe_backends()
    print(f"\nsolver backends: {', '.join(backends['available'])} "
          f"(default: {backends['default']}; select with "
          "solver_backend=... or --solver-backend)")
    print("select with --router NAME[:key=value,...]; "
          "details: repro routers NAME")
    return 0


def command_draw(args: argparse.Namespace) -> int:
    circuit = load_qasm(args.qasm)
    print(circuit_summary(circuit))
    print(draw_circuit(circuit, max_columns=args.max_columns, unicode=not args.ascii))
    return 0


def command_version(args: argparse.Namespace) -> int:
    from repro import __version__

    print(f"repro {__version__}")
    return 0


def command_generate(args: argparse.Namespace) -> int:
    if args.kind == "qft":
        circuit = qft_circuit(args.qubits)
    elif args.kind == "ghz":
        circuit = ghz_circuit(args.qubits)
    elif args.kind == "qaoa":
        circuit = maxcut_qaoa_circuit(num_qubits=args.qubits, num_cycles=args.cycles,
                                      seed=args.seed)
    else:
        circuit = random_circuit(num_qubits=args.qubits, num_two_qubit_gates=args.gates,
                                 seed=args.seed)
    save_qasm(circuit, args.output)
    print(f"{circuit_summary(circuit)}")
    print(f"written to {args.output}")
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    commands = {
        "route": command_route,
        "compare": command_compare,
        "batch": command_batch,
        "bench-service": command_bench_service,
        "serve": command_serve,
        "submit": command_submit,
        "trace": command_trace,
        "top": command_top,
        "info": command_info,
        "devices": command_devices,
        "routers": command_routers,
        "draw": command_draw,
        "generate": command_generate,
        "version": command_version,
    }
    handler = commands.get(args.command)
    if handler is None:  # pragma: no cover - argparse enforces the choices
        return 1
    return handler(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
