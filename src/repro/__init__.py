"""repro: a reproduction of "Qubit Mapping and Routing via MaxSAT" (MICRO 2022).

The package is organised bottom-up:

* :mod:`repro.sat` / :mod:`repro.maxsat` -- a CDCL SAT solver and an anytime
  weighted MaxSAT solver (the substrate the paper gets from Open-WBO-Inc-MCS);
* :mod:`repro.circuits` -- circuit IR, OpenQASM 2.0 I/O, QAOA and benchmark
  generators;
* :mod:`repro.hardware` -- coupling graphs (IBM Tokyo and variants) and noise
  models;
* :mod:`repro.core` -- SATMAP itself: the MaxSAT encoding, the locally optimal
  (slicing) relaxation, the cyclic relaxation, the noise-aware objective, and
  the independent verifier;
* :mod:`repro.baselines` -- SABRE, TKET-style, MQT-A*, TB-OLSQ-style and
  EX-MQT-style comparison routers;
* :mod:`repro.analysis` -- the experiment harness that regenerates the paper's
  tables and figures;
* :mod:`repro.service` -- the batch routing service: a parallel worker pool,
  portfolio racing, and a content-addressed cache of verified results.

Quickstart::

    from repro import SatMapRouter, tokyo_architecture, random_circuit

    circuit = random_circuit(num_qubits=5, num_two_qubit_gates=20, seed=1)
    result = SatMapRouter(slice_size=25, time_budget=60).route(
        circuit, tokyo_architecture())
    print(result.summary())
"""

from repro.circuits import (
    QuantumCircuit,
    load_qasm,
    maxcut_qaoa_circuit,
    parse_qasm,
    random_circuit,
)
from repro.core import (
    NoiseAwareSatMapRouter,
    RoutingResult,
    RoutingStatus,
    SatMapRouter,
    route_cyclic,
    verify_routing,
)
from repro.hardware import (
    Architecture,
    NoiseModel,
    tokyo_architecture,
    tokyo_minus_architecture,
    tokyo_plus_architecture,
)
from repro.sat import SatSession
from repro.service import BatchRoutingService, ResultCache, RoutingJob

__version__ = "1.2.0"

__all__ = [
    "QuantumCircuit",
    "random_circuit",
    "maxcut_qaoa_circuit",
    "parse_qasm",
    "load_qasm",
    "SatMapRouter",
    "NoiseAwareSatMapRouter",
    "route_cyclic",
    "RoutingResult",
    "RoutingStatus",
    "verify_routing",
    "Architecture",
    "NoiseModel",
    "BatchRoutingService",
    "RoutingJob",
    "ResultCache",
    "SatSession",
    "tokyo_architecture",
    "tokyo_minus_architecture",
    "tokyo_plus_architecture",
    "__version__",
]
