"""repro: a reproduction of "Qubit Mapping and Routing via MaxSAT" (MICRO 2022).

The package is organised bottom-up:

* :mod:`repro.sat` / :mod:`repro.maxsat` -- a CDCL SAT solver and an anytime
  weighted MaxSAT solver (the substrate the paper gets from Open-WBO-Inc-MCS);
* :mod:`repro.circuits` -- circuit IR, OpenQASM 2.0 I/O, QAOA and benchmark
  generators;
* :mod:`repro.hardware` -- coupling graphs (IBM Tokyo and variants) and noise
  models;
* :mod:`repro.core` -- SATMAP itself: the MaxSAT encoding, the locally optimal
  (slicing) relaxation, the cyclic relaxation, the noise-aware objective, and
  the independent verifier;
* :mod:`repro.baselines` -- SABRE, TKET-style, MQT-A*, TB-OLSQ-style and
  EX-MQT-style comparison routers;
* :mod:`repro.api` -- the canonical public surface: the ``Router`` protocol,
  declarative ``RouterSpec`` s, the capability-aware router registry, and the
  one-call :func:`repro.route`;
* :mod:`repro.analysis` -- the experiment harness that regenerates the paper's
  tables and figures;
* :mod:`repro.service` -- the batch routing service: a parallel worker pool,
  portfolio racing, and a content-addressed cache of verified results;
* :mod:`repro.server` -- the network layer: an asyncio JSON-over-HTTP
  gateway serving the batch service to concurrent clients (versioned wire
  protocol, cross-client dedup, token-bucket admission control, ``/metrics``,
  graceful drain) plus the blocking ``RoutingClient``;
* :mod:`repro.obs` -- observability primitives shared by all of the above:
  nested spans that survive the process-pool boundary, fixed-bucket
  Prometheus histograms, and a JSONL trace exporter.

Quickstart -- route one circuit with a declarative router spec:

    >>> import repro
    >>> circuit = repro.random_circuit(num_qubits=4, num_two_qubit_gates=8,
    ...                                seed=1)
    >>> result = repro.route(circuit, repro.tokyo_architecture(),
    ...                      spec="sabre:seed=0,time_budget=10")
    >>> result.solved
    True

Specs name any registered router and round-trip between the string, dict,
and JSON forms (the dict form is what keys the service's result cache):

    >>> spec = repro.RouterSpec.from_string("satmap:slice_size=25")
    >>> spec.to_dict()
    {'router': 'satmap', 'options': {'slice_size': 25}}
    >>> repro.RouterSpec.parse(spec.to_dict()) == spec
    True
    >>> "noise-satmap" in repro.list_routers(capability="noise_aware")
    True

The same specs drive the batch service (parallel worker pool, portfolio
racing, verified result cache)::

    from repro import BatchRoutingService, RoutingJob

    with BatchRoutingService(time_budget=10.0) as service:
        jobs = [RoutingJob.from_spec(circ, arch, "satmap:slice_size=25")
                for circ in circuits]
        results = service.route_batch(jobs)
"""

from repro.circuits import (
    QuantumCircuit,
    load_qasm,
    maxcut_qaoa_circuit,
    parse_qasm,
    random_circuit,
)
from repro.core import (
    CyclicRouter,
    NoiseAwareSatMapRouter,
    RoutingResult,
    RoutingStatus,
    SatMapRouter,
    route_cyclic,
    verify_routing,
)

# repro.api sits above repro.core (its protocol module needs core.result and
# core's routers import the protocol), so it must import after repro.core.
from repro.api import (
    BaseRouter,
    RouteRequest,
    Router,
    RouterSpec,
    get_router,
    list_routers,
    register_router,
    route,
)
from repro.hardware import (
    Architecture,
    NoiseModel,
    tokyo_architecture,
    tokyo_minus_architecture,
    tokyo_plus_architecture,
)
from repro.sat import SatSession
from repro.service import BatchRoutingService, ResultCache, RoutingJob
from repro.server import RoutingClient, RoutingGateway

__version__ = "1.10.0"

__all__ = [
    "QuantumCircuit",
    "random_circuit",
    "maxcut_qaoa_circuit",
    "parse_qasm",
    "load_qasm",
    "route",
    "Router",
    "BaseRouter",
    "RouterSpec",
    "RouteRequest",
    "register_router",
    "get_router",
    "list_routers",
    "SatMapRouter",
    "NoiseAwareSatMapRouter",
    "CyclicRouter",
    "route_cyclic",
    "RoutingResult",
    "RoutingStatus",
    "verify_routing",
    "Architecture",
    "NoiseModel",
    "BatchRoutingService",
    "RoutingJob",
    "ResultCache",
    "RoutingClient",
    "RoutingGateway",
    "SatSession",
    "tokyo_architecture",
    "tokyo_minus_architecture",
    "tokyo_plus_architecture",
    "__version__",
]
