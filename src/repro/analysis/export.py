"""Exporting experiment records to CSV and JSON.

The benchmark harness renders human-readable tables; this module provides the
machine-readable side so results can be post-processed (plotted, diffed
against the paper's numbers, or aggregated across machines) without re-running
the experiments.
"""

from __future__ import annotations

import csv
import io
import json
from pathlib import Path

from repro.analysis.experiments import ExperimentRecord, SuiteComparison

CSV_FIELDS = [
    "router", "circuit", "num_qubits", "num_two_qubit_gates", "solved", "optimal",
    "swap_count", "added_cnots", "solve_time", "status", "notes",
]


def records_to_csv(records: list[ExperimentRecord]) -> str:
    """Render records as CSV text with a fixed, documented column order."""
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=CSV_FIELDS)
    writer.writeheader()
    for record in records:
        writer.writerow({field: getattr(record, field) for field in CSV_FIELDS})
    return buffer.getvalue()


def records_to_json(records: list[ExperimentRecord]) -> str:
    """Render records as a JSON array of objects."""
    payload = [{field: getattr(record, field) for field in CSV_FIELDS}
               for record in records]
    return json.dumps(payload, indent=2)


def records_from_csv(text: str) -> list[ExperimentRecord]:
    """Parse records back from :func:`records_to_csv` output."""
    records = []
    for row in csv.DictReader(io.StringIO(text)):
        records.append(ExperimentRecord(
            router=row["router"],
            circuit=row["circuit"],
            num_qubits=int(row["num_qubits"]),
            num_two_qubit_gates=int(row["num_two_qubit_gates"]),
            solved=row["solved"] == "True",
            optimal=row["optimal"] == "True",
            swap_count=int(row["swap_count"]),
            added_cnots=int(row["added_cnots"]),
            solve_time=float(row["solve_time"]),
            status=row["status"],
            notes=row["notes"],
        ))
    return records


def comparison_records(comparison: SuiteComparison) -> list[ExperimentRecord]:
    """Flatten a comparison into a single record list (router-major order)."""
    flattened: list[ExperimentRecord] = []
    for router in comparison.routers():
        flattened.extend(comparison.records[router])
    return flattened


def save_comparison_csv(comparison: SuiteComparison, path: str | Path) -> None:
    """Write a comparison's records to ``path`` as CSV."""
    Path(path).write_text(records_to_csv(comparison_records(comparison)))


def save_comparison_json(comparison: SuiteComparison, path: str | Path) -> None:
    """Write a comparison's records to ``path`` as JSON."""
    Path(path).write_text(records_to_json(comparison_records(comparison)))
