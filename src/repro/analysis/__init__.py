"""Experiment harness, metrics, and reporting.

Everything needed to regenerate the paper's tables and figures lives here:

* :mod:`repro.analysis.suite` -- scaled benchmark/architecture presets sized
  for the pure-Python solver (the paper's cluster-scale suite is available via
  :func:`repro.circuits.library.benchmark_suite` for users with more time);
* :mod:`repro.analysis.experiments` -- run a set of routers over a suite with
  per-instance budgets and collect :class:`ExperimentRecord` rows;
* :mod:`repro.analysis.metrics` -- cost ratios and aggregate statistics, with
  the paper's conventions for zero-cost and unsolved instances;
* :mod:`repro.analysis.reporting` -- plain-text rendering of each table/figure.
"""

from repro.analysis.metrics import (
    cost_ratio,
    geometric_mean,
    mean_cost_ratio,
    solve_statistics,
)
from repro.analysis.experiments import ExperimentRecord, run_router_on_suite
from repro.analysis.plotting import bar_chart, histogram, line_plot, scatter_plot
from repro.analysis.statistics import (
    bootstrap_confidence_interval,
    speedup_geometric_mean,
    standard_deviation,
    summarize,
)
from repro.analysis.reporting import render_table

__all__ = [
    "cost_ratio",
    "mean_cost_ratio",
    "geometric_mean",
    "solve_statistics",
    "ExperimentRecord",
    "run_router_on_suite",
    "render_table",
    "bar_chart",
    "scatter_plot",
    "histogram",
    "line_plot",
    "standard_deviation",
    "summarize",
    "bootstrap_confidence_interval",
    "speedup_geometric_mean",
]
