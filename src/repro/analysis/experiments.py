"""Running routers over benchmark suites and collecting comparable records.

:func:`run_router_on_suite` is the workhorse behind every table and figure
bench: it instantiates a router per circuit (so per-instance time budgets are
honoured), runs it, and records cost, runtime, and solve status in an
:class:`ExperimentRecord`.  Aggregation helpers turn lists of records into the
paper's summary rows.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.analysis.metrics import cost_ratio, mean_cost_ratio
from repro.api.spec import RouterSpec
from repro.circuits.library import BenchmarkCircuit
from repro.core.result import RoutingResult
from repro.hardware.architecture import Architecture


@dataclass
class ExperimentRecord:
    """One (router, circuit) outcome in a comparable, serialisable form."""

    router: str
    circuit: str
    num_qubits: int
    num_two_qubit_gates: int
    solved: bool
    optimal: bool
    swap_count: int
    added_cnots: int
    solve_time: float
    status: str
    notes: str = ""
    #: Solver-depth counters from the SAT core (zero for heuristic routers
    #: and cache hits, which never touch the solver).
    conflicts: int = 0
    propagations: int = 0
    restarts: int = 0
    #: Which solve core produced the depth counters ("" when no SAT solve
    #: ran: heuristic routers, cache hits).
    solver_backend: str = ""

    @classmethod
    def from_result(cls, result: RoutingResult, bench: BenchmarkCircuit) -> "ExperimentRecord":
        stats = result.solver_stats or {}
        return cls(
            router=result.router_name,
            circuit=bench.name,
            num_qubits=bench.num_qubits,
            num_two_qubit_gates=bench.num_two_qubit_gates,
            solved=result.solved,
            optimal=result.optimal,
            swap_count=result.swap_count if result.solved else -1,
            added_cnots=result.added_cnots if result.solved else -1,
            solve_time=result.solve_time,
            status=result.status.value,
            notes=result.notes,
            conflicts=int(stats.get("conflicts", 0)),
            propagations=int(stats.get("propagations", 0)),
            restarts=int(stats.get("restarts", 0)),
            solver_backend=str(stats.get("backend", "")),
        )


@dataclass
class SuiteComparison:
    """Records of several routers over the same suite, keyed by router name."""

    records: dict[str, list[ExperimentRecord]] = field(default_factory=dict)

    def add(self, record: ExperimentRecord) -> None:
        self.records.setdefault(record.router, []).append(record)

    def routers(self) -> list[str]:
        return sorted(self.records)

    def solved_count(self, router: str) -> int:
        return sum(1 for record in self.records.get(router, []) if record.solved)

    def largest_solved(self, router: str) -> int:
        solved = [record.num_two_qubit_gates for record in self.records.get(router, [])
                  if record.solved]
        return max(solved, default=0)

    def mean_time(self, router: str, only_solved: bool = True) -> float:
        records = self.records.get(router, [])
        if only_solved:
            records = [record for record in records if record.solved]
        if not records:
            return float("nan")
        return sum(record.solve_time for record in records) / len(records)

    def cost_ratios(self, reference_router: str, satmap_router: str) -> list[float | None]:
        """Per-circuit Fig. 12 ratios over circuits both routers solved."""
        reference = {record.circuit: record for record in self.records.get(reference_router, [])}
        ratios: list[float | None] = []
        for record in self.records.get(satmap_router, []):
            other = reference.get(record.circuit)
            if other is None or not record.solved or not other.solved:
                continue
            ratios.append(cost_ratio(other.added_cnots, record.added_cnots))
        return ratios

    def mean_cost_ratio(self, reference_router: str, satmap_router: str) -> float:
        return mean_cost_ratio(self.cost_ratios(reference_router, satmap_router))


#: A router selection for the harness: a zero-argument constructor (run
#: in-process), or a declarative spec -- a :class:`~repro.api.RouterSpec` or
#: a spec string like ``"satmap:slice_size=10"`` -- built through the one
#: registry (in-process, or via the batch service when one is supplied).
RouterFactory = Callable[[], object] | str | RouterSpec


def _as_factory(factory: RouterFactory) -> Callable[[], object]:
    """A zero-argument constructor for any accepted factory form."""
    if callable(factory):
        return factory
    spec = RouterSpec.parse(factory)
    return lambda: spec.build()


def run_suite_through_service(
    service,
    router: str | RouterSpec,
    suite: list[BenchmarkCircuit],
    architecture: Architecture,
    options: dict | None = None,
    comparison: SuiteComparison | None = None,
) -> list[ExperimentRecord]:
    """Run one registry router over a suite via a :class:`BatchRoutingService`.

    ``router`` is any spec form the registry accepts.  The whole suite is
    submitted as a single batch, so the service's worker pool parallelises
    across circuits and repeated (circuit, architecture, router)
    combinations are served from its content-addressed cache.
    """
    from repro.service.jobs import RoutingJob

    jobs = [RoutingJob.from_circuit(bench.circuit, architecture, router=router,
                                    options=options, name=bench.name)
            for bench in suite]
    results = service.route_batch(jobs)
    records = []
    for bench, result in zip(suite, results):
        record = ExperimentRecord.from_result(result, bench)
        records.append(record)
        if comparison is not None:
            comparison.add(record)
    return records


def run_router_on_suite(
    router_factory: RouterFactory,
    suite: list[BenchmarkCircuit],
    architecture: Architecture,
    comparison: SuiteComparison | None = None,
) -> list[ExperimentRecord]:
    """Run a router (one fresh instance per circuit) over a benchmark suite.

    ``router_factory`` may be a zero-argument constructor or a declarative
    spec (string or :class:`~repro.api.RouterSpec`) resolved through the
    registry.
    """
    make_router = _as_factory(router_factory)
    records = []
    for bench in suite:
        router = make_router()
        result = router.route(bench.circuit, architecture)
        record = ExperimentRecord.from_result(result, bench)
        records.append(record)
        if comparison is not None:
            comparison.add(record)
    return records


def run_many_routers(
    router_factories: dict[str, RouterFactory],
    suite: list[BenchmarkCircuit],
    architecture: Architecture,
    service=None,
) -> SuiteComparison:
    """Run several routers over the same suite and return the joint comparison.

    With ``service`` (a :class:`repro.service.BatchRoutingService`), factories
    given as declarative specs -- strings like ``"satmap:slice_size=10"`` or
    :class:`~repro.api.RouterSpec` objects -- are executed through the
    service: one batch per router, parallelised over its worker pool and
    backed by its result cache.  Without a service, spec factories run
    in-process through the same registry.  Callable factories always run
    in-process.  Records are keyed by each router's own ``name`` in all
    paths, so downstream reporting is identical.
    """
    comparison = SuiteComparison()
    for _, factory in router_factories.items():
        if isinstance(factory, (str, RouterSpec)) and service is not None:
            run_suite_through_service(service, factory, suite, architecture,
                                      comparison=comparison)
        else:
            run_router_on_suite(factory, suite, architecture, comparison)
    return comparison
