"""Scaled experiment presets.

The paper runs 160 circuits (up to 200k+ two-qubit gates) against the 20-qubit
IBM Tokyo device with 30-60 minute timeouts on a cluster.  A pure-Python SAT
stack cannot match Open-WBO's raw throughput, so the benchmark harness uses
the presets below: smaller circuit suites, reduced architectures that keep the
Tokyo structure (grid plus alternating diagonals), and second-scale budgets.
The *relative* comparisons -- who solves more, who needs fewer SWAPs, how the
relaxations trade quality for scalability -- are what the experiments
reproduce; EXPERIMENTS.md records where absolute numbers differ and why.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.circuits.library import BenchmarkCircuit, named_benchmarks
from repro.circuits.qaoa import maxcut_qaoa_circuit, qaoa_repeated_block
from repro.circuits.random_circuits import random_circuit
from repro.hardware.architecture import Architecture
from repro.hardware.topologies import _grid_edges, reduced_tokyo_architecture


@dataclass(frozen=True)
class QaoaInstance:
    """One row of the Table IV workload: a QAOA circuit plus its repeated block."""

    num_qubits: int
    cycles: int
    circuit: object
    block: object
    prelude: object


def tiny_suite(seed: int = 23) -> list[BenchmarkCircuit]:
    """A dozen small circuits (3-5 qubits, 5-24 two-qubit gates).

    Sized so the full Q1/Q2 comparison -- five routers per circuit -- finishes
    in a couple of minutes of pytest-benchmark time.
    """
    specs = [
        ("tiny_00_q3_g5", 3, 5), ("tiny_01_q3_g8", 3, 8), ("tiny_02_q3_g11", 3, 11),
        ("tiny_03_q4_g9", 4, 9), ("tiny_04_q4_g13", 4, 13), ("tiny_05_q4_g17", 4, 17),
        ("tiny_06_q5_g10", 5, 10), ("tiny_07_q5_g14", 5, 14), ("tiny_08_q5_g18", 5, 18),
        ("tiny_09_q5_g21", 5, 21), ("tiny_10_q4_g24", 4, 24), ("tiny_11_q5_g24", 5, 24),
    ]
    suite = []
    for index, (name, qubits, gates) in enumerate(specs):
        circuit = random_circuit(qubits, gates, seed=seed + index,
                                 interaction_bias=0.5, name=name)
        suite.append(BenchmarkCircuit(name, qubits, gates, circuit))
    return suite


def small_suite(seed: int = 29) -> list[BenchmarkCircuit]:
    """A larger spread (up to 6 qubits / 60 two-qubit gates) for scaling studies."""
    suite = list(tiny_suite(seed=seed))
    extra = [
        ("small_00_q5_g30", 5, 30), ("small_01_q5_g36", 5, 36),
        ("small_02_q6_g30", 6, 30), ("small_03_q6_g40", 6, 40),
        ("small_04_q6_g50", 6, 50), ("small_05_q6_g60", 6, 60),
    ]
    for index, (name, qubits, gates) in enumerate(extra):
        circuit = random_circuit(qubits, gates, seed=seed + 100 + index,
                                 interaction_bias=0.5, name=name)
        suite.append(BenchmarkCircuit(name, qubits, gates, circuit))
    return suite


def named_small_suite(max_two_qubit_gates: int = 40) -> list[BenchmarkCircuit]:
    """The named RevLib-sized benchmarks small enough for constraint tools."""
    return named_benchmarks(max_two_qubit_gates=max_two_qubit_gates)


def qaoa_suite(qubit_counts: tuple[int, ...] = (4, 6, 8),
               cycle_counts: tuple[int, ...] = (2, 4),
               seed: int = 5) -> list[QaoaInstance]:
    """Scaled-down Table IV workload (the paper uses 6-16 qubits)."""
    from repro.circuits.circuit import QuantumCircuit
    from repro.circuits.gates import Gate

    instances = []
    for num_qubits in qubit_counts:
        block = qaoa_repeated_block(num_qubits, degree=3, seed=seed)
        prelude = QuantumCircuit(num_qubits, name="hadamard_prelude")
        for qubit in range(num_qubits):
            prelude.append(Gate("h", (qubit,)))
        for cycles in cycle_counts:
            circuit = maxcut_qaoa_circuit(num_qubits, cycles, degree=3, seed=seed)
            instances.append(QaoaInstance(num_qubits, cycles, circuit, block, prelude))
    return instances


def default_architecture(num_qubits: int = 8) -> Architecture:
    """Reduced Tokyo subgraph: the standard scaled target architecture."""
    return reduced_tokyo_architecture(num_qubits)


def mini_tokyo_family(rows: int = 2, columns: int = 4) -> tuple[Architecture, Architecture, Architecture]:
    """Scaled-down (Tokyo-, Tokyo, Tokyo+) triple for the Q4 experiment.

    The three graphs share the same grid skeleton; the middle one adds one
    alternating diagonal per grid cell and the dense one adds both, so -- like
    the real family in Fig. 9 -- the middle graph's average degree is exactly
    halfway between the sparse and dense variants.
    """
    grid = _grid_edges(rows, columns)
    sparse = Architecture(rows * columns, list(grid), name=f"mini-tokyo-minus-{rows}x{columns}")

    single_diagonals = []
    double_diagonals = []
    for row in range(rows - 1):
        for column in range(columns - 1):
            top_left = row * columns + column
            top_right = top_left + 1
            bottom_left = top_left + columns
            bottom_right = bottom_left + 1
            forward = (top_left, bottom_right)
            backward = (top_right, bottom_left)
            double_diagonals.extend([forward, backward])
            single_diagonals.append(backward if (row + column) % 2 == 0 else forward)

    medium = Architecture(rows * columns, grid + single_diagonals,
                          name=f"mini-tokyo-{rows}x{columns}")
    dense = Architecture(rows * columns, grid + double_diagonals,
                         name=f"mini-tokyo-plus-{rows}x{columns}")
    return sparse, medium, dense


def suite_sizes(suite: list[BenchmarkCircuit]) -> dict[str, int]:
    """Circuit name -> two-qubit gate count, for solve-rate summaries."""
    return {bench.name: bench.num_two_qubit_gates for bench in suite}
