"""Statistical helpers for the experiment harness.

The paper reports arithmetic means of cost ratios, geometric means of
speedups, and standard deviations (Q4 reports the standard deviation of the
cost ratio per architecture).  Heuristic tools in the comparison are
nondeterministic, so Q2 averages 20 runs per benchmark; when this
reproduction does the same on a handful of scaled instances the uncertainty
matters, which is what the bootstrap confidence interval is for.
"""

from __future__ import annotations

import math
import random


def arithmetic_mean(values: list[float]) -> float:
    """Plain average; 0.0 for an empty list (matching the reporting code)."""
    return sum(values) / len(values) if values else 0.0


def standard_deviation(values: list[float]) -> float:
    """Population standard deviation (the paper's Q4 spread statistic)."""
    if len(values) < 2:
        return 0.0
    mean = arithmetic_mean(values)
    return math.sqrt(sum((value - mean) ** 2 for value in values) / len(values))


def median(values: list[float]) -> float:
    """The median; 0.0 for an empty list."""
    if not values:
        return 0.0
    ordered = sorted(values)
    middle = len(ordered) // 2
    if len(ordered) % 2 == 1:
        return ordered[middle]
    return (ordered[middle - 1] + ordered[middle]) / 2.0


def percentile(values: list[float], fraction: float) -> float:
    """Linear-interpolation percentile, ``fraction`` in [0, 1]."""
    if not values:
        return 0.0
    if not 0.0 <= fraction <= 1.0:
        raise ValueError("fraction must lie in [0, 1]")
    ordered = sorted(values)
    position = fraction * (len(ordered) - 1)
    lower = int(math.floor(position))
    upper = int(math.ceil(position))
    if lower == upper:
        return ordered[lower]
    weight = position - lower
    return ordered[lower] * (1 - weight) + ordered[upper] * weight


def bootstrap_confidence_interval(values: list[float], confidence: float = 0.95,
                                  resamples: int = 2000,
                                  seed: int = 0) -> tuple[float, float]:
    """Percentile-bootstrap confidence interval for the mean."""
    if not values:
        return (0.0, 0.0)
    if not 0.0 < confidence < 1.0:
        raise ValueError("confidence must lie strictly between 0 and 1")
    rng = random.Random(seed)
    means = []
    for _ in range(resamples):
        sample = [values[rng.randrange(len(values))] for _ in values]
        means.append(arithmetic_mean(sample))
    tail = (1.0 - confidence) / 2.0
    return (percentile(means, tail), percentile(means, 1.0 - tail))


def summarize(values: list[float]) -> dict[str, float]:
    """A compact summary used by the reporting tables."""
    return {
        "count": float(len(values)),
        "mean": arithmetic_mean(values),
        "std": standard_deviation(values),
        "median": median(values),
        "min": min(values) if values else 0.0,
        "max": max(values) if values else 0.0,
    }


def speedup_geometric_mean(baseline_times: list[float],
                           candidate_times: list[float]) -> float:
    """Geometric-mean speedup of the candidate over the baseline.

    This is how the paper's "40x faster than TB-OLSQ / 400x faster than
    EX-MQT" numbers are computed: per-instance ratios aggregated with the
    geometric mean so a single outlier cannot dominate.
    """
    if len(baseline_times) != len(candidate_times):
        raise ValueError("speedups need paired timings")
    ratios = []
    for baseline, candidate in zip(baseline_times, candidate_times):
        if baseline <= 0 or candidate <= 0:
            continue
        ratios.append(baseline / candidate)
    if not ratios:
        return 1.0
    return math.exp(sum(math.log(ratio) for ratio in ratios) / len(ratios))
