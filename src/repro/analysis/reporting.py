"""Plain-text rendering of the paper's tables and figure summaries.

The benchmark harness prints its findings with these helpers so every bench
produces output directly comparable to the corresponding table or figure in
the paper (same rows, same columns, same aggregation conventions).
"""

from __future__ import annotations

from repro.analysis.experiments import SuiteComparison
from repro.analysis.metrics import mean_cost_ratio, undefined_ratio_count


def render_table(headers: list[str], rows: list[list[object]], title: str = "") -> str:
    """Simple fixed-width table renderer."""
    columns = len(headers)
    for row in rows:
        if len(row) != columns:
            raise ValueError(f"row {row!r} does not match headers {headers!r}")
    text_rows = [[_format_cell(cell) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in text_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def render_row(cells: list[str]) -> str:
        return " | ".join(cell.ljust(widths[index]) for index, cell in enumerate(cells))

    lines = []
    if title:
        lines.append(title)
    lines.append(render_row(headers))
    lines.append("-+-".join("-" * width for width in widths))
    lines.extend(render_row(row) for row in text_rows)
    return "\n".join(lines)


def _format_cell(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.2f}"
    return str(cell)


def render_solve_rate_table(comparison: SuiteComparison, total: int,
                            title: str = "Table I: constraint-based tools") -> str:
    """Table I / Table II style: # solved and largest circuit solved per router."""
    rows = []
    for router in comparison.routers():
        rows.append([router, f"{comparison.solved_count(router)}/{total}",
                     comparison.largest_solved(router),
                     comparison.mean_time(router)])
    return render_table(
        ["tool", "# solved", "largest solved (2q gates)", "mean time (s)"],
        rows, title=title)


def render_cost_ratio_summary(comparison: SuiteComparison, satmap_router: str,
                              reference_routers: list[str],
                              title: str = "Fig. 12: cost ratio vs heuristics") -> str:
    """Fig. 12 / Fig. 14 style summary: mean cost ratio per reference router."""
    rows = []
    for reference in reference_routers:
        ratios = comparison.cost_ratios(reference, satmap_router)
        rows.append([
            reference,
            len(ratios),
            mean_cost_ratio(ratios),
            undefined_ratio_count(ratios),
        ])
    return render_table(
        ["vs tool", "# compared", "mean cost ratio", "# SATMAP zero-cost wins"],
        rows, title=title)


def render_solver_depth_table(comparison: SuiteComparison,
                              title: str = "solver depth per router") -> str:
    """SAT effort roll-up: conflicts / propagations / restarts per router.

    Heuristic routers never touch the solver, so their rows are all zeros;
    the table makes the MaxSAT work visible next to the wall-clock numbers.
    """
    rows = []
    for router in comparison.routers():
        records = comparison.records[router]
        backends = sorted({record.solver_backend for record in records
                           if record.solver_backend})
        rows.append([
            router,
            ",".join(backends) or "-",
            sum(record.conflicts for record in records),
            sum(record.propagations for record in records),
            sum(record.restarts for record in records),
            round(sum(record.solve_time for record in records), 3),
        ])
    return render_table(
        ["tool", "backend", "conflicts", "propagations", "restarts",
         "time (s)"],
        rows, title=title)


def render_records_table(comparison: SuiteComparison,
                         title: str = "per-benchmark results") -> str:
    """Long-form dump: one row per (router, circuit)."""
    rows = []
    for router in comparison.routers():
        for record in comparison.records[router]:
            rows.append([router, record.circuit, record.num_two_qubit_gates,
                         record.status, record.swap_count, record.solve_time])
    return render_table(
        ["tool", "circuit", "2q gates", "status", "swaps", "time (s)"],
        rows, title=title)
