"""Text-mode figures (bar charts, scatter plots, histograms).

The paper's evaluation figures are bar charts (Fig. 1, Fig. 2), strip/scatter
plots of cost ratios (Fig. 12, Fig. 13, Fig. 14, Fig. 16), and a line plot
(Fig. 15).  This reproduction has no plotting dependency, so the benchmark
harness renders every figure as monospaced text: good enough to read the
shape of a distribution in a terminal or a results file, and trivially
diffable between runs.
"""

from __future__ import annotations

import math

_FULL_BLOCK = "█"
_PARTIAL_BLOCKS = ["", "▏", "▎", "▍", "▌", "▋", "▊", "▉"]


def bar_chart(values: dict[str, float], title: str = "", width: int = 50,
              unit: str = "") -> str:
    """Horizontal bar chart with one labelled bar per entry.

    Mirrors Fig. 1 / Fig. 2: categorical x-axis (tool name), numeric height.
    """
    if not values:
        return title or "(no data)"
    label_width = max(len(label) for label in values)
    largest = max(values.values())
    scale = (width / largest) if largest > 0 else 0.0
    lines = [title] if title else []
    for label, value in values.items():
        length = value * scale
        whole = int(length)
        fraction = length - whole
        partial = _PARTIAL_BLOCKS[int(fraction * 8)] if largest > 0 else ""
        bar = _FULL_BLOCK * whole + partial
        lines.append(f"{label.ljust(label_width)} | {bar} {value:g}{unit}")
    return "\n".join(lines)


def scatter_plot(points: list[tuple[float, float]], title: str = "",
                 width: int = 60, height: int = 15,
                 x_label: str = "x", y_label: str = "y") -> str:
    """A monospaced scatter plot of (x, y) points.

    Mirrors Fig. 16 (cost ratio vs circuit size): both axes are scaled to the
    data range and each point is drawn as ``*`` (overlapping points as ``@``).
    """
    if not points:
        return title or "(no data)"
    xs = [x for x, _ in points]
    ys = [y for _, y in points]
    x_low, x_high = min(xs), max(xs)
    y_low, y_high = min(ys), max(ys)
    x_span = (x_high - x_low) or 1.0
    y_span = (y_high - y_low) or 1.0

    grid = [[" "] * width for _ in range(height)]
    for x, y in points:
        column = min(width - 1, int((x - x_low) / x_span * (width - 1)))
        row = min(height - 1, int((y - y_low) / y_span * (height - 1)))
        row = height - 1 - row  # highest values at the top
        grid[row][column] = "*" if grid[row][column] == " " else "@"

    lines = [title] if title else []
    lines.append(f"{y_label} (top {y_high:g}, bottom {y_low:g})")
    for row in grid:
        lines.append("|" + "".join(row))
    lines.append("+" + "-" * width)
    lines.append(f" {x_label}: {x_low:g} .. {x_high:g}")
    return "\n".join(lines)


def histogram(values: list[float], bins: int = 10, title: str = "",
              width: int = 40) -> str:
    """A vertical-axis histogram (one text row per bin).

    Used for the cost-ratio distributions of Fig. 12 / Fig. 14, where the
    paper plots one marker per benchmark and the reader mostly takes away the
    spread.
    """
    if not values:
        return title or "(no data)"
    if bins <= 0:
        raise ValueError("bins must be positive")
    low, high = min(values), max(values)
    span = (high - low) or 1.0
    counts = [0] * bins
    for value in values:
        index = min(bins - 1, int((value - low) / span * bins))
        counts[index] += 1
    largest = max(counts)
    scale = (width / largest) if largest else 0.0
    lines = [title] if title else []
    for index, count in enumerate(counts):
        bin_low = low + index * span / bins
        bin_high = low + (index + 1) * span / bins
        bar = _FULL_BLOCK * int(count * scale)
        lines.append(f"[{bin_low:8.2f}, {bin_high:8.2f}) | {bar} {count}")
    return "\n".join(lines)


def line_plot(series: dict[str, list[tuple[float, float]]], title: str = "",
              width: int = 60, height: int = 15) -> str:
    """Multiple named (x, y) series on one text canvas.

    Mirrors Fig. 15 (average cost ratio vs time allotted).  Each series gets a
    distinct marker; a legend follows the canvas.
    """
    markers = "ox+#%&"
    all_points = [point for points in series.values() for point in points]
    if not all_points:
        return title or "(no data)"
    xs = [x for x, _ in all_points]
    ys = [y for _, y in all_points]
    x_low, x_high = min(xs), max(xs)
    y_low, y_high = min(ys), max(ys)
    x_span = (x_high - x_low) or 1.0
    y_span = (y_high - y_low) or 1.0

    grid = [[" "] * width for _ in range(height)]
    for series_index, (name, points) in enumerate(series.items()):
        marker = markers[series_index % len(markers)]
        for x, y in points:
            column = min(width - 1, int((x - x_low) / x_span * (width - 1)))
            row = height - 1 - min(height - 1, int((y - y_low) / y_span * (height - 1)))
            grid[row][column] = marker

    lines = [title] if title else []
    lines.append(f"y: {y_low:g} .. {y_high:g}")
    for row in grid:
        lines.append("|" + "".join(row))
    lines.append("+" + "-" * width)
    lines.append(f" x: {x_low:g} .. {x_high:g}")
    for series_index, name in enumerate(series):
        lines.append(f"  {markers[series_index % len(markers)]} = {name}")
    return "\n".join(lines)


def sparkline(values: list[float]) -> str:
    """A one-line sparkline, used in per-benchmark summary tables."""
    if not values:
        return ""
    blocks = "▁▂▃▄▅▆▇█"
    low, high = min(values), max(values)
    span = (high - low) or 1.0
    return "".join(blocks[min(len(blocks) - 1,
                               int((value - low) / span * (len(blocks) - 1)))]
                   for value in values)


def log_scale_positions(values: list[float], width: int) -> list[int]:
    """Map positive values to columns on a log scale (for runtime plots)."""
    positives = [value for value in values if value > 0]
    if not positives:
        return [0 for _ in values]
    low = math.log10(min(positives))
    high = math.log10(max(positives))
    span = (high - low) or 1.0
    positions = []
    for value in values:
        if value <= 0:
            positions.append(0)
        else:
            positions.append(min(width - 1,
                                 int((math.log10(value) - low) / span * (width - 1))))
    return positions
