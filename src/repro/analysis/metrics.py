"""Cost and solve-rate metrics, following the paper's conventions.

The paper's headline heuristic comparison (Fig. 12) reports, per benchmark,
the *cost ratio*: gates added by the heuristic divided by gates added by
SATMAP.  Benchmarks where SATMAP adds zero gates and the heuristic adds a
positive number have an undefined (infinite) ratio and are plotted separately
and excluded from the mean; benchmarks where both add zero gates count as
ratio 1.  :func:`cost_ratio` and :func:`mean_cost_ratio` encode exactly those
rules so every figure reproduction shares them.

Circuit-size lookups (``num_two_qubit_gates``, ``num_swaps``) are O(1) reads
of the flat IR's cached prefix statistics, so aggregating metrics over large
result sets never rescans a gate list.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.result import RoutingResult


def cost_ratio(reference_cost: int, satmap_cost: int) -> float | None:
    """Fig. 12's cost ratio; ``None`` encodes the undefined (infinite) case."""
    if reference_cost < 0 or satmap_cost < 0:
        raise ValueError("costs must be non-negative")
    if satmap_cost == 0:
        return 1.0 if reference_cost == 0 else None
    return reference_cost / satmap_cost


def mean_cost_ratio(ratios: list[float | None]) -> float:
    """Arithmetic mean over the defined ratios (the paper's reported mean)."""
    defined = [ratio for ratio in ratios if ratio is not None]
    if not defined:
        return float("nan")
    return sum(defined) / len(defined)


def undefined_ratio_count(ratios: list[float | None]) -> int:
    """How many benchmarks fall in the "SATMAP added zero gates" bucket."""
    return sum(1 for ratio in ratios if ratio is None)


def geometric_mean(values: list[float]) -> float:
    """Geometric mean (used for runtime speed-up factors)."""
    positive = [value for value in values if value > 0]
    if not positive:
        return float("nan")
    return math.exp(sum(math.log(value) for value in positive) / len(positive))


@dataclass
class SolveStatistics:
    """Table I style summary: how many instances solved and how large."""

    solved: int
    total: int
    largest_two_qubit_gates: int
    mean_time: float

    @property
    def solve_fraction(self) -> float:
        return self.solved / self.total if self.total else 0.0


def solve_statistics(results: list[RoutingResult],
                     sizes: dict[str, int] | None = None) -> SolveStatistics:
    """Aggregate solve counts and the largest circuit solved.

    ``sizes`` maps circuit name to its two-qubit gate count; when omitted the
    size is taken from the routed circuit minus its SWAP overhead, which is
    only available for solved instances anyway.
    """
    solved_results = [result for result in results if result.solved]
    largest = 0
    for result in solved_results:
        if sizes and result.circuit_name in sizes:
            largest = max(largest, sizes[result.circuit_name])
        elif result.routed_circuit is not None:
            two_qubit = result.routed_circuit.num_two_qubit_gates - result.swap_count
            largest = max(largest, two_qubit)
    times = [result.solve_time for result in solved_results]
    return SolveStatistics(
        solved=len(solved_results),
        total=len(results),
        largest_two_qubit_gates=largest,
        mean_time=sum(times) / len(times) if times else 0.0,
    )


def speedup_factors(baseline_times: dict[str, float],
                    satmap_times: dict[str, float]) -> list[float]:
    """Per-benchmark runtime ratios baseline/SATMAP on commonly solved instances."""
    factors = []
    for name, satmap_time in satmap_times.items():
        if name in baseline_times and satmap_time > 0:
            factors.append(baseline_times[name] / satmap_time)
    return factors


def added_gates(result: RoutingResult) -> int:
    """Gates added by routing (the paper counts SWAPs as three CNOTs)."""
    if not result.solved:
        raise ValueError(f"{result.circuit_name} was not solved by {result.router_name}")
    return result.added_cnots


def zero_cost_fraction(results: list[RoutingResult]) -> float:
    """Fraction of solved benchmarks where no gates were added (~14% for SATMAP)."""
    solved = [result for result in results if result.solved]
    if not solved:
        return 0.0
    return sum(1 for result in solved if result.swap_count == 0) / len(solved)
