"""Full device calibration snapshots (coherence, gate, and readout data).

:class:`repro.hardware.noise.NoiseModel` carries exactly the data the
weighted-MaxSAT objective needs (per-edge two-qubit error rates).  Real
backends publish more -- qubit T1/T2 coherence times, gate durations, and
readout errors -- and estimating the end-to-end success probability of a
*scheduled* circuit needs all of it.  :class:`DeviceCalibration` is that
richer snapshot:

* it can be generated synthetically (deterministic, seeded) in the same
  spirit as :meth:`NoiseModel.synthetic`,
* it projects down to a :class:`NoiseModel` for the router, and
* :meth:`estimate_fidelity` combines gate errors, readout errors, and
  decoherence over each qubit's idle time (from the ASAP schedule) into one
  success-probability estimate, which the noise-aware example reports.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.scheduling import GateDurations, asap_schedule
from repro.hardware.architecture import Architecture
from repro.hardware.noise import NoiseModel


@dataclass
class QubitCalibration:
    """Per-qubit coherence and error data."""

    t1: float  # relaxation time, nanoseconds
    t2: float  # dephasing time, nanoseconds
    readout_error: float
    single_qubit_error: float

    def __post_init__(self) -> None:
        if self.t1 <= 0 or self.t2 <= 0:
            raise ValueError("coherence times must be positive")
        if not 0 <= self.readout_error < 1:
            raise ValueError("readout error must be a probability below 1")
        if not 0 <= self.single_qubit_error < 1:
            raise ValueError("single-qubit error must be a probability below 1")


@dataclass
class DeviceCalibration:
    """A calibration snapshot for one device."""

    architecture: Architecture
    qubits: dict[int, QubitCalibration] = field(default_factory=dict)
    two_qubit_error: dict[tuple[int, int], float] = field(default_factory=dict)
    gate_durations: GateDurations = field(default_factory=GateDurations)

    def __post_init__(self) -> None:
        for qubit in range(self.architecture.num_qubits):
            if qubit not in self.qubits:
                raise ValueError(f"missing calibration for qubit {qubit}")
        for edge in self.architecture.edges:
            if edge not in self.two_qubit_error:
                raise ValueError(f"missing two-qubit error rate for edge {edge}")

    # ---------------------------------------------------------- constructors

    @classmethod
    def synthetic(cls, architecture: Architecture, seed: int = 7,
                  t1_range: tuple[float, float] = (50_000.0, 150_000.0),
                  two_qubit_error_range: tuple[float, float] = (0.008, 0.045),
                  readout_error_range: tuple[float, float] = (0.01, 0.05),
                  ) -> "DeviceCalibration":
        """Deterministic synthetic calibration with IBM-backend-like statistics."""
        rng = random.Random(seed)
        qubits = {}
        for qubit in range(architecture.num_qubits):
            t1 = rng.uniform(*t1_range)
            qubits[qubit] = QubitCalibration(
                t1=t1,
                t2=rng.uniform(0.5, 1.2) * t1,
                readout_error=rng.uniform(*readout_error_range),
                single_qubit_error=rng.uniform(0.0002, 0.0015),
            )
        low, high = two_qubit_error_range
        two_qubit = {
            edge: math.exp(math.log(low) + rng.random() * (math.log(high) - math.log(low)))
            for edge in architecture.edges
        }
        return cls(architecture, qubits, two_qubit)

    # --------------------------------------------------------------- queries

    def edge_error(self, first: int, second: int) -> float:
        key = (min(first, second), max(first, second))
        if key not in self.two_qubit_error:
            raise KeyError(f"({first}, {second}) is not an edge of {self.architecture.name}")
        return self.two_qubit_error[key]

    def best_edges(self, count: int = 5) -> list[tuple[int, int]]:
        """The ``count`` lowest-error edges (where to place busy qubit pairs)."""
        ranked = sorted(self.architecture.edges, key=lambda edge: self.two_qubit_error[edge])
        return ranked[:count]

    def worst_qubits(self, count: int = 3) -> list[int]:
        """Qubits with the highest combined readout and single-qubit error."""
        def badness(qubit: int) -> float:
            data = self.qubits[qubit]
            return data.readout_error + data.single_qubit_error
        ranked = sorted(range(self.architecture.num_qubits), key=badness, reverse=True)
        return ranked[:count]

    def to_noise_model(self, weight_scale: int = 1000) -> NoiseModel:
        """Project to the :class:`NoiseModel` the weighted encoder consumes."""
        return NoiseModel(
            architecture=self.architecture,
            two_qubit_error=dict(self.two_qubit_error),
            single_qubit_error={qubit: data.single_qubit_error
                                for qubit, data in self.qubits.items()},
            weight_scale=weight_scale,
        )

    # ------------------------------------------------------------ estimation

    def estimate_fidelity(self, circuit: QuantumCircuit,
                          include_readout: bool = True,
                          include_decoherence: bool = True) -> float:
        """Estimated success probability of a *physical* (routed) circuit.

        Multiplies per-gate fidelities (SWAPs count as three CNOTs on their
        edge), per-qubit readout fidelities, and a decoherence factor
        ``exp(-idle / T1)`` for each qubit's idle time under the ASAP schedule.
        The absolute number is a model, not a measurement; its purpose is to
        *rank* candidate routings, which only needs the error model to be
        monotone in the right quantities.
        """
        log_fidelity = 0.0
        for gate in circuit:
            if gate.is_two_qubit:
                error = self.edge_error(*gate.qubits)
                repetitions = 3 if gate.name == "swap" else 1
                log_fidelity += repetitions * math.log(1.0 - error)
            else:
                error = self.qubits[gate.qubits[0]].single_qubit_error
                log_fidelity += math.log(1.0 - error)

        used_qubits = circuit.used_qubits()
        if include_readout:
            for qubit in used_qubits:
                log_fidelity += math.log(1.0 - self.qubits[qubit].readout_error)

        if include_decoherence and len(circuit) > 0:
            schedule = asap_schedule(circuit, self.gate_durations)
            for qubit in used_qubits:
                idle = schedule.idle_time(qubit)
                log_fidelity += -idle / self.qubits[qubit].t1
        return math.exp(log_fidelity)

    def compare_routings(self, routings: dict[str, QuantumCircuit]) -> list[tuple[str, float]]:
        """Rank named routed circuits by estimated fidelity (best first)."""
        scored = [(name, self.estimate_fidelity(circuit))
                  for name, circuit in routings.items()]
        return sorted(scored, key=lambda pair: pair[1], reverse=True)
