"""Hardware models: coupling graphs and noise calibrations.

The paper evaluates on the IBM Q20 Tokyo device and on two variations of its
coupling graph (Tokyo- with the diagonal edges removed, Tokyo+ with extra
diagonals), plus a synthetic calibration ("FakeTokyo") for the noise-aware
experiment.  This package provides those graphs, several generic topologies
(line, ring, grid, heavy-hex, fully connected), all-pairs shortest-path
distances, and a deterministic synthetic noise model.
"""

from repro.hardware.architecture import Architecture
from repro.hardware.topologies import (
    full_architecture,
    grid_architecture,
    heavy_hex_architecture,
    line_architecture,
    ring_architecture,
    tokyo_architecture,
    tokyo_minus_architecture,
    tokyo_plus_architecture,
)
from repro.hardware.noise import NoiseModel
from repro.hardware.calibration import DeviceCalibration, QubitCalibration
from repro.hardware.devices import (
    architecture_properties,
    architecture_record,
    device_catalog,
    device_records,
    get_architecture,
    named_architectures,
)

__all__ = [
    "Architecture",
    "NoiseModel",
    "tokyo_architecture",
    "tokyo_minus_architecture",
    "tokyo_plus_architecture",
    "line_architecture",
    "ring_architecture",
    "grid_architecture",
    "heavy_hex_architecture",
    "full_architecture",
    "DeviceCalibration",
    "QubitCalibration",
    "device_catalog",
    "get_architecture",
    "architecture_properties",
    "architecture_record",
    "device_records",
    "named_architectures",
]
