"""A catalogue of named device coupling graphs.

The paper's evaluation is anchored on the IBM Q20 Tokyo device and its two
synthetic variants (Fig. 9).  The discussion section argues that *future*
connectivity graphs are unknown and that routing tools should be exercised
across a spectrum of shapes; this module provides that spectrum as named
constructors mirroring real machines:

* IBM Q5 Yorktown / Q14 Melbourne / Q16 Guadalupe (bowtie, ladder, heavy-hex),
* Google Sycamore-style diagonal grids,
* Rigetti Aspen-style rings of octagons,
* IonQ-style fully connected traps,

plus :func:`device_catalog`, a registry the CLI and the architecture-sweep
example iterate over.  All graphs are undirected, matching Section III.
"""

from __future__ import annotations

from typing import Callable

from repro.hardware.architecture import Architecture
from repro.hardware.topologies import (
    full_architecture,
    grid_architecture,
    heavy_hex_architecture,
    line_architecture,
    reduced_tokyo_architecture,
    ring_architecture,
    tokyo_architecture,
    tokyo_minus_architecture,
    tokyo_plus_architecture,
)


def yorktown_architecture() -> Architecture:
    """IBM Q5 Yorktown ("bowtie"): five qubits, qubit 2 in the middle."""
    edges = [(0, 1), (0, 2), (1, 2), (2, 3), (2, 4), (3, 4)]
    return Architecture(5, edges, name="ibmq-yorktown-5")


def ourense_architecture() -> Architecture:
    """IBM Q5 Ourense / Valencia: a T-shaped five-qubit device."""
    edges = [(0, 1), (1, 2), (1, 3), (3, 4)]
    return Architecture(5, edges, name="ibmq-ourense-5")


def melbourne_architecture() -> Architecture:
    """IBM Q14 Melbourne: two seven-qubit rows joined rung-by-rung (a ladder)."""
    edges: list[tuple[int, int]] = []
    for column in range(6):
        edges.append((column, column + 1))          # top row, left to right
        edges.append((7 + column, 7 + column + 1))  # bottom row
    for column in range(7):
        edges.append((column, 13 - column))         # rungs (physical labelling)
    return Architecture(14, edges, name="ibmq-melbourne-14")


def guadalupe_architecture() -> Architecture:
    """IBM Q16 Guadalupe: the 16-qubit heavy-hex Falcon layout.

    A twelve-qubit ring (the two fused hexagons) with four spur qubits
    hanging off alternating ring sites -- the shape IBM's Falcon r4
    processors expose.
    """
    ring = [0, 1, 2, 3, 5, 8, 11, 14, 13, 12, 10, 7]
    edges = [(ring[i], ring[(i + 1) % len(ring)]) for i in range(len(ring))]
    edges += [(1, 4), (7, 6), (8, 9), (12, 15)]
    return Architecture(16, edges, name="ibmq-guadalupe-16")


def sycamore_architecture(rows: int = 3, columns: int = 4) -> Architecture:
    """A Sycamore-style lattice modelled as an offset (brick-wall) grid.

    Google's Sycamore couples qubits diagonally between two interleaved
    sub-lattices; flattened onto integer coordinates that is an offset grid in
    which every qubit in row ``r`` couples to the qubit below it and to one
    below-diagonal partner whose side alternates with the row parity.  Each
    interior qubit has degree 4, matching the real device.
    """
    if rows < 2 or columns < 2:
        raise ValueError("the Sycamore lattice needs at least a 2x2 grid")
    num_qubits = rows * columns
    edges = []
    for row in range(rows):
        for column in range(columns):
            qubit = row * columns + column
            if row + 1 >= rows:
                continue
            edges.append((qubit, qubit + columns))
            if row % 2 == 0 and column + 1 < columns:
                edges.append((qubit, qubit + columns + 1))
            elif row % 2 == 1 and column > 0:
                edges.append((qubit, qubit + columns - 1))
    return Architecture(num_qubits, edges, name=f"sycamore-{rows}x{columns}")


def aspen_architecture(num_octagons: int = 2) -> Architecture:
    """A Rigetti Aspen-style chain of octagonal rings fused on one edge each."""
    if num_octagons < 1:
        raise ValueError("need at least one octagon")
    edges: list[tuple[int, int]] = []
    for ring in range(num_octagons):
        base = ring * 8
        for position in range(8):
            edges.append((base + position, base + (position + 1) % 8))
        if ring > 0:
            # Fuse adjacent octagons with two bridging edges, as on Aspen-M.
            previous_base = (ring - 1) * 8
            edges.append((previous_base + 1, base + 6))
            edges.append((previous_base + 2, base + 5))
    return Architecture(num_octagons * 8, edges, name=f"aspen-{num_octagons * 8}")


def trapped_ion_architecture(num_qubits: int = 11) -> Architecture:
    """An IonQ-style trapped-ion device: all-to-all connectivity."""
    architecture = full_architecture(num_qubits)
    architecture.name = f"trapped-ion-{num_qubits}"
    return architecture


def device_catalog() -> dict[str, Callable[[], Architecture]]:
    """All named device constructors, keyed by a stable identifier.

    The keys are what the CLI's ``--architecture`` option accepts and what the
    architecture-sweep example iterates over.
    """
    return {
        "tokyo": tokyo_architecture,
        "tokyo-": tokyo_minus_architecture,
        "tokyo+": tokyo_plus_architecture,
        "yorktown": yorktown_architecture,
        "ourense": ourense_architecture,
        "melbourne": melbourne_architecture,
        "guadalupe": guadalupe_architecture,
        "heavy-hex-27": heavy_hex_architecture,
        "sycamore-12": sycamore_architecture,
        "aspen-16": aspen_architecture,
        "trapped-ion-11": trapped_ion_architecture,
        "line-16": lambda: line_architecture(16),
        "ring-16": lambda: ring_architecture(16),
        "grid-4x4": lambda: grid_architecture(4, 4),
    }


def get_architecture(name: str) -> Architecture:
    """Look up an architecture by catalogue name (raises ``KeyError`` if unknown)."""
    catalog = device_catalog()
    if name not in catalog:
        known = ", ".join(sorted(catalog))
        raise KeyError(f"unknown architecture {name!r}; known names: {known}")
    return catalog[name]()


def named_architectures() -> dict[str, Architecture]:
    """Every architecture selectable by name: topology shortcuts + catalogue.

    This is the single name->architecture table shared by the CLI (``--arch``
    choices) and the network gateway (architectures addressable over the
    wire), so both surfaces accept exactly the same names.
    """
    architectures = {
        "tokyo": tokyo_architecture(),
        "tokyo-": tokyo_minus_architecture(),
        "tokyo+": tokyo_plus_architecture(),
        "tokyo8": reduced_tokyo_architecture(8),
        "tokyo6": reduced_tokyo_architecture(6),
        "line8": line_architecture(8),
        "line16": line_architecture(16),
        "ring8": ring_architecture(8),
        "grid3x3": grid_architecture(3, 3),
        "grid4x4": grid_architecture(4, 4),
        "heavy-hex": heavy_hex_architecture(),
        "full8": full_architecture(8),
    }
    for name, constructor in device_catalog().items():
        architectures.setdefault(name, constructor())
    return architectures


def architecture_record(architecture: Architecture, key: str | None = None,
                        include_edges: bool = False) -> dict:
    """One architecture as a JSON-serialisable record.

    The single serialiser behind ``repro devices --json``, ``repro info
    --json``, and the server's ``/v1/devices`` endpoint, so every surface
    lists devices in the same shape.
    """
    properties = architecture_properties(architecture)
    record = {
        "name": architecture.name,
        "num_qubits": int(properties["num_qubits"]),
        "num_edges": int(properties["num_edges"]),
        "average_degree": round(properties["average_degree"], 4),
        "max_degree": int(properties["max_degree"]),
        "diameter": int(properties["diameter"]),
        "connected": architecture.is_connected(),
    }
    if key is not None:
        record["device"] = key
    if include_edges:
        record["edges"] = sorted([min(a, b), max(a, b)]
                                 for a, b in architecture.edges)
    return record


def device_records(include_edges: bool = False) -> list[dict]:
    """The whole device catalogue as serialisable records, sorted by key."""
    return [architecture_record(constructor(), key=name,
                                include_edges=include_edges)
            for name, constructor in sorted(device_catalog().items())]


def architecture_properties(architecture: Architecture) -> dict[str, float]:
    """Summary statistics used by the architecture-variation experiment (Q4)."""
    degrees = [architecture.degree(qubit) for qubit in range(architecture.num_qubits)]
    distances = architecture.distance_matrix()
    reachable = [value for row in distances for value in row
                 if value not in (0, architecture.num_qubits)]
    return {
        "num_qubits": float(architecture.num_qubits),
        "num_edges": float(len(architecture.edges)),
        "average_degree": architecture.average_degree,
        "max_degree": float(max(degrees, default=0)),
        "min_degree": float(min(degrees, default=0)),
        "diameter": float(architecture.diameter()),
        "average_distance": (sum(reachable) / len(reachable)) if reachable else 0.0,
    }
