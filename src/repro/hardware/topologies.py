"""Standard coupling graphs, including the three Tokyo variants from Fig. 9.

The IBM Q20 Tokyo device is a 4x5 grid with nearest-neighbour couplings plus
one diagonal coupling per grid cell (alternating orientation).  The paper's
architecture study (Q4) removes all diagonals (Tokyo-) or adds both diagonals
to every cell (Tokyo+); the average vertex degree of Tokyo sits exactly halfway
between the two, which these constructors preserve.
"""

from __future__ import annotations

from repro.hardware.architecture import Architecture

TOKYO_ROWS = 4
TOKYO_COLUMNS = 5


def _grid_edges(rows: int, columns: int) -> list[tuple[int, int]]:
    edges: list[tuple[int, int]] = []
    for row in range(rows):
        for column in range(columns):
            qubit = row * columns + column
            if column + 1 < columns:
                edges.append((qubit, qubit + 1))
            if row + 1 < rows:
                edges.append((qubit, qubit + columns))
    return edges


def _tokyo_diagonals(both: bool) -> list[tuple[int, int]]:
    """Diagonal couplings of the Tokyo lattice.

    The real device has one diagonal per cell with alternating orientation;
    ``both=True`` produces the Tokyo+ variant with both diagonals everywhere.
    """
    edges: list[tuple[int, int]] = []
    for row in range(TOKYO_ROWS - 1):
        for column in range(TOKYO_COLUMNS - 1):
            top_left = row * TOKYO_COLUMNS + column
            top_right = top_left + 1
            bottom_left = top_left + TOKYO_COLUMNS
            bottom_right = bottom_left + 1
            forward = (top_left, bottom_right)
            backward = (top_right, bottom_left)
            if both:
                edges.append(forward)
                edges.append(backward)
            elif (row + column) % 2 == 0:
                edges.append(backward)
            else:
                edges.append(forward)
    return edges


def tokyo_minus_architecture() -> Architecture:
    """Tokyo- (Fig. 9a): the 4x5 grid with all diagonal couplings removed."""
    return Architecture(20, _grid_edges(TOKYO_ROWS, TOKYO_COLUMNS), name="tokyo-")


def tokyo_architecture() -> Architecture:
    """IBM Q20 Tokyo (Fig. 9b): 4x5 grid plus one alternating diagonal per cell."""
    edges = _grid_edges(TOKYO_ROWS, TOKYO_COLUMNS) + _tokyo_diagonals(both=False)
    return Architecture(20, edges, name="tokyo")


def tokyo_plus_architecture() -> Architecture:
    """Tokyo+ (Fig. 9c): 4x5 grid plus both diagonals in every cell."""
    edges = _grid_edges(TOKYO_ROWS, TOKYO_COLUMNS) + _tokyo_diagonals(both=True)
    return Architecture(20, edges, name="tokyo+")


def line_architecture(num_qubits: int) -> Architecture:
    """A 1-D nearest-neighbour chain."""
    edges = [(qubit, qubit + 1) for qubit in range(num_qubits - 1)]
    return Architecture(num_qubits, edges, name=f"line-{num_qubits}")


def ring_architecture(num_qubits: int) -> Architecture:
    """A 1-D chain closed into a ring."""
    if num_qubits < 3:
        raise ValueError("a ring needs at least three qubits")
    edges = [(qubit, (qubit + 1) % num_qubits) for qubit in range(num_qubits)]
    return Architecture(num_qubits, edges, name=f"ring-{num_qubits}")


def grid_architecture(rows: int, columns: int) -> Architecture:
    """A rows x columns nearest-neighbour grid."""
    if rows < 1 or columns < 1:
        raise ValueError("grid dimensions must be positive")
    return Architecture(rows * columns, _grid_edges(rows, columns),
                        name=f"grid-{rows}x{columns}")


def full_architecture(num_qubits: int) -> Architecture:
    """A fully connected device (no routing ever needed); useful as a control."""
    edges = [(first, second)
             for first in range(num_qubits)
             for second in range(first + 1, num_qubits)]
    return Architecture(num_qubits, edges, name=f"full-{num_qubits}")


def heavy_hex_architecture(distance: int = 3) -> Architecture:
    """A small heavy-hex style lattice similar to newer IBM devices.

    This is not used in the paper but is provided for the architecture-variation
    experiment (Q4) and for users who want to test against current hardware
    shapes.  ``distance`` controls the lattice size (27 qubits at distance 3).
    """
    if distance == 3:
        edges = [
            (0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 6), (6, 7), (7, 8), (8, 9),
            (0, 10), (4, 11), (8, 12),
            (10, 13), (11, 17), (12, 21),
            (13, 14), (14, 15), (15, 16), (16, 17), (17, 18), (18, 19), (19, 20),
            (20, 21), (21, 22), (22, 23),
            (15, 24), (19, 25), (23, 26),
        ]
        return Architecture(27, edges, name="heavy-hex-27")
    raise ValueError("only distance=3 heavy-hex is provided")


def reduced_tokyo_architecture(num_qubits: int) -> Architecture:
    """The subgraph of Tokyo induced on its first ``num_qubits`` physical qubits.

    The pure-Python MaxSAT stack cannot match Open-WBO's raw speed, so the
    scaled experiment presets route onto reduced Tokyo subgraphs that keep the
    mixed grid/diagonal structure of the device while shrinking the encoding.
    """
    if not 2 <= num_qubits <= 20:
        raise ValueError("reduced Tokyo supports 2..20 qubits")
    return tokyo_architecture().subgraph(list(range(num_qubits)),
                                         name=f"tokyo-{num_qubits}")
