"""Connectivity graph of a quantum device.

Section III of the paper models a device as ``G = (Phys, Edges)``.
:class:`Architecture` is that object plus the derived data every router needs:
adjacency (as sets for the API, as CSR arrays for the hot loops), all-pairs
shortest-path distances (BFS, since edges are unweighted; stored once as a
flat ``array('i')`` of length ``n*n`` and shared by every consumer), and
graph diameter (the paper's bound on the number of SWAP slots needed per
gate for guaranteed completeness).

Derived data is computed once per instance and cached; none of it enters the
service job content hash (jobs hash the edge list itself, see
:mod:`repro.service.jobs`), so cache identity is unchanged by this layer.

Unreachable pairs carry the sentinel distance ``num_qubits`` (an impossible
real distance).  :meth:`reachable` and :meth:`is_connected` expose that
information explicitly so routers can *reject* impossible gates instead of
silently scoring the sentinel.
"""

from __future__ import annotations

from array import array
from collections import deque
from dataclasses import dataclass, field


@dataclass
class Architecture:
    """An undirected connectivity graph over physical qubits ``0..num_qubits-1``."""

    num_qubits: int
    edges: list[tuple[int, int]]
    name: str = "architecture"
    _adjacency: dict[int, set[int]] = field(init=False, repr=False)
    _adj_ptr: array = field(init=False, repr=False)
    _adj_idx: array = field(init=False, repr=False)
    _neighbor_lists: list[list[int]] = field(init=False, repr=False)
    _flat_distances: array | None = field(init=False, default=None, repr=False)
    _flat_lookup: tuple | None = field(init=False, default=None, repr=False)
    _distances: list[list[int]] | None = field(init=False, default=None, repr=False)
    _connected: bool | None = field(init=False, default=None, repr=False)

    def __post_init__(self) -> None:
        if self.num_qubits <= 0:
            raise ValueError("an architecture needs at least one physical qubit")
        normalized: set[tuple[int, int]] = set()
        for first, second in self.edges:
            if first == second:
                raise ValueError(f"self-loop on physical qubit {first}")
            if not (0 <= first < self.num_qubits and 0 <= second < self.num_qubits):
                raise ValueError(f"edge ({first}, {second}) outside 0..{self.num_qubits - 1}")
            normalized.add((min(first, second), max(first, second)))
        self.edges = sorted(normalized)
        self._adjacency = {qubit: set() for qubit in range(self.num_qubits)}
        for first, second in self.edges:
            self._adjacency[first].add(second)
            self._adjacency[second].add(first)
        # CSR adjacency: sorted neighbour runs in one flat buffer.  The edge
        # list is sorted, so filling in edge order keeps each run ascending.
        counts = array("i", bytes(4 * self.num_qubits))
        for first, second in self.edges:
            counts[first] += 1
            counts[second] += 1
        ptr = array("i", bytes(4 * (self.num_qubits + 1)))
        cursor = 0
        for qubit in range(self.num_qubits):
            ptr[qubit] = cursor
            cursor += counts[qubit]
        ptr[self.num_qubits] = cursor
        idx = array("i", bytes(4 * cursor))
        fill = array("i", ptr[:self.num_qubits]) if self.num_qubits else array("i")
        for first, second in self.edges:
            idx[fill[first]] = second
            fill[first] += 1
            idx[fill[second]] = first
            fill[second] += 1
        self._adj_ptr = ptr
        self._adj_idx = idx
        self._neighbor_lists = [list(idx[ptr[q]:ptr[q + 1]])
                                for q in range(self.num_qubits)]

    # ---------------------------------------------------------------- queries

    def neighbors(self, qubit: int) -> set[int]:
        """Physical qubits adjacent to ``qubit``."""
        return set(self._adjacency[qubit])

    def neighbors_sorted(self, qubit: int) -> list[int]:
        """Adjacent qubits in ascending order, without building a set.

        The returned list is shared and must not be mutated; it is the form
        the encoder's adjacency clauses and the routers' candidate loops use.
        """
        return self._neighbor_lists[qubit]

    def are_adjacent(self, first: int, second: int) -> bool:
        """Whether a two-qubit gate can run directly on ``(first, second)``."""
        return second in self._adjacency[first]

    def degree(self, qubit: int) -> int:
        return self._adj_ptr[qubit + 1] - self._adj_ptr[qubit]

    @property
    def average_degree(self) -> float:
        return 2.0 * len(self.edges) / self.num_qubits

    @property
    def unreachable_distance(self) -> int:
        """Sentinel stored for unreachable pairs (an impossible real distance)."""
        return self.num_qubits

    def flat_distance_matrix(self) -> array:
        """All-pairs shortest-path distances as one flat ``array('i')``.

        Entry ``(a, b)`` lives at index ``a * num_qubits + b``.  Computed once
        per instance with one BFS per source over the CSR adjacency and shared
        by every consumer; unreachable pairs hold
        :attr:`unreachable_distance`.
        """
        if self._flat_distances is None:
            n = self.num_qubits
            unreachable = n
            matrix = array("i", [unreachable]) * (n * n)
            ptr, idx = self._adj_ptr, self._adj_idx
            for source in range(n):
                row = source * n
                matrix[row + source] = 0
                queue = deque([source])
                while queue:
                    current = queue.popleft()
                    next_distance = matrix[row + current] + 1
                    for cursor in range(ptr[current], ptr[current + 1]):
                        neighbor = idx[cursor]
                        if matrix[row + neighbor] == unreachable:
                            matrix[row + neighbor] = next_distance
                            queue.append(neighbor)
            self._flat_distances = matrix
        return self._flat_distances

    def flat_distance_lookup(self) -> tuple:
        """The flat distance matrix as a cached tuple (fastest indexing).

        Same layout as :meth:`flat_distance_matrix` (``a * num_qubits + b``).
        The routers' scoring loops perform millions of reads; tuple indexing
        avoids the per-read unboxing of ``array('i')``.
        """
        if self._flat_lookup is None:
            self._flat_lookup = tuple(self.flat_distance_matrix())
        return self._flat_lookup

    def distance_matrix(self) -> list[list[int]]:
        """All-pairs distances as nested lists (cached compatibility view).

        Unreachable pairs get distance ``num_qubits`` (an impossible real
        distance), which keeps heuristic scores finite on disconnected graphs;
        check :meth:`reachable` before trusting a sentinel-valued entry.
        """
        if self._distances is None:
            flat = self.flat_distance_matrix()
            n = self.num_qubits
            self._distances = [list(flat[row * n:(row + 1) * n])
                               for row in range(n)]
        return self._distances

    def distance(self, first: int, second: int) -> int:
        return self.flat_distance_matrix()[first * self.num_qubits + second]

    def reachable(self, first: int, second: int) -> bool:
        """Whether a path exists between two physical qubits."""
        return (self.flat_distance_matrix()[first * self.num_qubits + second]
                < self.num_qubits)

    def diameter(self) -> int:
        """Longest shortest-path distance between connected qubit pairs."""
        unreachable = self.num_qubits
        longest = 0
        for value in self.flat_distance_matrix():
            if value != unreachable and value > longest:
                longest = value
        return longest

    def is_connected(self) -> bool:
        """Whether every physical qubit can reach every other (cached)."""
        if self._connected is None:
            flat = self.flat_distance_matrix()
            unreachable = self.num_qubits
            self._connected = all(value != unreachable
                                  for value in flat[:self.num_qubits])
        return self._connected

    def shortest_path(self, source: int, target: int) -> list[int]:
        """One shortest path between two physical qubits (inclusive of both)."""
        if source == target:
            return [source]
        ptr, idx = self._adj_ptr, self._adj_idx
        previous: dict[int, int] = {source: source}
        queue = deque([source])
        while queue:
            current = queue.popleft()
            for cursor in range(ptr[current], ptr[current + 1]):
                neighbor = idx[cursor]
                if neighbor not in previous:
                    previous[neighbor] = current
                    if neighbor == target:
                        queue.clear()
                        break
                    queue.append(neighbor)
        if target not in previous:
            raise ValueError(f"no path between {source} and {target}")
        path = [target]
        while path[-1] != source:
            path.append(previous[path[-1]])
        return list(reversed(path))

    def subgraph(self, qubits: list[int], name: str | None = None) -> "Architecture":
        """Architecture induced on a subset of physical qubits (reindexed from 0)."""
        index_of = {qubit: index for index, qubit in enumerate(qubits)}
        kept_edges = [
            (index_of[first], index_of[second])
            for first, second in self.edges
            if first in index_of and second in index_of
        ]
        return Architecture(len(qubits), kept_edges, name or f"{self.name}[{len(qubits)}]")

    def __repr__(self) -> str:
        return (
            f"Architecture(name={self.name!r}, qubits={self.num_qubits}, "
            f"edges={len(self.edges)})"
        )
