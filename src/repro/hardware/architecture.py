"""Connectivity graph of a quantum device.

Section III of the paper models a device as ``G = (Phys, Edges)``.
:class:`Architecture` is that object plus the derived data every router needs:
adjacency sets, all-pairs shortest-path distances (BFS, since edges are
unweighted), and graph diameter (the paper's bound on the number of SWAP slots
needed per gate for guaranteed completeness).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field


@dataclass
class Architecture:
    """An undirected connectivity graph over physical qubits ``0..num_qubits-1``."""

    num_qubits: int
    edges: list[tuple[int, int]]
    name: str = "architecture"
    _adjacency: dict[int, set[int]] = field(init=False, repr=False)
    _distances: list[list[int]] | None = field(init=False, default=None, repr=False)

    def __post_init__(self) -> None:
        if self.num_qubits <= 0:
            raise ValueError("an architecture needs at least one physical qubit")
        normalized: set[tuple[int, int]] = set()
        for first, second in self.edges:
            if first == second:
                raise ValueError(f"self-loop on physical qubit {first}")
            if not (0 <= first < self.num_qubits and 0 <= second < self.num_qubits):
                raise ValueError(f"edge ({first}, {second}) outside 0..{self.num_qubits - 1}")
            normalized.add((min(first, second), max(first, second)))
        self.edges = sorted(normalized)
        self._adjacency = {qubit: set() for qubit in range(self.num_qubits)}
        for first, second in self.edges:
            self._adjacency[first].add(second)
            self._adjacency[second].add(first)

    # ---------------------------------------------------------------- queries

    def neighbors(self, qubit: int) -> set[int]:
        """Physical qubits adjacent to ``qubit``."""
        return set(self._adjacency[qubit])

    def are_adjacent(self, first: int, second: int) -> bool:
        """Whether a two-qubit gate can run directly on ``(first, second)``."""
        return second in self._adjacency[first]

    def degree(self, qubit: int) -> int:
        return len(self._adjacency[qubit])

    @property
    def average_degree(self) -> float:
        return 2.0 * len(self.edges) / self.num_qubits

    def distance_matrix(self) -> list[list[int]]:
        """All-pairs shortest-path distances (cached).

        Unreachable pairs get distance ``num_qubits`` (an impossible real
        distance), which keeps heuristic scores finite on disconnected graphs.
        """
        if self._distances is None:
            unreachable = self.num_qubits
            matrix = [[unreachable] * self.num_qubits for _ in range(self.num_qubits)]
            for source in range(self.num_qubits):
                matrix[source][source] = 0
                queue = deque([source])
                while queue:
                    current = queue.popleft()
                    for neighbor in self._adjacency[current]:
                        if matrix[source][neighbor] == unreachable:
                            matrix[source][neighbor] = matrix[source][current] + 1
                            queue.append(neighbor)
            self._distances = matrix
        return self._distances

    def distance(self, first: int, second: int) -> int:
        return self.distance_matrix()[first][second]

    def diameter(self) -> int:
        """Longest shortest-path distance between connected qubit pairs."""
        matrix = self.distance_matrix()
        unreachable = self.num_qubits
        longest = 0
        for row in matrix:
            for value in row:
                if value != unreachable:
                    longest = max(longest, value)
        return longest

    def is_connected(self) -> bool:
        matrix = self.distance_matrix()
        unreachable = self.num_qubits
        return all(value != unreachable for value in matrix[0])

    def shortest_path(self, source: int, target: int) -> list[int]:
        """One shortest path between two physical qubits (inclusive of both)."""
        if source == target:
            return [source]
        previous: dict[int, int] = {source: source}
        queue = deque([source])
        while queue:
            current = queue.popleft()
            for neighbor in self._adjacency[current]:
                if neighbor not in previous:
                    previous[neighbor] = current
                    if neighbor == target:
                        queue.clear()
                        break
                    queue.append(neighbor)
        if target not in previous:
            raise ValueError(f"no path between {source} and {target}")
        path = [target]
        while path[-1] != source:
            path.append(previous[path[-1]])
        return list(reversed(path))

    def subgraph(self, qubits: list[int], name: str | None = None) -> "Architecture":
        """Architecture induced on a subset of physical qubits (reindexed from 0)."""
        index_of = {qubit: index for index, qubit in enumerate(qubits)}
        kept_edges = [
            (index_of[first], index_of[second])
            for first, second in self.edges
            if first in index_of and second in index_of
        ]
        return Architecture(len(qubits), kept_edges, name or f"{self.name}[{len(qubits)}]")

    def __repr__(self) -> str:
        return (
            f"Architecture(name={self.name!r}, qubits={self.num_qubits}, "
            f"edges={len(self.edges)})"
        )
