"""Synthetic device calibration data for the noise-aware objective (Q6).

The paper's Q6 experiment weights soft clauses by gate fidelities taken from
Qiskit's "FakeTokyo" backend.  Qiskit is not a dependency of this
reproduction, so :meth:`NoiseModel.fake_tokyo` generates a deterministic
synthetic calibration with the same statistical character as IBM backend
snapshots: two-qubit error rates spread over roughly 1-4%, varying per edge,
and single-qubit error rates an order of magnitude lower.

Fidelities enter the MaxSAT encoding as integer weights via
:meth:`NoiseModel.swap_weight`, using the standard log-fidelity trick: the sum
of weights is (a scaled, negated) log of the product of fidelities, so
maximising satisfied weight maximises the estimated success probability.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field

from repro.hardware.architecture import Architecture


@dataclass
class NoiseModel:
    """Per-edge two-qubit error rates and per-qubit single-qubit error rates."""

    architecture: Architecture
    two_qubit_error: dict[tuple[int, int], float] = field(default_factory=dict)
    single_qubit_error: dict[int, float] = field(default_factory=dict)
    weight_scale: int = 1000

    def __post_init__(self) -> None:
        for edge in self.architecture.edges:
            if edge not in self.two_qubit_error:
                raise ValueError(f"missing two-qubit error rate for edge {edge}")
            rate = self.two_qubit_error[edge]
            if not 0.0 <= rate < 1.0:
                raise ValueError(f"error rate for {edge} out of range: {rate}")
        for qubit in range(self.architecture.num_qubits):
            self.single_qubit_error.setdefault(qubit, 0.001)

    # ---------------------------------------------------------- constructors

    @classmethod
    def uniform(cls, architecture: Architecture, two_qubit_error: float = 0.02,
                single_qubit_error: float = 0.001) -> "NoiseModel":
        """All edges share the same error rate (useful as a control)."""
        return cls(
            architecture,
            {edge: two_qubit_error for edge in architecture.edges},
            {qubit: single_qubit_error for qubit in range(architecture.num_qubits)},
        )

    @classmethod
    def synthetic(cls, architecture: Architecture, seed: int = 2019,
                  low: float = 0.008, high: float = 0.045) -> "NoiseModel":
        """Deterministic per-edge error rates drawn log-uniformly from [low, high]."""
        rng = random.Random(seed)
        two_qubit = {}
        for edge in architecture.edges:
            fraction = rng.random()
            two_qubit[edge] = math.exp(
                math.log(low) + fraction * (math.log(high) - math.log(low))
            )
        single = {qubit: rng.uniform(0.0005, 0.002)
                  for qubit in range(architecture.num_qubits)}
        return cls(architecture, two_qubit, single)

    @classmethod
    def fake_tokyo(cls) -> "NoiseModel":
        """Synthetic stand-in for Qiskit's FakeTokyo calibration snapshot."""
        from repro.hardware.topologies import tokyo_architecture

        return cls.synthetic(tokyo_architecture(), seed=2019)

    # --------------------------------------------------------------- queries

    def edge_error(self, first: int, second: int) -> float:
        """Two-qubit error rate on the (undirected) edge ``(first, second)``."""
        key = (min(first, second), max(first, second))
        if key not in self.two_qubit_error:
            raise KeyError(f"({first}, {second}) is not an edge of {self.architecture.name}")
        return self.two_qubit_error[key]

    def cnot_fidelity(self, first: int, second: int) -> float:
        return 1.0 - self.edge_error(first, second)

    def swap_fidelity(self, first: int, second: int) -> float:
        """A SWAP decomposes to three CNOTs on the same edge."""
        return self.cnot_fidelity(first, second) ** 3

    def swap_weight(self, first: int, second: int) -> int:
        """Integer soft-clause weight of *not* swapping on this edge.

        ``weight = round(-weight_scale * log(swap_fidelity))`` so that the sum
        of weights of performed SWAPs is proportional to the negative log of
        the circuit's estimated success probability; maximising satisfied
        weight therefore maximises fidelity.
        """
        fidelity = self.swap_fidelity(first, second)
        return max(1, round(-self.weight_scale * math.log(fidelity)))

    def circuit_log_fidelity(self, executed_edges: list[tuple[int, int]]) -> float:
        """Natural log of the estimated success probability of a routed circuit.

        ``executed_edges`` lists the physical edge used by every two-qubit
        gate in the routed circuit (SWAPs count as three CNOTs).
        """
        total = 0.0
        for first, second in executed_edges:
            total += math.log(self.cnot_fidelity(first, second))
        return total

    def circuit_fidelity(self, executed_edges: list[tuple[int, int]]) -> float:
        return math.exp(self.circuit_log_fidelity(executed_edges))
