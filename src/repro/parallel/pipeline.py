"""Pipeline-parallel slicing: pre-encode slice ``k+1`` while ``k`` solves.

A sliced solve is a strict chain -- slice ``k+1``'s *solution* needs slice
``k``'s final map -- but its *encoding* does not: incremental slice contexts
pin the inherited initial map via per-call assumptions
(:attr:`~repro.core.encoder.EncodingOptions.pin_initial_via_assumptions`), so
the clauses streamed into a slice's :class:`~repro.core.satmap.SliceContext`
are identical whatever map the predecessor ends up producing.  That makes the
encoding safe to build ahead of time in a worker process, overlapping it with
the predecessor's SAT search.

One successor is in flight at a time.  Backtracking never invalidates a
pre-built context (the encoding is map-independent); only *escalation* does
(more leading slots or swaps per gate change the encoding shape), and it
invalidates at most the one in-flight successor.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor

from repro.obs import trace as obs_trace
from repro.obs.metrics import default_registry


def _prebuild_worker(config: dict, circuit, architecture,
                     leading_slots: int | None, swaps_per_gate: int | None):
    """Build (and pickle back) one slice's ready-to-solve context.

    The placeholder initial map only flips the encoder into
    pin-via-assumptions shape (leading swap slot + assumption pinning); the
    map itself never enters the clauses, so the caller can solve under any
    inherited map.
    """
    from repro.core.satmap import SatMapRouter, _instance_key

    started = time.time()
    clock = time.monotonic()
    router = SatMapRouter(**config)
    placeholder = {qubit: qubit for qubit in range(circuit.num_qubits)}
    context = router._build_context(
        circuit, architecture, _instance_key(circuit, architecture),
        placeholder, False, leading_slots, swaps_per_gate)
    return context, started, time.monotonic() - clock


class SlicePipeline:
    """Prefetches successor slice contexts through a one-worker process pool.

    Degrades to a no-op (``enabled=False``) when a process pool cannot be
    created; the sliced solve then simply encodes inline as before.
    """

    #: Longest the consumer blocks on a prefetch that is still encoding
    #: before giving up and encoding inline (seconds).
    TAKE_TIMEOUT = 10.0

    def __init__(self, router, architecture) -> None:
        self.architecture = architecture
        self.prebuilt_used = 0
        self.invalidated = 0
        self.misses = 0
        self._inflight: dict[int, tuple] = {}
        self._config = dict(
            slice_size=None,
            swaps_per_gate=router.swaps_per_gate,
            time_budget=router.time_budget,
            strategy=router.strategy,
            backtrack_limit=router.backtrack_limit,
            collapse_repeated_pairs=router.collapse_repeated_pairs,
            noise_model=router.noise_model,
            verify=False,
            incremental=True,
            solver_backend=router.solver_backend,
            name=router.name,
        )
        self._executor = None
        try:
            executor = ProcessPoolExecutor(max_workers=1)
            executor.submit(int, 0).result(timeout=60)
            self._executor = executor
        except Exception:
            if self._executor is not None:
                self._executor.shutdown(wait=False, cancel_futures=True)
            self._executor = None

    @property
    def enabled(self) -> bool:
        return self._executor is not None

    def prefetch(self, state) -> None:
        """Start encoding ``state``'s slice in the worker (idempotent)."""
        if (not self.enabled or state.context is not None
                or state.index in self._inflight):
            return
        shape = (state.leading_slots, state.swaps_per_gate)
        future = self._executor.submit(
            _prebuild_worker, self._config, state.circuit, self.architecture,
            state.leading_slots, state.swaps_per_gate)
        self._inflight[state.index] = (future, shape)

    def take(self, state, timeout: float | None = None):
        """The pre-built context for ``state``, or ``None`` on any mismatch."""
        entry = self._inflight.pop(state.index, None)
        if entry is None:
            return None
        future, shape = entry
        if shape != (state.leading_slots, state.swaps_per_gate):
            # The slice escalated while its encoding was in flight.
            future.cancel()
            self._count_invalidated()
            return None
        try:
            context, started, seconds = future.result(
                timeout=self.TAKE_TIMEOUT if timeout is None else timeout)
        except Exception:
            self.misses += 1
            return None
        self.prebuilt_used += 1
        default_registry().counter(
            "repro_parallel_pipeline_prebuilt_total",
            "slice encodings pre-built by the pipeline").inc()
        # Recorded at the route level (not inside the current slice span):
        # the encode ran during the *predecessor's* solve, so nesting it
        # under the successor's span would break span containment.
        obs_trace.record("pipeline-encode", start=started, duration=seconds,
                         slice=state.index)
        return context

    def invalidate(self, index: int) -> None:
        """Drop the in-flight encoding for ``index`` (shape changed)."""
        entry = self._inflight.pop(index, None)
        if entry is not None:
            entry[0].cancel()
            self._count_invalidated()

    def _count_invalidated(self) -> None:
        self.invalidated += 1
        default_registry().counter(
            "repro_parallel_pipeline_invalidated_total",
            "pre-built slice encodings discarded after escalation").inc()

    def close(self) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=False, cancel_futures=True)
            self._executor = None
        self._inflight.clear()
