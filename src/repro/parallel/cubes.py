"""Cube-and-conquer over the initial-mapping space.

The monolithic SATMAP solve spends most of its time in the final UNSAT call
that proves no cheaper model exists -- a proof over *every* initial mapping.
Cube-and-conquer partitions that space: fix the placement of the ``k``
highest-interaction-degree logical qubits (one placement per cube, every
placement covered, so the cubes are disjoint and exhaustive), solve each cube
as the *same* encoding restricted by assumption literals
(:meth:`~repro.core.encoder.QmrEncoding.initial_mapping_assumptions`), and
take the minimum over cube optima.  Because the encoding shape is untouched,
the minimum over cubes is exactly the serial optimum -- same swap count,
verifier-clean.

Cubes race in worker processes around a shared incumbent cell: every model a
cube finds publishes its cost, every SAT call a cube makes assumes "cost
strictly below the incumbent" (via the linear search's ``bound_hook``), so a
cube dominated by another's solution is refuted in one cheap UNSAT call
instead of enumerating its own model ladder.  The first cube to prove its
local optimum equal to the incumbent wins; the rest prune.  That pruning is
what makes the scheme pay even on a single core: the sum of per-cube proofs
under a tight bound is typically far smaller than one whole-space proof.

Cubes are dealt round-robin into one *shard* per worker, and each worker
solves its shard sequentially over a single incremental
:class:`~repro.core.satmap.SliceContext`: the encoding is streamed once per
worker (cube pins are per-call assumption literals, so every cube shares the
exact same clause set) and learnt clauses accumulate across the shard's
cubes, making each successive bounded proof cheaper.  Without the sharing, a
20-cube plan would pay the encoding cost 20 times over -- typically more
than the whole decomposition saves.

When a process pool cannot be created (sandboxes, nested daemonic workers)
the shard runs inline in the parent -- the decomposition, session sharing,
and bound pruning still apply, only the overlap is lost.
"""

from __future__ import annotations

import multiprocessing as mp
import threading
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass

from repro.circuits.circuit import QuantumCircuit
from repro.core.result import RoutingResult, RoutingStatus
from repro.hardware.architecture import Architecture
from repro.obs import trace as obs_trace
from repro.obs.metrics import default_registry

#: Sentinel stored in the shared incumbent cell while no model exists yet.
NO_BOUND = 2 ** 62

#: Hard ceiling on cubes per plan: fixing ``k`` qubits multiplies cube count
#: by (physical - k), so deep plans explode combinatorially.
MAX_CUBES = 4096

#: Extra wall-clock (seconds) the collector waits past the job budget for
#: workers that are already self-terminating at that same budget.
COLLECT_SLACK = 5.0


@dataclass(frozen=True)
class CubePlan:
    """A disjoint, exhaustive partition of the initial-mapping space."""

    #: Logical qubits whose placement each cube fixes, in fixing order.
    qubits: tuple[int, ...]
    #: One partial initial map per cube (logical -> physical, injective).
    cubes: tuple[dict, ...]


def plan_cubes(circuit: QuantumCircuit, architecture: Architecture,
               min_cubes: int = 2, max_fixed: int = 3) -> CubePlan:
    """Partition initial mappings by placing high-degree logical qubits.

    Qubits are fixed in decreasing interaction-graph degree (distinct
    partners, then total interactions, then index); placements enumerate
    every physical qubit, so the cubes of each level are disjoint and cover
    the whole space.  More qubits are fixed until at least ``min_cubes``
    cubes exist or ``max_fixed`` is reached.  Cubes are ordered
    densest-placement-first: the optimum tends to put busy logical qubits on
    high-degree physical ones, and finding it early makes the shared bound
    prune everyone else.
    """
    interactions = circuit.interaction_sequence()
    if not interactions:
        return CubePlan((), ())
    partners: dict[int, set] = {}
    counts: dict[int, int] = {}
    for a, b in interactions:
        partners.setdefault(a, set()).add(b)
        partners.setdefault(b, set()).add(a)
        counts[a] = counts.get(a, 0) + 1
        counts[b] = counts.get(b, 0) + 1
    order = sorted(partners,
                   key=lambda q: (-len(partners[q]), -counts[q], q))
    physical = range(architecture.num_qubits)
    fixed: list[int] = []
    cubes: list[dict] = [{}]
    for qubit in order[:max_fixed]:
        if len(cubes) >= min_cubes:
            break
        grown = [{**cube, qubit: place}
                 for cube in cubes
                 for place in physical if place not in cube.values()]
        if not grown or len(grown) > MAX_CUBES:
            break
        fixed.append(qubit)
        cubes = grown
    if not fixed:
        return CubePlan((), ())

    def density(cube: dict) -> tuple:
        return (-sum(architecture.degree(place) for place in cube.values()),
                tuple(sorted(cube.items())))

    return CubePlan(tuple(fixed), tuple(sorted(cubes, key=density)))


# ------------------------------------------------------------ incumbent cell

class _LocalCell:
    """Single-process stand-in for ``multiprocessing.Value`` ("q")."""

    def __init__(self) -> None:
        self.value = NO_BOUND
        self._lock = threading.Lock()

    def get_lock(self):
        return self._lock


def _bound_hook_for(cell):
    """A :func:`LinearSearchSolver.solve` hook around an incumbent cell.

    Publishes the caller's best true cost and returns the global incumbent
    (or ``None`` while no cube has found a model).
    """

    def hook(local_best):
        with cell.get_lock():
            if local_best is not None and 0 <= local_best < cell.value:
                cell.value = int(local_best)
            current = cell.value
        return current if current < NO_BOUND else None

    return hook


#: The shared incumbent cell a pool worker inherits at fork.
_SHARED_CELL = None


def _init_cube_worker(cell) -> None:
    global _SHARED_CELL
    _SHARED_CELL = cell


# -------------------------------------------------------------- cube solving

def _serial_twin_config(router, time_budget: float) -> dict:
    """Constructor kwargs for a worker-side serial copy of ``router``."""
    return dict(
        slice_size=None,
        swaps_per_gate=router.swaps_per_gate,
        time_budget=time_budget,
        strategy=router.strategy,
        backtrack_limit=router.backtrack_limit,
        collapse_repeated_pairs=router.collapse_repeated_pairs,
        noise_model=router.noise_model,
        verify=False,  # the parent's BaseRouter scaffolding verifies the winner
        incremental=router.incremental,
        name=router.name,
    )


def _run_cube(router, payload: dict, bound_hook, context=None):
    """Solve one cube; returns its record plus the context for session reuse.

    Builds its own ``cube-solve`` span tree (the router's encode/solve/
    extract spans nest inside) and ships it back serialised so the parent can
    graft it under the job root.
    """
    tracer = obs_trace.Tracer(max_traces=1)
    root = tracer.start_trace("cube-solve", cube_id=payload["cube_id"],
                              cube=_cube_label(payload["cube"]))
    with obs_trace.activate(tracer, root):
        outcome = router.solve_monolithic(
            payload["circuit"], payload["architecture"], payload["budget"],
            excluded_final_mappings=payload["excluded"],
            swaps_per_gate=payload["swaps_per_gate"],
            context=context,
            cube=payload["cube"],
            bound_hook=bound_hook,
        )
    root.finish(status=outcome.result.status.value,
                swaps=outcome.result.swap_count,
                pruned=outcome.pruned)
    record = {
        "cube_id": payload["cube_id"],
        "result": outcome.result,
        "maxsat_cost": outcome.maxsat_cost,
        "pruned": outcome.pruned,
        "trace": root.to_dict(),
    }
    return record, outcome.context


def _run_shard(shard: list, hook) -> dict:
    """Solve a shard's cubes sequentially over one shared session.

    Incremental contexts are reused across the shard (the encoding is
    identical for every cube -- the pins are assumptions), so the shard pays
    one encode and each cube inherits the previous cubes' learnt clauses.
    Session counters are cumulative; records carry per-cube deltas so the
    parent can sum them as if every cube were independent.
    """
    from repro.core.satmap import SatMapRouter

    router = SatMapRouter(**shard[0]["router"])
    deadline = time.monotonic() + shard[0]["budget"]
    records: list[dict] = []
    context = None
    baseline: dict = {}
    streamed_seen = 0
    retained_seen = 0
    for payload in shard:
        remaining = deadline - time.monotonic()
        if remaining <= 0:
            return {"records": records, "complete": False}
        record, context = _run_cube(router, dict(payload, budget=remaining),
                                    hook, context if router.incremental else None)
        result = record["result"]
        cumulative = dict(result.solver_stats)
        result.solver_stats = {
            counter: (value if counter == "backend"
                      else max(0, int(value) - int(baseline.get(counter, 0))))
            for counter, value in cumulative.items()}
        baseline = cumulative
        result.clauses_streamed, streamed_seen = (
            max(0, result.clauses_streamed - streamed_seen),
            result.clauses_streamed)
        result.learnt_clauses_retained, retained_seen = (
            max(0, result.learnt_clauses_retained - retained_seen),
            result.learnt_clauses_retained)
        records.append(record)
    return {"records": records, "complete": True}


def _solve_shard_worker(shard: list) -> dict:
    hook = _bound_hook_for(_SHARED_CELL) if _SHARED_CELL is not None else None
    return _run_shard(shard, hook)


def _cube_label(cube: dict) -> str:
    return ",".join(f"q{l}@p{p}" for l, p in sorted(cube.items()))


# ------------------------------------------------------------------ the race

def solve_cubed(router, circuit: QuantumCircuit, architecture: Architecture,
                time_budget: float,
                excluded_final_mappings: list | None = None,
                swaps_per_gate: int | None = None):
    """Race disjoint cubes of the initial-mapping space; serial-cost result.

    Returns a :class:`~repro.core.satmap.MonolithicOutcome` whose result has
    the same swap cost the serial ``solve_monolithic`` would prove (and the
    OPTIMAL status only when every cube finished: each either proved its
    local optimum, was pruned by the shared bound, or was unsatisfiable).
    Falls back to the serial path outright when the circuit yields fewer
    than two cubes.
    """
    start = time.monotonic()
    excluded = excluded_final_mappings or []
    workers = max(1, int(router.cube_workers or 1))
    plan = plan_cubes(circuit, architecture, min_cubes=max(2, workers))
    if len(plan.cubes) < 2:
        return router.solve_monolithic(
            circuit, architecture, time_budget,
            excluded_final_mappings=excluded,
            swaps_per_gate=swaps_per_gate)

    config = _serial_twin_config(router, time_budget)
    payloads = [
        {
            "cube_id": cube_id,
            "cube": cube,
            "circuit": circuit,
            "architecture": architecture,
            "excluded": list(excluded),
            "swaps_per_gate": swaps_per_gate,
            "budget": time_budget,
            "router": config,
        }
        for cube_id, cube in enumerate(plan.cubes)
    ]

    with obs_trace.span("cube-conquer", cubes=len(plan.cubes),
                        workers=workers,
                        fixed_qubits=len(plan.qubits)) as conquer_span:
        records, complete, mode = _run_cubes(payloads, workers, time_budget)
        _graft_cube_traces(records, conquer_span)
        outcome = _combine(router, circuit, plan, records, complete, mode,
                           workers, time.monotonic() - start)
        conquer_span.set(status=outcome.result.status.value, mode=mode,
                         pruned=sum(1 for r in records if r["pruned"]))

    registry = default_registry()
    registry.counter("repro_parallel_cubes_total",
                     "cubes solved by cube-and-conquer").inc(len(records))
    registry.counter("repro_parallel_cubes_pruned_total",
                     "cubes pruned by the shared incumbent bound").inc(
        sum(1 for r in records if r["pruned"]))
    if mode == "inline":
        registry.counter("repro_parallel_cube_inline_total",
                         "cube batches run inline (no process pool)").inc()
    return outcome


def _run_cubes(payloads: list, workers: int, time_budget: float):
    """Execute cube payloads; returns (records, complete, mode).

    Payloads are dealt round-robin into one shard per worker -- the planner
    orders cubes densest-first, so every worker opens with a promising cube
    and the incumbent bound appears early no matter which worker finds it.
    """
    job_deadline = time.monotonic() + time_budget
    executor = None
    cell = None
    if workers > 1:
        try:
            cell = mp.Value("q", NO_BOUND)
            executor = ProcessPoolExecutor(max_workers=workers,
                                           initializer=_init_cube_worker,
                                           initargs=(cell,))
            # Surface pool-creation failures (missing /dev/shm, daemonic
            # parents) here rather than at first cube.
            executor.submit(int, 0).result(timeout=60)
        except Exception:
            if executor is not None:
                executor.shutdown(wait=False, cancel_futures=True)
            executor = None

    if executor is None:
        shard_outcome = _run_shard(payloads, _bound_hook_for(_LocalCell()))
        return shard_outcome["records"], shard_outcome["complete"], "inline"

    # Incumbent warm-start: the parent solves the densest cube to its local
    # optimum *before* the race, so every worker's very first SAT call is
    # already bounded.  Without it the workers spend the race's opening
    # phase enumerating model ladders the incumbent would have pruned.
    hook = _bound_hook_for(cell)
    warm = _run_shard(payloads[:1], hook)
    race_budget = max(0.0, job_deadline - time.monotonic())
    rest = [dict(payload, budget=race_budget) for payload in payloads[1:]]
    shards = [rest[offset::workers] for offset in range(workers)
              if rest[offset::workers]]
    futures = {executor.submit(_solve_shard_worker, shard) for shard in shards}
    deadline = time.monotonic() + race_budget + COLLECT_SLACK
    records: list[dict] = list(warm["records"])
    complete = warm["complete"]
    pending = set(futures)
    while pending:
        remaining = deadline - time.monotonic()
        if remaining <= 0:
            complete = False
            break
        done, pending = wait(pending, timeout=remaining,
                             return_when=FIRST_COMPLETED)
        if not done:
            complete = False
            break
        for future in done:
            try:
                shard_outcome = future.result()
                records.extend(shard_outcome["records"])
                complete = complete and shard_outcome["complete"]
            except Exception:
                complete = False  # a crashed shard voids the optimality proof
    # Pending shards keep their processes only until their own budget
    # expires; nothing waits on them.
    executor.shutdown(wait=False, cancel_futures=True)
    records.sort(key=lambda record: record["cube_id"])
    return records, complete and not pending, "process"


def _graft_cube_traces(records: list, conquer_span) -> None:
    tracer = obs_trace.current_tracer()
    if tracer is None or not hasattr(conquer_span, "trace_id"):
        return
    for record in records:
        tree = record.get("trace")
        if tree:
            tracer.attach_tree(tree, trace_id=conquer_span.trace_id,
                               parent_span_id=conquer_span.span_id)


def _combine(router, circuit, plan: CubePlan, records: list, complete: bool,
             mode: str, workers: int, elapsed: float):
    """Fold cube records into one outcome with serial-equivalent semantics."""
    from repro.core.satmap import MonolithicOutcome

    pruned_count = sum(1 for record in records if record["pruned"])
    solved = [record for record in records if record["result"].solved]
    note = (f"cube-and-conquer: {len(records)}/{len(plan.cubes)} cubes "
            f"({mode}, workers={workers}), {pruned_count} pruned by bound")
    if not complete:
        note += ", incomplete"

    if not solved:
        truly_unsat = (complete and records
                       and all(not record["pruned"]
                               and record["result"].status
                               is RoutingStatus.UNSATISFIABLE
                               for record in records))
        result = RoutingResult(
            status=(RoutingStatus.UNSATISFIABLE if truly_unsat
                    else RoutingStatus.TIMEOUT),
            router_name=router.name,
            circuit_name=circuit.name,
            sat_calls=sum(record["result"].sat_calls for record in records),
            solve_time=elapsed,
            notes=note,
        )
        _fold_stats(result, records, pruned_count)
        return MonolithicOutcome(result)

    winner = min(solved, key=_winner_key)
    result = winner["result"]
    # A cube's own OPTIMAL only covers its cube (possibly just "nothing beats
    # the incumbent"); the global claim additionally needs every other cube
    # accounted for: pruned, unsatisfiable, or proven no better.
    proven = (complete and result.optimal
              and all(record["pruned"]
                      or record["result"].optimal
                      or record["result"].status is RoutingStatus.UNSATISFIABLE
                      for record in records))
    result.status = RoutingStatus.OPTIMAL if proven else RoutingStatus.FEASIBLE
    result.optimal = proven
    result.sat_calls = sum(record["result"].sat_calls for record in records)
    result.solve_time = elapsed
    result.notes = note + (f"; {result.notes}" if result.notes else "")
    _fold_stats(result, records, pruned_count)
    return MonolithicOutcome(result, maxsat_cost=winner["maxsat_cost"],
                             pruned=False)


def _winner_key(record: dict):
    cost = record["maxsat_cost"]
    if cost < 0:
        cost = record["result"].swap_count
    return (cost, record["cube_id"])


def _fold_stats(result: RoutingResult, records: list, pruned_count: int) -> None:
    """Sum per-cube work measures onto the combined result."""
    timings: dict[str, float] = {}
    stats: dict[str, int] = {}
    streamed = 0
    retained = 0
    for record in records:
        cube_result = record["result"]
        for stage, seconds in cube_result.stage_timings.items():
            timings[stage] = timings.get(stage, 0.0) + seconds
        for counter, value in cube_result.solver_stats.items():
            if counter == "backend":
                # Carry the solve core through aggregation; shards running
                # different cores (should not happen) surface as "mixed".
                previous = stats.get("backend")
                stats["backend"] = (value if previous in (None, value)
                                    else "mixed")
            else:
                stats[counter] = stats.get(counter, 0) + int(value)
        streamed += cube_result.clauses_streamed
        retained += cube_result.learnt_clauses_retained
    stats["cubes"] = len(records)
    stats["cubes_pruned"] = pruned_count
    result.stage_timings = timings
    result.solver_stats = stats
    result.clauses_streamed = streamed
    result.learnt_clauses_retained = retained
