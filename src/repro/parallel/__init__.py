"""Intra-job parallelism: use every core on *one* routing job.

The worker pool (:mod:`repro.service.pool`) parallelises *across* jobs; this
package parallelises *inside* a job, the step the paper's Fig. 15/16
scalability regime actually needs:

* :mod:`repro.parallel.cubes` -- cube-and-conquer over the initial-mapping
  space: the placement of the highest-interaction-degree logical qubits is
  fixed per cube, cubes race in worker processes, and the best cost found so
  far is shared so losing cubes prune themselves.
* :mod:`repro.parallel.pipeline` -- pipeline-parallel slicing: while slice
  ``k`` solves, slice ``k+1``'s encoding streams into its own
  :class:`~repro.core.satmap.SliceContext` in a worker process.

Both schemes are opt-in through :class:`~repro.core.satmap.SatMapRouter`
options (``cube_workers=N``, ``pipeline_slices=True``) and keep the final
swap cost identical to the serial path.
"""

from repro.parallel.cubes import CubePlan, plan_cubes, solve_cubed
from repro.parallel.pipeline import SlicePipeline

__all__ = ["CubePlan", "plan_cubes", "solve_cubed", "SlicePipeline"]
