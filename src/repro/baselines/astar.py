"""MQT-style A* layer router.

The MQT mapping heuristic (Zulehner, Paler, Wille, TCAD 2019 -- "MQTH" in the
paper) partitions the circuit into topological layers of two-qubit gates and,
between consecutive layers, runs an A* search over mappings to find a minimal
SWAP sequence that makes every gate of the next layer executable.  The search
is exact per layer transition but greedy across layers, which is why the paper
classifies it as a heuristic tool.

States are (mapping, swaps-so-far); the admissible heuristic is the sum over
layer gates of ``ceil((distance - 1) / largest_single_swap_gain)``, which never
overestimates because one SWAP reduces any single gate's distance by at most
one.  A node-expansion cap keeps worst cases bounded; when it trips, the
router falls back to walking the most-distant gate's qubits together, which
preserves correctness (the result is still verified) at the price of
optimality for that layer.

Layers come from :meth:`~repro.circuits.dag.CircuitDag.layer_indices` (node
indices, no DagNode materialisation) and all distance lookups inside the
search read the architecture's flat distance matrix.
"""

from __future__ import annotations

import heapq
import itertools
import math

from repro.baselines.base import RoutedBuilder, Router, greedy_interaction_mapping
from repro.circuits.circuit import QuantumCircuit
from repro.circuits.dag import CircuitDag
from repro.core.result import RoutingResult, RoutingStatus
from repro.hardware.architecture import Architecture


class AStarLayerRouter(Router):
    """Layer-by-layer A* mapper in the style of the MQT heuristic."""

    name = "MQT-A*"

    def __init__(self, time_budget: float = 60.0, expansion_limit: int = 20000,
                 verify: bool = True) -> None:
        super().__init__(time_budget=time_budget, verify=verify)
        if expansion_limit <= 0:
            raise ValueError("expansion_limit must be positive")
        self.expansion_limit = expansion_limit

    def _route(self, circuit: QuantumCircuit, architecture: Architecture,
               deadline: float) -> RoutingResult:
        mapping = greedy_interaction_mapping(circuit, architecture)
        builder = RoutedBuilder(circuit, architecture, mapping)
        dag = CircuitDag(circuit)
        ir = circuit.ir
        qa, qb, offset = ir.qa, ir.qb, ir.start

        for layer in dag.layer_indices():
            self.check_deadline(deadline)
            pairs = [(qa[offset + index], qb[offset + index])
                     for index in layer if qb[offset + index] >= 0]
            if pairs:
                for logical_a, logical_b in pairs:
                    builder.require_reachable(logical_a, logical_b)
                swap_sequence = self._search_layer(pairs, builder,
                                                   architecture, deadline)
                for edge in swap_sequence:
                    builder.emit_swap(*edge)
            for index in layer:
                builder.emit_index(ir, index)
        return builder.result(self.name, status=RoutingStatus.FEASIBLE)

    # ------------------------------------------------------------ A* search

    def _search_layer(self, pairs: list[tuple[int, int]], builder: RoutedBuilder,
                      architecture: Architecture, deadline: float
                      ) -> list[tuple[int, int]]:
        """Minimal SWAP sequence making all ``pairs`` executable at once."""
        distance = architecture.flat_distance_lookup()
        num_physical = architecture.num_qubits
        logical_qubits = sorted({q for pair in pairs for q in pair})
        slot_of = {logical: slot for slot, logical in enumerate(logical_qubits)}
        pair_slots = [(slot_of[first], slot_of[second]) for first, second in pairs]

        def heuristic(placement: tuple[int, ...]) -> int:
            total = 0
            for first, second in pair_slots:
                gap = distance[placement[first] * num_physical + placement[second]] - 1
                if gap > 0:
                    total += gap
            return (total + 1) // 2 if total else 0

        def is_goal(placement: tuple[int, ...]) -> bool:
            for first, second in pair_slots:
                if distance[placement[first] * num_physical + placement[second]] != 1:
                    return False
            return True

        phys_of = builder.phys_of
        start_placement = tuple(phys_of[q] for q in logical_qubits)
        if is_goal(start_placement):
            return []

        counter = itertools.count()
        frontier: list[tuple[int, int, int, tuple[int, ...], list[tuple[int, int]]]] = []
        heapq.heappush(frontier, (heuristic(start_placement), next(counter), 0,
                                  start_placement, []))
        best_cost: dict[tuple[int, ...], int] = {start_placement: 0}
        expansions = 0

        while frontier:
            if expansions % 256 == 0:
                self.check_deadline(deadline)
            estimate, _, cost, placement, path = heapq.heappop(frontier)
            if is_goal(placement):
                return path
            if cost > best_cost.get(placement, math.inf):
                continue
            expansions += 1
            if expansions > self.expansion_limit:
                return self._greedy_fallback(pairs, builder, architecture)
            relevant_physical = set(placement)
            for edge in architecture.edges:
                if edge[0] not in relevant_physical and edge[1] not in relevant_physical:
                    continue
                new_placement = _apply_swap(placement, edge)
                new_cost = cost + 1
                if new_cost >= best_cost.get(new_placement, math.inf):
                    continue
                best_cost[new_placement] = new_cost
                heapq.heappush(frontier, (new_cost + heuristic(new_placement),
                                          next(counter), new_cost, new_placement,
                                          path + [edge]))
        return self._greedy_fallback(pairs, builder, architecture)

    def _greedy_fallback(self, pairs: list[tuple[int, int]], builder: RoutedBuilder,
                         architecture: Architecture) -> list[tuple[int, int]]:
        """Walk each gate's qubits adjacent along shortest paths (non-optimal)."""
        position = dict(builder.mapping)
        swaps: list[tuple[int, int]] = []
        for first, second in pairs:
            while not architecture.are_adjacent(position[first], position[second]):
                path = architecture.shortest_path(position[first], position[second])
                edge = (path[0], path[1])
                occupant = None
                for logical, physical in position.items():
                    if physical == edge[1]:
                        occupant = logical
                        break
                position[first] = edge[1]
                if occupant is not None:
                    position[occupant] = edge[0]
                swaps.append(edge)
        return swaps


def _apply_swap(placement: tuple[int, ...], edge: tuple[int, int]) -> tuple[int, ...]:
    """Placement after swapping the physical qubits of ``edge``."""
    first, second = edge
    return tuple(second if p == first else first if p == second else p
                 for p in placement)
