"""A BMT/Enfield-style router: subgraph isomorphism plus token swapping.

The paper's related-work section cites Siraichi et al.'s Enfield approach,
"qubit allocation as a combination of subgraph isomorphism and token
swapping".  The idea:

1. split the circuit into maximal *regions* whose interaction graph embeds
   into the connectivity graph (so the region runs with zero SWAPs);
2. find such an embedding for each region (a bounded backtracking search, the
   subgraph-isomorphism half); and
3. between consecutive regions, move every logical qubit from its old
   physical home to its new one with an approximate token-swapping sequence.

This router rounds out the heuristic baseline set with a fundamentally
different strategy from SABRE/TKET (which pick SWAPs gate-by-gate): it
commits to per-region placements and pays the full permutation cost at region
boundaries.  On circuits with phase structure (e.g. QAOA) it can do well; on
unstructured circuits it usually trails the lookahead heuristics, which is
exactly the behaviour the comparison benchmarks surface.
"""

from __future__ import annotations

from repro.baselines.base import RoutedBuilder, Router
from repro.baselines.token_swapping import approximate_token_swapping
from repro.circuits.circuit import QuantumCircuit
from repro.core.result import RoutingResult
from repro.hardware.architecture import Architecture


class BmtLikeRouter(Router):
    """Region-wise subgraph-isomorphism placement glued by token swapping."""

    name = "bmt-like"

    def __init__(self, time_budget: float = 60.0, verify: bool = True,
                 max_embedding_attempts: int = 20_000) -> None:
        super().__init__(time_budget=time_budget, verify=verify)
        self.max_embedding_attempts = max_embedding_attempts

    # -------------------------------------------------------------- routing

    def _route(self, circuit: QuantumCircuit, architecture: Architecture,
               deadline: float) -> RoutingResult:
        regions = self._split_into_regions(circuit, architecture, deadline)
        mappings = self._place_regions(circuit, regions, architecture, deadline)

        builder = RoutedBuilder(circuit, architecture, mappings[0])
        ir = circuit.ir
        for region_index, (start, end) in enumerate(regions):
            self.check_deadline(deadline)
            if region_index > 0:
                self._transition(builder, architecture,
                                 mappings[region_index - 1], mappings[region_index])
            for index in range(start, end):
                builder.emit_op(*ir.gate(index))
        return builder.result(self.name)

    # ----------------------------------------------------------- region split

    def _two_qubit_items(self, circuit: QuantumCircuit) -> list[tuple[int, int, int]]:
        """``(gate index, low qubit, high qubit)`` per two-qubit gate, in order."""
        ir = circuit.ir
        qa, qb, offset = ir.qa, ir.qb, ir.start
        items = []
        for index in ir.two_qubit_indices():
            a = qa[offset + index]
            b = qb[offset + index]
            items.append((index, a, b) if a < b else (index, b, a))
        return items

    def _split_into_regions(self, circuit: QuantumCircuit, architecture: Architecture,
                            deadline: float) -> list[tuple[int, int]]:
        """Greedy maximal split: extend the current region while it still embeds."""
        regions: list[tuple[int, int]] = []
        start = 0
        current_pairs: set[tuple[int, int]] = set()
        for index, low, high in self._two_qubit_items(circuit):
            self.check_deadline(deadline)
            pair = (low, high)
            candidate = current_pairs | {pair}
            if (pair not in current_pairs
                    and self._find_embedding(candidate, circuit.num_qubits,
                                             architecture) is None):
                regions.append((start, index))
                start = index
                current_pairs = {pair}
            else:
                current_pairs = candidate
        regions.append((start, len(circuit)))
        return [region for region in regions if region[0] < region[1]] or [(0, len(circuit))]

    def _region_pairs(self, circuit: QuantumCircuit,
                      region: tuple[int, int]) -> set[tuple[int, int]]:
        return {(low, high) for index, low, high in self._two_qubit_items(circuit)
                if region[0] <= index < region[1]}

    # ------------------------------------------------------------- placement

    def _place_regions(self, circuit: QuantumCircuit, regions: list[tuple[int, int]],
                       architecture: Architecture,
                       deadline: float) -> list[dict[int, int]]:
        """Choose one complete logical->physical mapping per region."""
        mappings: list[dict[int, int]] = []
        previous: dict[int, int] | None = None
        for region in regions:
            self.check_deadline(deadline)
            pairs = self._region_pairs(circuit, region)
            embedding = self._find_embedding(pairs, circuit.num_qubits, architecture,
                                             prefer=previous)
            if embedding is None:
                # The region was built to embed; a miss can only happen for a
                # single non-embeddable pair, which cannot occur on a connected
                # graph.  Fall back to the previous mapping to stay safe.
                embedding = dict(previous) if previous else {}
            complete = self._complete_mapping(embedding, circuit.num_qubits,
                                              architecture, prefer=previous)
            mappings.append(complete)
            previous = complete
        return mappings

    def _find_embedding(self, pairs: set[tuple[int, int]], num_qubits: int,
                        architecture: Architecture,
                        prefer: dict[int, int] | None = None) -> dict[int, int] | None:
        """Backtracking search for a mapping sending every pair onto an edge.

        Only logical qubits that appear in ``pairs`` are placed.  ``prefer``
        biases the search order towards a previous mapping so consecutive
        regions stay close (cheaper transitions).
        """
        involved = sorted({q for pair in pairs for q in pair})
        if not involved:
            return {}
        adjacency = {q: set() for q in involved}
        for first, second in pairs:
            adjacency[first].add(second)
            adjacency[second].add(first)
        # Place high-degree logical qubits first (fail fast).
        order = sorted(involved, key=lambda q: -len(adjacency[q]))
        attempts = 0

        def candidates(logical: int, partial: dict[int, int]) -> list[int]:
            used = set(partial.values())
            options = [p for p in range(architecture.num_qubits) if p not in used]
            preferred = prefer.get(logical) if prefer else None
            options.sort(key=lambda p: (0 if p == preferred else 1,
                                        -architecture.degree(p)))
            return options

        def consistent(logical: int, physical: int, partial: dict[int, int]) -> bool:
            for neighbor in adjacency[logical]:
                if neighbor in partial and not architecture.are_adjacent(
                        physical, partial[neighbor]):
                    return False
            return True

        def backtrack(position: int, partial: dict[int, int]) -> dict[int, int] | None:
            nonlocal attempts
            if position == len(order):
                return dict(partial)
            logical = order[position]
            for physical in candidates(logical, partial):
                attempts += 1
                if attempts > self.max_embedding_attempts:
                    return None
                if not consistent(logical, physical, partial):
                    continue
                partial[logical] = physical
                found = backtrack(position + 1, partial)
                if found is not None:
                    return found
                del partial[logical]
            return None

        return backtrack(0, {})

    def _complete_mapping(self, partial: dict[int, int], num_qubits: int,
                          architecture: Architecture,
                          prefer: dict[int, int] | None = None) -> dict[int, int]:
        """Extend a partial embedding to place every logical qubit."""
        mapping = dict(partial)
        used = set(mapping.values())
        for logical in range(num_qubits):
            if logical in mapping:
                continue
            preferred = prefer.get(logical) if prefer else None
            if preferred is not None and preferred not in used:
                choice = preferred
            else:
                choice = next(p for p in range(architecture.num_qubits) if p not in used)
            mapping[logical] = choice
            used.add(choice)
        return mapping

    # ------------------------------------------------------------ transition

    def _transition(self, builder: RoutedBuilder, architecture: Architecture,
                    source: dict[int, int], target: dict[int, int]) -> None:
        """Emit token-swapping SWAPs moving ``source`` into ``target``."""
        current = {logical: builder.physical_of(logical) for logical in source}
        swaps = approximate_token_swapping(architecture, current, target)
        for first, second in swaps:
            builder.emit_swap(first, second)


def interaction_pairs(circuit: QuantumCircuit) -> set[tuple[int, int]]:
    """All distinct (unordered) logical pairs touched by two-qubit gates."""
    return {(first, second) if first < second else (second, first)
            for first, second in circuit.interaction_sequence()}


def embeds_without_swaps(circuit: QuantumCircuit, architecture: Architecture,
                         max_attempts: int = 20_000) -> bool:
    """Whether the circuit's full interaction graph embeds into the device.

    When it does, a zero-SWAP routing exists (the ~14% of paper benchmarks for
    which SATMAP adds no gates are exactly these).
    """
    router = BmtLikeRouter(max_embedding_attempts=max_attempts)
    pairs = interaction_pairs(circuit)
    return router._find_embedding(pairs, circuit.num_qubits, architecture) is not None
