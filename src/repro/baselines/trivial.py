"""The naive shortest-path router (the baseline every tool must beat).

For every two-qubit gate whose operands are not adjacent under the current
mapping, walk one operand along a shortest path towards the other, swapping at
every step, until they meet.  No lookahead, no initial-placement optimisation
beyond an optional interaction-aware start.

The paper does not evaluate this router -- no serious tool would -- but it
serves two purposes in the repository: it provides an upper bound that makes
the cost ratios of the real tools interpretable, and its utter simplicity
makes it the reference implementation for the routing-correctness property
tests (any circuit it routes must verify, and every other router must never
do worse than a constant factor of it on the suite).
"""

from __future__ import annotations

from repro.baselines.base import (
    RoutedBuilder,
    Router,
    greedy_interaction_mapping,
    identity_mapping,
)
from repro.circuits.circuit import QuantumCircuit
from repro.core.result import RoutingResult
from repro.hardware.architecture import Architecture


class NaiveShortestPathRouter(Router):
    """Route every gate by walking its first operand towards its second."""

    name = "naive"

    def __init__(self, time_budget: float = 60.0, verify: bool = True,
                 smart_initial_mapping: bool = False) -> None:
        super().__init__(time_budget=time_budget, verify=verify)
        self.smart_initial_mapping = smart_initial_mapping

    def _route(self, circuit: QuantumCircuit, architecture: Architecture,
               deadline: float) -> RoutingResult:
        if self.smart_initial_mapping:
            initial = greedy_interaction_mapping(circuit, architecture)
        else:
            initial = identity_mapping(circuit, architecture)
        builder = RoutedBuilder(circuit, architecture, initial)

        for gate in circuit:
            self.check_deadline(deadline)
            if not gate.is_two_qubit:
                builder.emit_gate(gate)
                continue
            builder.require_reachable(*gate.qubits)
            first, second = (builder.physical_of(q) for q in gate.qubits)
            if not architecture.are_adjacent(first, second):
                path = architecture.shortest_path(first, second)
                # Swap the first operand along the path until it neighbours
                # the second operand (stop one hop short of the target).
                for step in range(len(path) - 2):
                    builder.emit_swap(path[step], path[step + 1])
            builder.emit_gate(gate)
        return builder.result(self.name)
