"""Shared infrastructure for the baseline routers.

Every baseline transforms a logical circuit into a physical circuit by
maintaining a logical-to-physical map and inserting SWAPs.
:class:`RoutedBuilder` captures that pattern so each algorithm only has to
decide *which* swaps to insert; emission, mapping updates, swap counting, and
result assembly are shared.

The builder keeps the evolving map in two flat ``array('i')`` buffers --
logical->physical and its inverse -- so :meth:`RoutedBuilder.physical_of`
and :meth:`RoutedBuilder.logical_at` are O(1) array reads (the inverse used
to be an O(n) scan on every SWAP score).  Emitted gates stream straight into
the routed circuit's IR columns without boxing a ``Gate`` per emission.

On disconnected coupling graphs the builder *rejects* gates whose operands
sit in different components (:meth:`RoutedBuilder.require_reachable`) instead
of letting the heuristics score the unreachable-distance sentinel forever;
the error surfaces as an ERROR result through
:class:`~repro.api.BaseRouter`'s capture.

The deadline/verify/error-capture scaffolding formerly defined here now
lives in :mod:`repro.api.protocol` and is shared by *all* routers (the SATMAP
family included); ``Router`` and ``RoutingTimeout`` remain importable from
this module as deprecated aliases of :class:`repro.api.BaseRouter` and
:class:`repro.api.RoutingTimeout`.
"""

from __future__ import annotations

from repro.api.protocol import BaseRouter, RoutingTimeout  # noqa: F401 - shim
from repro.circuits.circuit import QuantumCircuit
from repro.circuits.gates import Gate
from repro.circuits.ir import SWAP_OP, CircuitIR
from repro.core.result import RoutingResult, RoutingStatus
from repro.hardware.architecture import Architecture

#: Deprecated alias: subclass :class:`repro.api.BaseRouter` instead.
Router = BaseRouter


class UnroutableGateError(ValueError):
    """A two-qubit gate's operands lie in different connectivity components."""


class RoutedBuilder:
    """Incrementally builds a physical circuit from an evolving mapping."""

    def __init__(self, circuit: QuantumCircuit, architecture: Architecture,
                 initial_mapping: dict[int, int]) -> None:
        self.original = circuit
        self.architecture = architecture
        self.initial_mapping = dict(initial_mapping)
        self.mapping = dict(initial_mapping)  # logical -> physical
        self.routed = QuantumCircuit(architecture.num_qubits,
                                     name=f"{circuit.name}@{architecture.name}")
        self.swap_count = 0
        # Flat views of the evolving map: phys_of[logical] and log_at[physical],
        # -1 for unmapped/empty.  Kept in lock-step with the ``mapping`` dict.
        size = max([circuit.num_qubits, *initial_mapping.keys()]) + 1 \
            if initial_mapping else circuit.num_qubits
        self.phys_of = [-1] * size
        self.log_at = [-1] * architecture.num_qubits
        for logical, physical in initial_mapping.items():
            self.phys_of[logical] = physical
            self.log_at[physical] = logical
        self._distances = architecture.flat_distance_lookup()
        self._unreachable = architecture.unreachable_distance
        self._num_physical = architecture.num_qubits
        self._routed_ir = self.routed._writable_ir()

    def physical_of(self, logical: int) -> int:
        return self.phys_of[logical]

    def logical_at(self, physical: int) -> int | None:
        logical = self.log_at[physical]
        return None if logical < 0 else logical

    def can_execute(self, gate: Gate) -> bool:
        """Whether a gate is executable under the current mapping."""
        if not gate.is_two_qubit:
            return True
        return self.can_execute_pair(gate.qubits[0], gate.qubits[1])

    def can_execute_pair(self, logical_a: int, logical_b: int) -> bool:
        """Whether two logical qubits currently sit on adjacent physical ones."""
        physical_a = self.phys_of[logical_a]
        physical_b = self.phys_of[logical_b]
        if physical_a < 0 or physical_b < 0:
            raise ValueError(
                f"logical qubit {logical_a if physical_a < 0 else logical_b} "
                f"is not in the initial mapping"
            )
        return (self._distances[physical_a * self._num_physical
                                + physical_b] == 1)

    def require_reachable(self, logical_a: int, logical_b: int) -> None:
        """Reject a gate whose operands cannot ever be brought together.

        On a disconnected coupling graph the distance matrix stores a finite
        sentinel for unreachable pairs; scoring it silently would make the
        heuristics chase an impossible gate forever.  Raising here turns the
        situation into an ERROR result with an explanatory note instead.
        Unmapped operands (a partial ``initial_mapping``) are rejected too,
        before their ``-1`` placeholder could wrap a distance lookup.
        """
        physical_a = self.phys_of[logical_a]
        physical_b = self.phys_of[logical_b]
        if physical_a < 0 or physical_b < 0:
            raise ValueError(
                f"logical qubit {logical_a if physical_a < 0 else logical_b} "
                f"is not in the initial mapping"
            )
        if (self._distances[physical_a * self._num_physical + physical_b]
                >= self._unreachable):
            raise UnroutableGateError(
                f"logical qubits {logical_a} and {logical_b} are mapped to "
                f"physical qubits {physical_a} and {physical_b}, which are "
                f"unreachable from each other on {self.architecture.name} "
                f"(disconnected coupling graph)"
            )

    def emit_gate(self, gate: Gate) -> None:
        """Emit an original gate at its current physical position."""
        self.emit_op(gate.name, gate.qubits, gate.params)

    def emit_op(self, name: str, qubits: tuple[int, ...],
                params: tuple[str, ...] = ()) -> None:
        """Emit a gate given as plain data at its current physical position."""
        phys_of = self.phys_of
        if len(qubits) == 2:
            physical = (phys_of[qubits[0]], phys_of[qubits[1]])
            if (physical[0] < 0 or physical[1] < 0
                    or self._distances[physical[0] * self._num_physical
                                       + physical[1]] != 1):
                raise ValueError(
                    f"gate {name} on logical {qubits} is not executable: "
                    f"physical {physical} are not adjacent"
                )
        else:
            physical = (phys_of[qubits[0]],)
            if physical[0] < 0:
                raise ValueError(f"logical qubit {qubits[0]} is unmapped")
        self._routed_ir.append(name, physical, params)

    def emit_index(self, ir: CircuitIR, index: int) -> None:
        """Emit gate ``index`` of ``ir`` without any name round-trip.

        The routers' execution loops use this: opcode, operands, and params
        move from the source columns to the routed columns directly.
        """
        absolute = ir.start + index
        phys_of = self.phys_of
        second = ir.qb[absolute]
        if second >= 0:
            physical = (phys_of[ir.qa[absolute]], phys_of[second])
            if (physical[0] < 0 or physical[1] < 0
                    or self._distances[physical[0] * self._num_physical
                                       + physical[1]] != 1):
                raise ValueError(
                    f"gate #{index} on logical ({ir.qa[absolute]}, {second}) "
                    f"is not executable: physical {physical} are not adjacent"
                )
        else:
            physical = (phys_of[ir.qa[absolute]],)
            if physical[0] < 0:
                raise ValueError(
                    f"logical qubit {ir.qa[absolute]} is unmapped")
        self._routed_ir.append_coded(ir.op[absolute], physical,
                                     ir.params.get(absolute, ()))

    def emit_swap(self, physical_a: int, physical_b: int) -> None:
        """Insert a SWAP on a physical edge and update the mapping."""
        if not self.architecture.are_adjacent(physical_a, physical_b):
            raise ValueError(f"({physical_a}, {physical_b}) is not an edge")
        log_at = self.log_at
        logical_a = log_at[physical_a]
        logical_b = log_at[physical_b]
        if logical_a >= 0:
            self.phys_of[logical_a] = physical_b
            self.mapping[logical_a] = physical_b
        if logical_b >= 0:
            self.phys_of[logical_b] = physical_a
            self.mapping[logical_b] = physical_a
        log_at[physical_a] = logical_b
        log_at[physical_b] = logical_a
        self._routed_ir.append_coded(SWAP_OP, (physical_a, physical_b))
        self.swap_count += 1

    def result(self, router_name: str, optimal: bool = False,
               status: RoutingStatus = RoutingStatus.FEASIBLE,
               **extra) -> RoutingResult:
        return RoutingResult(
            status=status,
            router_name=router_name,
            circuit_name=self.original.name,
            initial_mapping=self.initial_mapping,
            final_mapping=dict(self.mapping),
            routed_circuit=self.routed,
            swap_count=self.swap_count,
            optimal=optimal,
            **extra,
        )


def identity_mapping(circuit: QuantumCircuit, architecture: Architecture) -> dict[int, int]:
    """The trivial mapping: logical qubit ``i`` on physical qubit ``i``."""
    if circuit.num_qubits > architecture.num_qubits:
        raise ValueError("circuit has more qubits than the architecture")
    return {logical: logical for logical in range(circuit.num_qubits)}


def interaction_counts(circuit: QuantumCircuit) -> dict[tuple[int, int], int]:
    """How many times each (unordered) logical qubit pair interacts."""
    counts: dict[tuple[int, int], int] = {}
    for first, second in circuit.interaction_sequence():
        key = (first, second) if first < second else (second, first)
        counts[key] = counts.get(key, 0) + 1
    return counts


def greedy_interaction_mapping(circuit: QuantumCircuit,
                               architecture: Architecture) -> dict[int, int]:
    """Initial map placing strongly-interacting logical qubits on well-connected
    physical qubits.

    Logical qubits are ordered by total interaction weight; each is placed on
    the free physical qubit that minimises the distance-weighted cost to the
    already-placed qubits it interacts with (ties broken by degree).  This is
    the style of graph placement tket's default pass uses.
    """
    counts = interaction_counts(circuit)
    weight_of: dict[int, int] = {q: 0 for q in range(circuit.num_qubits)}
    partners: dict[int, dict[int, int]] = {q: {} for q in range(circuit.num_qubits)}
    for (first, second), count in counts.items():
        weight_of[first] += count
        weight_of[second] += count
        partners[first][second] = count
        partners[second][first] = count

    order = sorted(range(circuit.num_qubits), key=lambda q: -weight_of[q])
    distance = architecture.flat_distance_matrix()
    num_physical = architecture.num_qubits
    mapping: dict[int, int] = {}
    free = set(range(architecture.num_qubits))
    for logical in order:
        best_physical = None
        best_cost = None
        placed = [(count, mapping[partner])
                  for partner, count in partners[logical].items()
                  if partner in mapping]
        for physical in sorted(free):
            row = physical * num_physical
            cost = 0.0
            for count, partner_physical in placed:
                cost += count * distance[row + partner_physical]
            cost -= 0.001 * architecture.degree(physical)
            if best_cost is None or cost < best_cost:
                best_cost = cost
                best_physical = physical
        assert best_physical is not None
        mapping[logical] = best_physical
        free.discard(best_physical)
    return mapping
