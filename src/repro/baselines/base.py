"""Shared infrastructure for the baseline routers.

Every baseline transforms a logical circuit into a physical circuit by
maintaining a logical-to-physical map and inserting SWAPs.
:class:`RoutedBuilder` captures that pattern so each algorithm only has to
decide *which* swaps to insert; emission, mapping updates, swap counting, and
result assembly are shared.

The deadline/verify/error-capture scaffolding formerly defined here now
lives in :mod:`repro.api.protocol` and is shared by *all* routers (the SATMAP
family included); ``Router`` and ``RoutingTimeout`` remain importable from
this module as deprecated aliases of :class:`repro.api.BaseRouter` and
:class:`repro.api.RoutingTimeout`.
"""

from __future__ import annotations

from repro.api.protocol import BaseRouter, RoutingTimeout  # noqa: F401 - shim
from repro.circuits.circuit import QuantumCircuit
from repro.circuits.gates import Gate
from repro.core.result import RoutingResult, RoutingStatus
from repro.hardware.architecture import Architecture

#: Deprecated alias: subclass :class:`repro.api.BaseRouter` instead.
Router = BaseRouter


class RoutedBuilder:
    """Incrementally builds a physical circuit from an evolving mapping."""

    def __init__(self, circuit: QuantumCircuit, architecture: Architecture,
                 initial_mapping: dict[int, int]) -> None:
        self.original = circuit
        self.architecture = architecture
        self.initial_mapping = dict(initial_mapping)
        self.mapping = dict(initial_mapping)  # logical -> physical
        self.routed = QuantumCircuit(architecture.num_qubits,
                                     name=f"{circuit.name}@{architecture.name}")
        self.swap_count = 0

    def physical_of(self, logical: int) -> int:
        return self.mapping[logical]

    def logical_at(self, physical: int) -> int | None:
        for logical, position in self.mapping.items():
            if position == physical:
                return logical
        return None

    def can_execute(self, gate: Gate) -> bool:
        """Whether a gate is executable under the current mapping."""
        if not gate.is_two_qubit:
            return True
        first, second = (self.mapping[q] for q in gate.qubits)
        return self.architecture.are_adjacent(first, second)

    def emit_gate(self, gate: Gate) -> None:
        """Emit an original gate at its current physical position."""
        physical = tuple(self.mapping[q] for q in gate.qubits)
        if gate.is_two_qubit and not self.architecture.are_adjacent(*physical):
            raise ValueError(
                f"gate {gate.name} on logical {gate.qubits} is not executable: "
                f"physical {physical} are not adjacent"
            )
        self.routed.append(Gate(gate.name, physical, gate.params))

    def emit_swap(self, physical_a: int, physical_b: int) -> None:
        """Insert a SWAP on a physical edge and update the mapping."""
        if not self.architecture.are_adjacent(physical_a, physical_b):
            raise ValueError(f"({physical_a}, {physical_b}) is not an edge")
        logical_a = self.logical_at(physical_a)
        logical_b = self.logical_at(physical_b)
        if logical_a is not None:
            self.mapping[logical_a] = physical_b
        if logical_b is not None:
            self.mapping[logical_b] = physical_a
        self.routed.append(Gate("swap", (physical_a, physical_b)))
        self.swap_count += 1

    def result(self, router_name: str, optimal: bool = False,
               status: RoutingStatus = RoutingStatus.FEASIBLE,
               **extra) -> RoutingResult:
        return RoutingResult(
            status=status,
            router_name=router_name,
            circuit_name=self.original.name,
            initial_mapping=self.initial_mapping,
            final_mapping=dict(self.mapping),
            routed_circuit=self.routed,
            swap_count=self.swap_count,
            optimal=optimal,
            **extra,
        )


def identity_mapping(circuit: QuantumCircuit, architecture: Architecture) -> dict[int, int]:
    """The trivial mapping: logical qubit ``i`` on physical qubit ``i``."""
    if circuit.num_qubits > architecture.num_qubits:
        raise ValueError("circuit has more qubits than the architecture")
    return {logical: logical for logical in range(circuit.num_qubits)}


def interaction_counts(circuit: QuantumCircuit) -> dict[tuple[int, int], int]:
    """How many times each (unordered) logical qubit pair interacts."""
    counts: dict[tuple[int, int], int] = {}
    for first, second in circuit.interaction_sequence():
        key = (min(first, second), max(first, second))
        counts[key] = counts.get(key, 0) + 1
    return counts


def greedy_interaction_mapping(circuit: QuantumCircuit,
                               architecture: Architecture) -> dict[int, int]:
    """Initial map placing strongly-interacting logical qubits on well-connected
    physical qubits.

    Logical qubits are ordered by total interaction weight; each is placed on
    the free physical qubit that minimises the distance-weighted cost to the
    already-placed qubits it interacts with (ties broken by degree).  This is
    the style of graph placement tket's default pass uses.
    """
    counts = interaction_counts(circuit)
    weight_of: dict[int, int] = {q: 0 for q in range(circuit.num_qubits)}
    partners: dict[int, dict[int, int]] = {q: {} for q in range(circuit.num_qubits)}
    for (first, second), count in counts.items():
        weight_of[first] += count
        weight_of[second] += count
        partners[first][second] = count
        partners[second][first] = count

    order = sorted(range(circuit.num_qubits), key=lambda q: -weight_of[q])
    distance = architecture.distance_matrix()
    mapping: dict[int, int] = {}
    free = set(range(architecture.num_qubits))
    for logical in order:
        best_physical = None
        best_cost = None
        for physical in sorted(free):
            cost = 0.0
            for partner, count in partners[logical].items():
                if partner in mapping:
                    cost += count * distance[physical][mapping[partner]]
            cost -= 0.001 * architecture.degree(physical)
            if best_cost is None or cost < best_cost:
                best_cost = cost
                best_physical = physical
        assert best_physical is not None
        mapping[logical] = best_physical
        free.discard(best_physical)
    return mapping
