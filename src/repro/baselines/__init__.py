"""Baseline mapping-and-routing algorithms the paper compares against.

Heuristic baselines (Q2):

* :class:`repro.baselines.sabre.SabreRouter` -- SABRE (Li, Ding, Xie,
  ASPLOS 2019): bidirectional passes for the initial map, lookahead-scored
  SWAP selection for routing.
* :class:`repro.baselines.tket_like.TketLikeRouter` -- a tket-style router:
  greedy graph placement for the initial map, windowed distance scoring for
  routing.
* :class:`repro.baselines.astar.AStarLayerRouter` -- an MQT-style A* mapper
  that optimises the SWAP sequence between consecutive topological layers.

Constraint-based baselines (Q1):

* :class:`repro.baselines.olsq.OlsqStyleRouter` -- a TB-OLSQ-style SAT model
  solved by iterative deepening on the SWAP count.
* :class:`repro.baselines.exact_mqt.ExhaustiveOptimalRouter` -- an EX-MQT-style
  exact search over the joint (gate index, mapping) state space.

Additional baselines:

* :class:`repro.baselines.trivial.NaiveShortestPathRouter` -- the no-lookahead
  shortest-path router, an interpretability anchor for cost ratios.
* :class:`repro.baselines.bmt_like.BmtLikeRouter` -- an Enfield/BMT-style
  router combining subgraph isomorphism with approximate token swapping.

All baselines implement the same :class:`repro.baselines.base.Router`
interface and return :class:`repro.core.result.RoutingResult`.
"""

from repro.baselines.base import Router, RoutedBuilder
from repro.baselines.sabre import SabreRouter
from repro.baselines.tket_like import TketLikeRouter
from repro.baselines.astar import AStarLayerRouter
from repro.baselines.olsq import OlsqStyleRouter
from repro.baselines.exact_mqt import ExhaustiveOptimalRouter
from repro.baselines.trivial import NaiveShortestPathRouter
from repro.baselines.bmt_like import BmtLikeRouter, embeds_without_swaps
from repro.baselines.token_swapping import (
    approximate_token_swapping,
    swap_distance_lower_bound,
)

__all__ = [
    "Router",
    "RoutedBuilder",
    "SabreRouter",
    "TketLikeRouter",
    "AStarLayerRouter",
    "OlsqStyleRouter",
    "ExhaustiveOptimalRouter",
    "NaiveShortestPathRouter",
    "BmtLikeRouter",
    "embeds_without_swaps",
    "approximate_token_swapping",
    "swap_distance_lower_bound",
]
