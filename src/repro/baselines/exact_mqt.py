"""EX-MQT-style exact optimal routing via uniform-cost search.

The "exact" tool of the MQT suite (Wille, Burgholzer, Zulehner, DAC 2019)
computes a provably minimal number of SWAPs by exhaustively exploring the
space of mappings.  This module reproduces that behaviour with a uniform-cost
(Dijkstra) search over the joint state ``(next gate index, partial placement
of the logical qubits used so far)``:

* advancing past a two-qubit gate is free when its qubits are adjacent;
* placing a so-far-unplaced logical qubit on any free physical qubit is free
  (the initial mapping is chosen lazily, which is exactly the freedom the QMR
  problem gives);
* swapping two adjacent physical qubits costs 1.

The search is optimal but explores an exponential state space, so it only
completes on small circuits -- the same scaling wall the paper reports for
EX-MQT (largest circuit solved: 23 two-qubit gates).  A node-expansion cap and
the deadline turn larger instances into TIMEOUT results instead of hangs.
"""

from __future__ import annotations

import heapq
import itertools

from repro.baselines.base import RoutedBuilder, Router
from repro.circuits.circuit import QuantumCircuit
from repro.core.extraction import complete_mapping
from repro.core.result import RoutingResult, RoutingStatus
from repro.hardware.architecture import Architecture


class ExhaustiveOptimalRouter(Router):
    """Provably optimal QMR by exhaustive search (EX-MQT stand-in)."""

    name = "EX-MQT-like"

    def __init__(self, time_budget: float = 60.0, expansion_limit: int = 2_000_000,
                 verify: bool = True) -> None:
        super().__init__(time_budget=time_budget, verify=verify)
        self.expansion_limit = expansion_limit

    def _route(self, circuit: QuantumCircuit, architecture: Architecture,
               deadline: float) -> RoutingResult:
        interactions = circuit.interaction_sequence()
        plan = self._search(interactions, circuit.num_qubits, architecture, deadline)
        if plan is None:
            return RoutingResult(status=RoutingStatus.TIMEOUT, router_name=self.name,
                                 circuit_name=circuit.name,
                                 notes="expansion limit reached")
        initial_mapping, swaps_before_gate, total_swaps = plan
        builder = RoutedBuilder(circuit, architecture, initial_mapping)
        two_qubit_index = 0
        for gate in circuit.gates:
            if gate.is_two_qubit:
                for edge in swaps_before_gate.get(two_qubit_index, []):
                    builder.emit_swap(*edge)
                two_qubit_index += 1
            builder.emit_gate(gate)
        result = builder.result(self.name, optimal=True, status=RoutingStatus.OPTIMAL)
        return result

    # ------------------------------------------------------------ the search

    def _search(self, interactions: list[tuple[int, int]], num_logical: int,
                architecture: Architecture, deadline: float):
        """Uniform-cost search; returns (initial map, swaps per gate, cost) or None."""
        if not interactions:
            mapping = complete_mapping({}, num_logical, architecture.num_qubits)
            return mapping, {}, 0

        counter = itertools.count()
        # State: (gate_index, placement) where placement is a sorted tuple of
        # (logical, physical) pairs for the qubits placed so far.
        start_state = (0, ())
        frontier = [(0, next(counter), start_state, [])]
        best_cost: dict[tuple, int] = {start_state: 0}
        expansions = 0

        while frontier:
            if expansions % 512 == 0:
                self.check_deadline(deadline)
            cost, _, state, history = heapq.heappop(frontier)
            if cost > best_cost.get(state, float("inf")):
                continue
            expansions += 1
            if expansions > self.expansion_limit:
                return None
            gate_index, placement = state
            if gate_index == len(interactions):
                return self._reconstruct(history, placement, num_logical,
                                         architecture, cost)
            placed = dict(placement)
            first, second = interactions[gate_index]

            # Lazily place any unplaced operand of the current gate.
            unplaced = [q for q in (first, second) if q not in placed]
            if unplaced:
                logical = unplaced[0]
                occupied = set(placed.values())
                for physical in range(architecture.num_qubits):
                    if physical in occupied:
                        continue
                    new_placed = dict(placed)
                    new_placed[logical] = physical
                    new_state = (gate_index, tuple(sorted(new_placed.items())))
                    if cost < best_cost.get(new_state, float("inf")):
                        best_cost[new_state] = cost
                        heapq.heappush(frontier, (cost, next(counter), new_state,
                                                  history + [("place", logical, physical)]))
                continue

            # Execute the gate if possible.
            if architecture.are_adjacent(placed[first], placed[second]):
                new_state = (gate_index + 1, placement)
                if cost < best_cost.get(new_state, float("inf")):
                    best_cost[new_state] = cost
                    heapq.heappush(frontier, (cost, next(counter), new_state,
                                              history + [("gate", gate_index)]))
                continue

            # Otherwise insert one SWAP on any edge touching a placed qubit.
            occupied_physical = set(placed.values())
            for edge in architecture.edges:
                if edge[0] not in occupied_physical and edge[1] not in occupied_physical:
                    continue
                new_placed = dict(placed)
                for logical, physical in placed.items():
                    if physical == edge[0]:
                        new_placed[logical] = edge[1]
                    elif physical == edge[1]:
                        new_placed[logical] = edge[0]
                new_state = (gate_index, tuple(sorted(new_placed.items())))
                new_cost = cost + 1
                if new_cost < best_cost.get(new_state, float("inf")):
                    best_cost[new_state] = new_cost
                    heapq.heappush(frontier, (new_cost, next(counter), new_state,
                                              history + [("swap", edge, gate_index)]))
        return None

    def _reconstruct(self, history, placement, num_logical: int,
                     architecture: Architecture, cost: int):
        """Replay the action history to recover the initial map and swap plan.

        A logical qubit may be placed *after* some SWAPs have already been
        emitted; its initial position is then the preimage of its placement
        position under the permutation those SWAPs induce, so that when the
        real circuit executes the same SWAPs the qubit arrives exactly where
        the search assumed it to be.
        """
        initial: dict[int, int] = {}
        swaps_before_gate: dict[int, list[tuple[int, int]]] = {}
        # inverse[p] = the physical qubit whose initial content is currently at p.
        inverse = {physical: physical for physical in range(architecture.num_qubits)}
        for action in history:
            if action[0] == "place":
                _, logical, physical = action
                initial[logical] = inverse[physical]
            elif action[0] == "swap":
                _, edge, gate_index = action
                swaps_before_gate.setdefault(gate_index, []).append(edge)
                inverse[edge[0]], inverse[edge[1]] = inverse[edge[1]], inverse[edge[0]]
        initial = complete_mapping(initial, num_logical, architecture.num_qubits)
        return initial, swaps_before_gate, cost
