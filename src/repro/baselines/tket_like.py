"""A tket-style router: graph placement plus windowed greedy swap selection.

The tket compiler (Cowtan et al., "On the qubit routing problem", 2019) pairs
a graph-placement initial map with a routing pass that, at each timestep,
greedily chooses the swap that most improves a distance-based score over the
current slice of blocked gates and a lookahead window of upcoming gates.  This
module reimplements that strategy at the level of detail the paper's
comparison needs: the scoring window, the greedy argmin choice, and the
absence of SABRE's decay/bidirectional machinery are what differentiate its
behaviour (and its failure mode on highly-connected graphs, Q4).
"""

from __future__ import annotations

from repro.baselines.base import RoutedBuilder, Router, greedy_interaction_mapping
from repro.circuits.circuit import QuantumCircuit
from repro.circuits.dag import CircuitDag
from repro.core.result import RoutingResult, RoutingStatus
from repro.hardware.architecture import Architecture


class TketLikeRouter(Router):
    """Greedy, window-scored router in the style of tket's default pass."""

    name = "TKET-like"

    def __init__(self, time_budget: float = 60.0, window_size: int = 15,
                 window_discount: float = 0.7, verify: bool = True) -> None:
        super().__init__(time_budget=time_budget, verify=verify)
        if not 0.0 < window_discount <= 1.0:
            raise ValueError("window_discount must be in (0, 1]")
        self.window_size = window_size
        self.window_discount = window_discount

    def _route(self, circuit: QuantumCircuit, architecture: Architecture,
               deadline: float) -> RoutingResult:
        mapping = greedy_interaction_mapping(circuit, architecture)
        dag = CircuitDag(circuit)
        builder = RoutedBuilder(circuit, architecture, mapping)
        distance = architecture.distance_matrix()
        executed: set[int] = set()
        front = {node.index for node in dag.front_layer(executed)}
        stuck_rounds = 0

        while front:
            self.check_deadline(deadline)
            progressed = False
            for index in sorted(front):
                node = dag.nodes[index]
                if builder.can_execute(node.gate):
                    builder.emit_gate(node.gate)
                    executed.add(index)
                    front.discard(index)
                    for successor in node.successors:
                        if dag.nodes[successor].predecessors.issubset(executed):
                            front.add(successor)
                    progressed = True
            if progressed:
                stuck_rounds = 0
                continue

            blocked = [dag.nodes[index].gate for index in sorted(front)
                       if dag.nodes[index].gate.is_two_qubit]
            window = self._window(dag, front, executed)

            stuck_rounds += 1
            if stuck_rounds > 4 * architecture.num_qubits:
                gate = blocked[0]
                path = architecture.shortest_path(builder.physical_of(gate.qubits[0]),
                                                  builder.physical_of(gate.qubits[1]))
                builder.emit_swap(path[0], path[1])
                stuck_rounds = 0
                continue

            best_swap = None
            best_score = None
            for edge in self._candidate_edges(blocked, builder):
                score = self._score(edge, blocked, window, builder, distance)
                if best_score is None or score < best_score:
                    best_score = score
                    best_swap = edge
            assert best_swap is not None
            builder.emit_swap(*best_swap)

        return builder.result(self.name, status=RoutingStatus.FEASIBLE)

    def _window(self, dag: CircuitDag, front: set[int], executed: set[int]) -> list:
        """The next ``window_size`` two-qubit gates in topological order."""
        window = []
        queue = sorted(front)
        seen = set(queue)
        position = 0
        while position < len(queue) and len(window) < self.window_size:
            node = dag.nodes[queue[position]]
            position += 1
            for successor in sorted(node.successors):
                if successor in seen or successor in executed:
                    continue
                seen.add(successor)
                queue.append(successor)
                gate = dag.nodes[successor].gate
                if gate.is_two_qubit:
                    window.append(gate)
        return window

    def _candidate_edges(self, blocked, builder: RoutedBuilder) -> list[tuple[int, int]]:
        involved = {builder.physical_of(q) for gate in blocked for q in gate.qubits}
        candidates = set()
        for physical in involved:
            for neighbor in builder.architecture.neighbors(physical):
                candidates.add((min(physical, neighbor), max(physical, neighbor)))
        return sorted(candidates)

    def _score(self, edge: tuple[int, int], blocked, window,
               builder: RoutedBuilder, distance) -> float:
        trial = dict(builder.mapping)
        logical_a = builder.logical_at(edge[0])
        logical_b = builder.logical_at(edge[1])
        if logical_a is not None:
            trial[logical_a] = edge[1]
        if logical_b is not None:
            trial[logical_b] = edge[0]
        score = float(sum(distance[trial[g.qubits[0]]][trial[g.qubits[1]]]
                          for g in blocked))
        discount = self.window_discount
        for gate in window:
            score += discount * distance[trial[gate.qubits[0]]][trial[gate.qubits[1]]]
            discount *= self.window_discount
        return score
