"""A tket-style router: graph placement plus windowed greedy swap selection.

The tket compiler (Cowtan et al., "On the qubit routing problem", 2019) pairs
a graph-placement initial map with a routing pass that, at each timestep,
greedily chooses the swap that most improves a distance-based score over the
current slice of blocked gates and a lookahead window of upcoming gates.  This
module reimplements that strategy at the level of detail the paper's
comparison needs: the scoring window, the greedy argmin choice, and the
absence of SABRE's decay/bidirectional machinery are what differentiate its
behaviour (and its failure mode on highly-connected graphs, Q4).

Like SABRE, the routing loop runs on the flat structures: CSR successor
arrays with remaining-predecessor counters for the front layer, the flat
distance matrix for scoring, and two-entry special-casing instead of a
mapping copy per candidate swap.
"""

from __future__ import annotations

from repro.baselines.base import RoutedBuilder, Router, greedy_interaction_mapping
from repro.circuits.circuit import QuantumCircuit
from repro.circuits.dag import CircuitDag
from repro.core.result import RoutingResult, RoutingStatus
from repro.hardware.architecture import Architecture


class TketLikeRouter(Router):
    """Greedy, window-scored router in the style of tket's default pass."""

    name = "TKET-like"

    def __init__(self, time_budget: float = 60.0, window_size: int = 15,
                 window_discount: float = 0.7, verify: bool = True) -> None:
        super().__init__(time_budget=time_budget, verify=verify)
        if not 0.0 < window_discount <= 1.0:
            raise ValueError("window_discount must be in (0, 1]")
        self.window_size = window_size
        self.window_discount = window_discount

    def _route(self, circuit: QuantumCircuit, architecture: Architecture,
               deadline: float) -> RoutingResult:
        mapping = greedy_interaction_mapping(circuit, architecture)
        dag = CircuitDag(circuit)
        builder = RoutedBuilder(circuit, architecture, mapping)
        ir = circuit.ir
        qa, qb, offset = ir.qa, ir.qb, ir.start
        distance = architecture.flat_distance_lookup()
        num_physical = architecture.num_qubits
        succ0, succ1 = dag.succ0, dag.succ1
        remaining = dag.indegrees()
        done = bytearray(len(dag))
        phys_of, log_at = builder.phys_of, builder.log_at
        front: set[int] = set(dag.initial_front())
        stuck_rounds = 0

        while front:
            self.check_deadline(deadline)
            progressed = False
            for index in sorted(front):
                a = qa[offset + index]
                b = qb[offset + index]
                if b < 0 or distance[phys_of[a] * num_physical + phys_of[b]] == 1:
                    builder.emit_index(ir, index)
                    done[index] = 1
                    front.discard(index)
                    successor = succ0[index]
                    if successor >= 0:
                        remaining[successor] -= 1
                        if remaining[successor] == 0:
                            front.add(successor)
                        successor = succ1[index]
                        if successor >= 0:
                            remaining[successor] -= 1
                            if remaining[successor] == 0:
                                front.add(successor)
                    progressed = True
            if progressed:
                stuck_rounds = 0
                continue

            blocked = [(qa[offset + index], qb[offset + index])
                       for index in sorted(front) if qb[offset + index] >= 0]
            for logical_a, logical_b in blocked:
                builder.require_reachable(logical_a, logical_b)
            window = self._window(dag, front, done, qa, qb, offset)

            stuck_rounds += 1
            if stuck_rounds > 4 * num_physical:
                logical_a, logical_b = blocked[0]
                path = architecture.shortest_path(phys_of[logical_a],
                                                  phys_of[logical_b])
                builder.emit_swap(path[0], path[1])
                stuck_rounds = 0
                continue

            best_swap = None
            best_score = None
            window_discount = self.window_discount
            for edge in self._candidate_edges(blocked, builder):
                swap_a, swap_b = edge
                logical_a = log_at[swap_a]
                logical_b = log_at[swap_b]
                score = 0
                for first, second in blocked:
                    if first == logical_a:
                        pa = swap_b
                    elif first == logical_b:
                        pa = swap_a
                    else:
                        pa = phys_of[first]
                    if second == logical_a:
                        pb = swap_b
                    elif second == logical_b:
                        pb = swap_a
                    else:
                        pb = phys_of[second]
                    score += distance[pa * num_physical + pb]
                score = float(score)
                discount = window_discount
                for first, second in window:
                    if first == logical_a:
                        pa = swap_b
                    elif first == logical_b:
                        pa = swap_a
                    else:
                        pa = phys_of[first]
                    if second == logical_a:
                        pb = swap_b
                    elif second == logical_b:
                        pb = swap_a
                    else:
                        pb = phys_of[second]
                    score += discount * distance[pa * num_physical + pb]
                    discount *= window_discount
                if best_score is None or score < best_score:
                    best_score = score
                    best_swap = edge
            assert best_swap is not None
            builder.emit_swap(*best_swap)

        return builder.result(self.name, status=RoutingStatus.FEASIBLE)

    def _window(self, dag: CircuitDag, front: set[int], done: bytearray,
                qa, qb, offset: int) -> list[tuple[int, int]]:
        """The next ``window_size`` two-qubit gates in topological order."""
        window: list[tuple[int, int]] = []
        queue = sorted(front)
        seen = set(queue)
        succ0, succ1 = dag.succ0, dag.succ1
        position = 0
        window_size = self.window_size
        while position < len(queue) and len(window) < window_size:
            node = queue[position]
            position += 1
            for successor in (succ0[node], succ1[node]):
                if successor < 0 or successor in seen or done[successor]:
                    continue
                seen.add(successor)
                queue.append(successor)
                b = qb[offset + successor]
                if b >= 0:
                    window.append((qa[offset + successor], b))
        return window

    def _candidate_edges(self, blocked, builder: RoutedBuilder) -> list[tuple[int, int]]:
        phys_of = builder.phys_of
        involved = set()
        for logical_a, logical_b in blocked:
            involved.add(phys_of[logical_a])
            involved.add(phys_of[logical_b])
        candidates = set()
        architecture = builder.architecture
        for physical in involved:
            for neighbor in architecture.neighbors_sorted(physical):
                candidates.add((physical, neighbor) if physical < neighbor
                               else (neighbor, physical))
        return sorted(candidates)
