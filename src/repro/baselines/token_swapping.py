"""Approximate token swapping on a connectivity graph.

Token swapping asks for a shortest sequence of SWAPs (each along an edge)
that transforms one placement of labelled tokens into another.  It is the
routing sub-problem of the BMT/Enfield family of mappers the paper cites
(Siraichi et al., "Qubit allocation as a combination of subgraph isomorphism
and token swapping"), and it is also how a router can move between two
arbitrary complete mappings -- for example between the final map of one
circuit region and the initial map of the next.

:func:`approximate_token_swapping` runs in two phases.  The *greedy* phase
repeatedly applies the edge swap with the largest strictly positive decrease
in total token-to-destination distance; it terminates because the total
distance is a strictly decreasing non-negative integer.  If tokens remain
misplaced when no improving swap exists (a deadlock), the *completion* phase
finishes deterministically on a BFS spanning tree: leaves of the remaining
subtree are satisfied one at a time by walking their destined token to them
along the unique tree path, then removed.  The combination is not optimal --
token swapping is NP-hard -- but it always terminates with a correct swap
sequence and matches the greedy quality of the routers that use it.
"""

from __future__ import annotations

from collections import deque

from repro.hardware.architecture import Architecture


def approximate_token_swapping(architecture: Architecture,
                               current: dict[int, int],
                               target: dict[int, int]) -> list[tuple[int, int]]:
    """Swaps (as physical-qubit pairs) turning ``current`` into ``target``.

    ``current`` and ``target`` map logical qubits (tokens) to physical qubits;
    they must place the same logical qubits.  Physical qubits not holding any
    token are treated as empty and may be moved through freely.
    """
    if set(current) != set(target):
        raise ValueError("current and target mappings must place the same logical qubits")
    _check_injective(current, architecture)
    _check_injective(target, architecture)

    distance = architecture.flat_distance_matrix()
    num_physical = architecture.num_qubits
    position = dict(current)                      # logical -> physical
    occupant = {p: q for q, p in position.items()}  # physical -> logical
    destination = dict(target)
    swaps: list[tuple[int, int]] = []

    def token_distance(logical: int) -> int:
        return distance[position[logical] * num_physical + destination[logical]]

    def total_distance() -> int:
        return sum(token_distance(logical) for logical in position)

    def apply_swap(first: int, second: int) -> None:
        logical_first = occupant.get(first)
        logical_second = occupant.get(second)
        if logical_first is not None:
            position[logical_first] = second
        if logical_second is not None:
            position[logical_second] = first
        occupant.pop(first, None)
        occupant.pop(second, None)
        if logical_first is not None:
            occupant[second] = logical_first
        if logical_second is not None:
            occupant[first] = logical_second
        swaps.append((first, second))

    # Greedy phase: the total distance strictly decreases at every step, so
    # this loop terminates.
    while total_distance() > 0:
        best_swap = None
        best_gain = 0
        for first, second in architecture.edges:
            gain = _swap_gain(first, second, occupant, destination, distance,
                              num_physical)
            if gain > best_gain:
                best_gain = gain
                best_swap = (first, second)
        if best_swap is None:
            break
        apply_swap(*best_swap)

    if total_distance() > 0:
        _complete_on_spanning_tree(architecture, position, occupant, destination,
                                   apply_swap)
    return swaps


def _complete_on_spanning_tree(architecture: Architecture,
                               position: dict[int, int],
                               occupant: dict[int, int],
                               destination: dict[int, int],
                               apply_swap) -> None:
    """Deterministic fallback: satisfy leaves of a BFS spanning tree one by one.

    The partial placement is first extended to a full permutation by giving
    every empty vertex a *dummy* token and assigning the dummies to the
    destinations no real token wants (nearest first).  Every vertex then has
    exactly one destined token, so each leaf of the remaining subtree can be
    satisfied by walking its token to it along the unique tree path and sealed
    off; walks never re-enter sealed vertices, so each iteration makes
    permanent progress and the procedure terminates.
    """
    tree = _bfs_spanning_tree(architecture)
    distance = architecture.flat_distance_matrix()
    num_physical = architecture.num_qubits
    remaining: set[int] = set(range(architecture.num_qubits))

    # Extend to a full permutation with dummy tokens (negative ids).  The
    # shared position/occupant dictionaries are extended in place so the
    # caller's ``apply_swap`` keeps tracking the dummies too; the destination
    # map is copied because the caller must not see dummy destinations.
    destination = dict(destination)
    free_destinations = [vertex for vertex in range(architecture.num_qubits)
                         if vertex not in set(destination.values())]
    next_dummy = -1
    for vertex in range(architecture.num_qubits):
        if vertex not in occupant:
            position[next_dummy] = vertex
            occupant[vertex] = next_dummy
            next_dummy -= 1
    for dummy in sorted((token for token in position if token < 0), reverse=True):
        home = position[dummy]
        free_destinations.sort(key=lambda vertex: distance[home * num_physical + vertex])
        destination[dummy] = free_destinations.pop(0)
    wants = {physical: logical for logical, physical in destination.items()}

    def remaining_degree(vertex: int) -> int:
        return sum(1 for neighbor in tree[vertex] if neighbor in remaining)

    def tree_path(source: int, target_vertex: int) -> list[int]:
        parent = {source: source}
        queue = deque([source])
        while queue:
            vertex = queue.popleft()
            if vertex == target_vertex:
                break
            for neighbor in tree[vertex]:
                if neighbor in remaining and neighbor not in parent:
                    parent[neighbor] = vertex
                    queue.append(neighbor)
        path = [target_vertex]
        while path[-1] != source:
            path.append(parent[path[-1]])
        return list(reversed(path))

    while len(remaining) > 1:
        leaf = next(vertex for vertex in sorted(remaining) if remaining_degree(vertex) <= 1)
        destined = wants[leaf]
        if position[destined] != leaf:
            path = tree_path(position[destined], leaf)
            for step in range(len(path) - 1):
                apply_swap(path[step], path[step + 1])
        remaining.discard(leaf)

    # Drop the dummy bookkeeping so the caller's view matches its own tokens.
    for token in [token for token in position if token < 0]:
        occupant.pop(position[token], None)
        del position[token]


def _bfs_spanning_tree(architecture: Architecture) -> dict[int, set[int]]:
    """Adjacency of a BFS spanning tree rooted at physical qubit 0."""
    tree: dict[int, set[int]] = {vertex: set() for vertex in range(architecture.num_qubits)}
    visited = {0}
    queue = deque([0])
    while queue:
        vertex = queue.popleft()
        for neighbor in architecture.neighbors_sorted(vertex):
            if neighbor not in visited:
                visited.add(neighbor)
                tree[vertex].add(neighbor)
                tree[neighbor].add(vertex)
                queue.append(neighbor)
    if len(visited) != architecture.num_qubits:
        raise RuntimeError("token swapping requires a connected architecture")
    return tree


def _swap_gain(first: int, second: int, occupant: dict[int, int],
               destination: dict[int, int], distance,
               num_physical: int) -> int:
    """Total decrease in token-to-destination distance if (first, second) swap."""
    gain = 0
    logical_first = occupant.get(first)
    logical_second = occupant.get(second)
    if logical_first is None and logical_second is None:
        return 0
    if logical_first is not None:
        home = destination[logical_first]
        gain += (distance[first * num_physical + home]
                 - distance[second * num_physical + home])
    if logical_second is not None:
        home = destination[logical_second]
        gain += (distance[second * num_physical + home]
                 - distance[first * num_physical + home])
    return gain


def swap_distance_lower_bound(architecture: Architecture,
                              current: dict[int, int],
                              target: dict[int, int]) -> int:
    """A simple lower bound on the number of swaps needed: ceil(sum dist / 2).

    Each swap reduces the total token-to-destination distance by at most two,
    so half the total distance (rounded up) is a valid lower bound.  Useful
    for sanity-checking the approximation and for A*-style heuristics.
    """
    if set(current) != set(target):
        raise ValueError("current and target mappings must place the same logical qubits")
    distance = architecture.flat_distance_matrix()
    num_physical = architecture.num_qubits
    total = sum(distance[current[logical] * num_physical + target[logical]]
                for logical in current)
    return (total + 1) // 2


def apply_swaps(mapping: dict[int, int], swaps: list[tuple[int, int]]) -> dict[int, int]:
    """Return the mapping obtained by applying ``swaps`` (physical pairs) in order."""
    occupant = {p: q for q, p in mapping.items()}
    for first, second in swaps:
        logical_first = occupant.pop(first, None)
        logical_second = occupant.pop(second, None)
        if logical_first is not None:
            occupant[second] = logical_first
        if logical_second is not None:
            occupant[first] = logical_second
    return {logical: physical for physical, logical in occupant.items()}


def _check_injective(mapping: dict[int, int], architecture: Architecture) -> None:
    values = list(mapping.values())
    if len(values) != len(set(values)):
        raise ValueError("mapping is not injective")
    for physical in values:
        if not 0 <= physical < architecture.num_qubits:
            raise ValueError(f"physical qubit {physical} outside the architecture")
