"""TB-OLSQ-style constraint-based router.

TB-OLSQ (Tan & Cong, ICCAD 2020) formulates layout synthesis as an SMT problem
over "transition blocks" and finds the minimum SWAP count by repeatedly asking
the solver whether a solution with at most ``k`` SWAPs exists, increasing the
bound until it does.  This module reproduces that solving style on top of our
SAT stack:

* the constraints are the same Boolean QMR constraints SATMAP uses (the paper
  notes the two encodings have roughly the same asymptotic size), but
* optimisation is *bound-driven and not anytime*: a cardinality constraint
  "at most k SWAPs" is added as hard, the instance is solved as plain SAT, and
  ``k`` grows from 0 until satisfiable.  If the budget expires before the
  first satisfiable bound, nothing at all is returned -- which is exactly the
  behavioural difference from SATMAP's anytime MaxSAT loop that drives the
  paper's Q1 comparison.
"""

from __future__ import annotations

import time

from repro.baselines.base import Router
from repro.circuits.circuit import QuantumCircuit
from repro.core.encoder import EncodingOptions, QmrEncoder
from repro.core.extraction import build_routed_circuit, extract_solution
from repro.core.result import RoutingResult, RoutingStatus
from repro.core.variables import NOOP
from repro.hardware.architecture import Architecture
from repro.maxsat.cardinality import Totalizer
from repro.sat.backends import create_solver
from repro.sat.solver import SolverStatus


class OlsqStyleRouter(Router):
    """Optimal constraint-based router with bound-driven (non-anytime) search."""

    name = "TB-OLSQ-like"

    def __init__(self, time_budget: float = 60.0, swaps_per_gate: int = 1,
                 max_bound: int | None = None, verify: bool = True) -> None:
        super().__init__(time_budget=time_budget, verify=verify)
        self.swaps_per_gate = swaps_per_gate
        self.max_bound = max_bound

    def _route(self, circuit: QuantumCircuit, architecture: Architecture,
               deadline: float) -> RoutingResult:
        start = time.monotonic()
        options = EncodingOptions(swaps_per_gate=self.swaps_per_gate,
                                  collapse_repeated_pairs=True)
        encoder = QmrEncoder(architecture, options)
        encoding = encoder.encode(circuit)

        # "Performing a SWAP" literals: the negation of each slot's no-op.
        swap_indicator = [-encoding.registry.swap_var(NOOP, step, slot)
                          for step, slot in encoding.swap_slots]

        sat = create_solver()
        sat.ensure_vars(encoding.builder.num_vars)
        for clause in encoding.builder.hard:
            sat.add_clause(clause)
        loaded_hard = len(encoding.builder.hard)

        totalizer = Totalizer(encoding.builder, swap_indicator)
        sat.ensure_vars(encoding.builder.num_vars)
        for clause in encoding.builder.hard[loaded_hard:]:
            sat.add_clause(clause)

        max_bound = self.max_bound
        if max_bound is None:
            max_bound = len(swap_indicator)

        sat_calls = 0
        bound = 0
        while bound <= max_bound:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                break
            assumptions = totalizer.assumption_for_at_most(bound)
            result = sat.solve(assumptions=assumptions, time_budget=remaining)
            sat_calls += 1
            if result.status is SolverStatus.SAT:
                solution = extract_solution(encoding, result.model)
                routed = build_routed_circuit(circuit, encoding, solution)
                return RoutingResult(
                    status=RoutingStatus.OPTIMAL,
                    router_name=self.name,
                    circuit_name=circuit.name,
                    initial_mapping=solution.initial_mapping,
                    final_mapping=solution.final_mapping,
                    routed_circuit=routed,
                    swap_count=solution.swap_count,
                    solve_time=time.monotonic() - start,
                    sat_calls=sat_calls,
                    optimal=True,
                    num_variables=encoding.num_variables,
                    num_hard_clauses=encoding.num_hard_clauses,
                    num_soft_clauses=0,
                )
            if result.status is SolverStatus.UNKNOWN:
                break
            bound += 1

        return RoutingResult(
            status=RoutingStatus.TIMEOUT,
            router_name=self.name,
            circuit_name=circuit.name,
            solve_time=time.monotonic() - start,
            sat_calls=sat_calls,
            num_variables=encoding.num_variables,
            num_hard_clauses=encoding.num_hard_clauses,
            notes=f"no solution proven within bound {bound}",
        )
