"""SABRE: heuristic qubit mapping with lookahead and bidirectional passes.

Reimplementation of the algorithm from "Tackling the Qubit Mapping Problem for
NISQ-Era Quantum Devices" (Li, Ding, Xie, ASPLOS 2019), which is the routing
pass behind Qiskit's ``SabreSwap``/``SabreLayout`` and one of the paper's
heuristic baselines (Q2).

The router has two parts:

* **Routing** (:meth:`SabreRouter._route_once`): maintain the dependency
  front layer; execute every gate whose qubits are adjacent; otherwise score
  each candidate SWAP (any edge touching a qubit involved in the front layer)
  by the change in total distance of the front layer plus a discounted
  lookahead over the extended set of upcoming gates, apply the best one, and
  repeat.  A decay factor discourages repeatedly moving the same qubit.
* **Initial mapping** (bidirectional passes): route the circuit, reverse it,
  use the final mapping as the new initial mapping, and repeat; after an even
  number of reversals the mapping has adapted to both ends of the circuit.
"""

from __future__ import annotations

import random

from repro.baselines.base import (
    RoutedBuilder,
    Router,
    greedy_interaction_mapping,
)
from repro.circuits.circuit import QuantumCircuit
from repro.circuits.dag import CircuitDag
from repro.core.result import RoutingResult, RoutingStatus
from repro.hardware.architecture import Architecture


class SabreRouter(Router):
    """SABRE heuristic router."""

    name = "SABRE"

    def __init__(
        self,
        time_budget: float = 60.0,
        lookahead_size: int = 20,
        lookahead_weight: float = 0.5,
        decay_factor: float = 0.001,
        decay_reset_interval: int = 5,
        bidirectional_passes: int = 3,
        seed: int = 0,
        verify: bool = True,
        initial_mapping: dict[int, int] | None = None,
    ) -> None:
        super().__init__(time_budget=time_budget, verify=verify)
        if lookahead_size < 0:
            raise ValueError("lookahead_size must be non-negative")
        self.lookahead_size = lookahead_size
        self.lookahead_weight = lookahead_weight
        self.decay_factor = decay_factor
        self.decay_reset_interval = decay_reset_interval
        self.bidirectional_passes = bidirectional_passes
        self.seed = seed
        #: When provided, this mapping is used as-is and the bidirectional
        #: initial-mapping search is skipped (the hybrid router relies on this
        #: to combine an externally-computed optimal placement with SABRE's
        #: routing pass).
        self.initial_mapping = dict(initial_mapping) if initial_mapping else None

    # ---------------------------------------------------------------- public

    def _route(self, circuit: QuantumCircuit, architecture: Architecture,
               deadline: float) -> RoutingResult:
        rng = random.Random(self.seed)
        if self.initial_mapping is not None:
            mapping = dict(self.initial_mapping)
        else:
            mapping = greedy_interaction_mapping(circuit, architecture)
            reversed_circuit = _reversed(circuit)

            # Bidirectional passes refine the initial mapping.
            for pass_index in range(self.bidirectional_passes):
                self.check_deadline(deadline)
                target = circuit if pass_index % 2 == 0 else reversed_circuit
                builder = self._route_once(target, architecture, mapping, rng, deadline)
                mapping = dict(builder.mapping)

            # If the pass count is odd the mapping currently suits the *end* of
            # the circuit; run one more reverse pass so it suits the beginning.
            if self.bidirectional_passes % 2 == 1:
                builder = self._route_once(reversed_circuit, architecture, mapping, rng,
                                           deadline)
                mapping = dict(builder.mapping)

        final_builder = self._route_once(circuit, architecture, mapping, rng, deadline)
        return final_builder.result(self.name, status=RoutingStatus.FEASIBLE)

    # -------------------------------------------------------------- internals

    def _route_once(self, circuit: QuantumCircuit, architecture: Architecture,
                    initial_mapping: dict[int, int], rng: random.Random,
                    deadline: float) -> RoutedBuilder:
        dag = CircuitDag(circuit)
        builder = RoutedBuilder(circuit, architecture, initial_mapping)
        distance = architecture.distance_matrix()
        executed: set[int] = set()
        decay = [1.0] * architecture.num_qubits
        swaps_since_progress = 0

        front = {node.index for node in dag.front_layer(executed)}
        while front:
            self.check_deadline(deadline)
            progressed = False
            for index in sorted(front):
                node = dag.nodes[index]
                if builder.can_execute(node.gate):
                    builder.emit_gate(node.gate)
                    executed.add(index)
                    front.discard(index)
                    for successor in node.successors:
                        if dag.nodes[successor].predecessors.issubset(executed):
                            front.add(successor)
                    progressed = True
            if progressed:
                swaps_since_progress = 0
                decay = [1.0] * architecture.num_qubits
                continue

            front_gates = [dag.nodes[index].gate for index in front
                           if dag.nodes[index].gate.is_two_qubit]
            if not front_gates:
                # Only single-qubit gates remain blocked, which cannot happen
                # (they are always executable); guard anyway.
                for index in sorted(front):
                    builder.emit_gate(dag.nodes[index].gate)
                    executed.add(index)
                front = {node.index for node in dag.front_layer(executed)}
                continue

            # Anti-livelock safeguard: if scoring has not unblocked anything for
            # a long stretch, walk the first blocked gate's qubits together
            # along a shortest path instead of trusting the heuristic.
            if swaps_since_progress > 4 * architecture.num_qubits:
                gate = front_gates[0]
                source = builder.physical_of(gate.qubits[0])
                target = builder.physical_of(gate.qubits[1])
                path = architecture.shortest_path(source, target)
                builder.emit_swap(path[0], path[1])
                swaps_since_progress = 0
                continue

            extended = self._extended_set(dag, front, executed)
            candidates = self._candidate_swaps(front_gates, builder)
            best_swap = None
            best_score = None
            for swap in sorted(candidates):
                score = self._score_swap(swap, front_gates, extended, builder,
                                         distance, decay)
                if best_score is None or score < best_score - 1e-12 or (
                        abs(score - best_score) <= 1e-12 and rng.random() < 0.5):
                    best_score = score
                    best_swap = swap
            assert best_swap is not None
            builder.emit_swap(*best_swap)
            decay[best_swap[0]] += self.decay_factor
            decay[best_swap[1]] += self.decay_factor
            swaps_since_progress += 1
            if swaps_since_progress % self.decay_reset_interval == 0:
                decay = [1.0] * architecture.num_qubits
        return builder

    def _extended_set(self, dag: CircuitDag, front: set[int],
                      executed: set[int]) -> list:
        """Upcoming two-qubit gates used for lookahead scoring."""
        extended = []
        queue = sorted(front)
        seen = set(queue)
        position = 0
        while position < len(queue) and len(extended) < self.lookahead_size:
            node = dag.nodes[queue[position]]
            position += 1
            for successor in sorted(node.successors):
                if successor in seen or successor in executed:
                    continue
                seen.add(successor)
                queue.append(successor)
                successor_gate = dag.nodes[successor].gate
                if successor_gate.is_two_qubit:
                    extended.append(successor_gate)
        return extended

    def _candidate_swaps(self, front_gates, builder: RoutedBuilder) -> set[tuple[int, int]]:
        """Edges touching any physical qubit involved in the front layer."""
        involved_physical = set()
        for gate in front_gates:
            for logical in gate.qubits:
                involved_physical.add(builder.physical_of(logical))
        candidates = set()
        for physical in involved_physical:
            for neighbor in builder.architecture.neighbors(physical):
                candidates.add((min(physical, neighbor), max(physical, neighbor)))
        return candidates

    def _score_swap(self, swap: tuple[int, int], front_gates, extended,
                    builder: RoutedBuilder, distance, decay) -> float:
        """SABRE's scoring function: front-layer distance + discounted lookahead."""
        trial = dict(builder.mapping)
        logical_a = builder.logical_at(swap[0])
        logical_b = builder.logical_at(swap[1])
        if logical_a is not None:
            trial[logical_a] = swap[1]
        if logical_b is not None:
            trial[logical_b] = swap[0]

        front_cost = sum(distance[trial[g.qubits[0]]][trial[g.qubits[1]]]
                         for g in front_gates)
        front_cost /= max(1, len(front_gates))
        lookahead_cost = 0.0
        if extended:
            lookahead_cost = sum(distance[trial[g.qubits[0]]][trial[g.qubits[1]]]
                                 for g in extended) / len(extended)
        decay_penalty = max(decay[swap[0]], decay[swap[1]])
        return decay_penalty * (front_cost + self.lookahead_weight * lookahead_cost)


def _reversed(circuit: QuantumCircuit) -> QuantumCircuit:
    """The circuit with its gate order reversed (used by bidirectional passes)."""
    reversed_circuit = QuantumCircuit(circuit.num_qubits, name=f"{circuit.name}(rev)")
    reversed_circuit.extend(reversed(circuit.gates))
    return reversed_circuit
