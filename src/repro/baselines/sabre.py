"""SABRE: heuristic qubit mapping with lookahead and bidirectional passes.

Reimplementation of the algorithm from "Tackling the Qubit Mapping Problem for
NISQ-Era Quantum Devices" (Li, Ding, Xie, ASPLOS 2019), which is the routing
pass behind Qiskit's ``SabreSwap``/``SabreLayout`` and one of the paper's
heuristic baselines (Q2).

The router has two parts:

* **Routing** (:meth:`SabreRouter._route_once`): maintain the dependency
  front layer; execute every gate whose qubits are adjacent; otherwise score
  each candidate SWAP (any edge touching a qubit involved in the front layer)
  by the change in total distance of the front layer plus a discounted
  lookahead over the extended set of upcoming gates, apply the best one, and
  repeat.  A decay factor discourages repeatedly moving the same qubit.
* **Initial mapping** (bidirectional passes): route the circuit, reverse it,
  use the final mapping as the new initial mapping, and repeat; after an even
  number of reversals the mapping has adapted to both ends of the circuit.

The hot loop works directly on the flat data structures: the CSR successor
arrays of :class:`~repro.circuits.dag.CircuitDag` with a per-node
remaining-predecessor counter (no set-inclusion checks), the architecture's
flat distance matrix, and the builder's O(1) logical<->physical arrays.  A
candidate SWAP is scored without copying the mapping: only the two logical
qubits the swap touches are special-cased during the distance lookups.
"""

from __future__ import annotations

import random

from repro.baselines.base import (
    RoutedBuilder,
    Router,
    greedy_interaction_mapping,
)
from repro.circuits.circuit import QuantumCircuit
from repro.circuits.dag import CircuitDag
from repro.core.result import RoutingResult, RoutingStatus
from repro.hardware.architecture import Architecture


class SabreRouter(Router):
    """SABRE heuristic router."""

    name = "SABRE"

    def __init__(
        self,
        time_budget: float = 60.0,
        lookahead_size: int = 20,
        lookahead_weight: float = 0.5,
        decay_factor: float = 0.001,
        decay_reset_interval: int = 5,
        bidirectional_passes: int = 3,
        seed: int = 0,
        verify: bool = True,
        initial_mapping: dict[int, int] | None = None,
    ) -> None:
        super().__init__(time_budget=time_budget, verify=verify)
        if lookahead_size < 0:
            raise ValueError("lookahead_size must be non-negative")
        self.lookahead_size = lookahead_size
        self.lookahead_weight = lookahead_weight
        self.decay_factor = decay_factor
        self.decay_reset_interval = decay_reset_interval
        self.bidirectional_passes = bidirectional_passes
        self.seed = seed
        #: When provided, this mapping is used as-is and the bidirectional
        #: initial-mapping search is skipped (the hybrid router relies on this
        #: to combine an externally-computed optimal placement with SABRE's
        #: routing pass).
        self.initial_mapping = dict(initial_mapping) if initial_mapping else None

    # ---------------------------------------------------------------- public

    def _route(self, circuit: QuantumCircuit, architecture: Architecture,
               deadline: float) -> RoutingResult:
        rng = random.Random(self.seed)
        if self.initial_mapping is not None:
            mapping = dict(self.initial_mapping)
        else:
            mapping = greedy_interaction_mapping(circuit, architecture)
            reversed_circuit = _reversed(circuit)

            # Bidirectional passes refine the initial mapping.
            for pass_index in range(self.bidirectional_passes):
                self.check_deadline(deadline)
                target = circuit if pass_index % 2 == 0 else reversed_circuit
                builder = self._route_once(target, architecture, mapping, rng, deadline)
                mapping = dict(builder.mapping)

            # If the pass count is odd the mapping currently suits the *end* of
            # the circuit; run one more reverse pass so it suits the beginning.
            if self.bidirectional_passes % 2 == 1:
                builder = self._route_once(reversed_circuit, architecture, mapping, rng,
                                           deadline)
                mapping = dict(builder.mapping)

        final_builder = self._route_once(circuit, architecture, mapping, rng, deadline)
        return final_builder.result(self.name, status=RoutingStatus.FEASIBLE)

    # -------------------------------------------------------------- internals

    def _route_once(self, circuit: QuantumCircuit, architecture: Architecture,
                    initial_mapping: dict[int, int], rng: random.Random,
                    deadline: float) -> RoutedBuilder:
        dag = CircuitDag(circuit)
        builder = RoutedBuilder(circuit, architecture, initial_mapping)
        ir = circuit.ir
        qa, qb, offset = ir.qa, ir.qb, ir.start
        distance = architecture.flat_distance_lookup()
        num_physical = architecture.num_qubits
        succ0, succ1 = dag.succ0, dag.succ1
        remaining = dag.indegrees()
        done = bytearray(len(dag))
        phys_of, log_at = builder.phys_of, builder.log_at

        decay = [1.0] * num_physical
        swaps_since_progress = 0
        front: set[int] = set(dag.initial_front())
        # Round-state cache: the blocked front pairs, the lookahead set, and
        # the per-pair base distances only change when a gate executes (the
        # front moves) -- not per applied SWAP.  Between swaps the cache is
        # patched incrementally instead of rebuilt.
        round_state = None
        while front:
            self.check_deadline(deadline)
            progressed = False
            for index in sorted(front):
                a = qa[offset + index]
                b = qb[offset + index]
                if b < 0 or distance[phys_of[a] * num_physical + phys_of[b]] == 1:
                    builder.emit_index(ir, index)
                    done[index] = 1
                    front.discard(index)
                    successor = succ0[index]
                    if successor >= 0:
                        remaining[successor] -= 1
                        if remaining[successor] == 0:
                            front.add(successor)
                        successor = succ1[index]
                        if successor >= 0:
                            remaining[successor] -= 1
                            if remaining[successor] == 0:
                                front.add(successor)
                    progressed = True
            if progressed:
                swaps_since_progress = 0
                decay = [1.0] * num_physical
                round_state = None
                continue

            if round_state is None:
                front_pairs = [(qa[offset + index], qb[offset + index])
                               for index in sorted(front) if qb[offset + index] >= 0]
                if not front_pairs:
                    # Only single-qubit gates remain blocked, which cannot
                    # happen (they are always executable); guard anyway.
                    for index in sorted(front):
                        builder.emit_index(ir, index)
                        done[index] = 1
                        front.discard(index)
                        successor = succ0[index]
                        if successor >= 0:
                            remaining[successor] -= 1
                            if remaining[successor] == 0:
                                front.add(successor)
                            successor = succ1[index]
                            if successor >= 0:
                                remaining[successor] -= 1
                                if remaining[successor] == 0:
                                    front.add(successor)
                    continue
                for logical_a, logical_b in front_pairs:
                    builder.require_reachable(logical_a, logical_b)
                extended = self._extended_set(dag, front, done, qa, qb, offset)
                all_pairs = front_pairs + extended
                num_front = len(front_pairs)
                num_extended = len(extended)
                base_cost = [distance[phys_of[a] * num_physical + phys_of[b]]
                             for a, b in all_pairs]
                base_front = sum(base_cost[:num_front])
                base_extended = sum(base_cost[num_front:])
                touching: dict[int, list[int]] = {}
                for pair_index, (first, second) in enumerate(all_pairs):
                    touching.setdefault(first, []).append(pair_index)
                    touching.setdefault(second, []).append(pair_index)
                round_state = (front_pairs, all_pairs, num_front, num_extended,
                               touching)
            else:
                front_pairs, all_pairs, num_front, num_extended, touching = \
                    round_state

            # Anti-livelock safeguard: if scoring has not unblocked anything for
            # a long stretch, walk the first blocked gate's qubits together
            # along a shortest path instead of trusting the heuristic.
            if swaps_since_progress > 4 * num_physical:
                logical_a, logical_b = front_pairs[0]
                path = architecture.shortest_path(phys_of[logical_a],
                                                  phys_of[logical_b])
                builder.emit_swap(path[0], path[1])
                swaps_since_progress = 0
                round_state = None
                continue

            candidates = self._candidate_swaps(front_pairs, builder)
            lookahead_weight = self.lookahead_weight

            # Score candidates by exact integer deltas: each pair's distance
            # under the current map is cached, and per candidate only the
            # pairs touching the two swapped logical qubits are re-scored.
            # Sums stay integral, so the resulting floats are bit-identical
            # to a full recompute (and to the legacy implementation).
            best_swap = None
            best_score = None
            empty: tuple[int, ...] = ()
            for swap in sorted(candidates):
                swap_a, swap_b = swap
                logical_a = log_at[swap_a]
                logical_b = log_at[swap_b]
                front_delta = 0
                extended_delta = 0
                touched_a = touching.get(logical_a, empty)
                for pair_index in touched_a:
                    first, second = all_pairs[pair_index]
                    if first == logical_a:
                        pa = swap_b
                    elif first == logical_b:
                        pa = swap_a
                    else:
                        pa = phys_of[first]
                    if second == logical_a:
                        pb = swap_b
                    elif second == logical_b:
                        pb = swap_a
                    else:
                        pb = phys_of[second]
                    delta = (distance[pa * num_physical + pb]
                             - base_cost[pair_index])
                    if pair_index < num_front:
                        front_delta += delta
                    else:
                        extended_delta += delta
                for pair_index in touching.get(logical_b, empty):
                    first, second = all_pairs[pair_index]
                    if first == logical_a or second == logical_a:
                        continue  # already handled through logical_a's list
                    if first == logical_b:
                        pa = swap_a
                        pb = phys_of[second]
                    else:
                        pa = phys_of[first]
                        pb = swap_a
                    delta = (distance[pa * num_physical + pb]
                             - base_cost[pair_index])
                    if pair_index < num_front:
                        front_delta += delta
                    else:
                        extended_delta += delta
                score = (base_front + front_delta) / num_front
                if num_extended:
                    score += lookahead_weight * (
                        (base_extended + extended_delta) / num_extended)
                decay_a, decay_b = decay[swap_a], decay[swap_b]
                score *= decay_a if decay_a >= decay_b else decay_b
                if best_score is None or score < best_score - 1e-12 or (
                        abs(score - best_score) <= 1e-12 and rng.random() < 0.5):
                    best_score = score
                    best_swap = swap
            assert best_swap is not None
            # Patch the cached base costs for the pairs the applied swap
            # moves, before the next round reuses them.
            moved = set(touching.get(log_at[best_swap[0]], ()))
            moved.update(touching.get(log_at[best_swap[1]], ()))
            builder.emit_swap(*best_swap)
            for pair_index in moved:
                first, second = all_pairs[pair_index]
                new_cost = distance[phys_of[first] * num_physical
                                    + phys_of[second]]
                shift = new_cost - base_cost[pair_index]
                base_cost[pair_index] = new_cost
                if pair_index < num_front:
                    base_front += shift
                else:
                    base_extended += shift
            decay[best_swap[0]] += self.decay_factor
            decay[best_swap[1]] += self.decay_factor
            swaps_since_progress += 1
            if swaps_since_progress % self.decay_reset_interval == 0:
                decay = [1.0] * num_physical
        return builder

    def _extended_set(self, dag: CircuitDag, front: set[int], done: bytearray,
                      qa, qb, offset: int) -> list[tuple[int, int]]:
        """Upcoming two-qubit gates (as logical pairs) used for lookahead."""
        extended: list[tuple[int, int]] = []
        queue = sorted(front)
        seen = set(queue)
        succ0, succ1 = dag.succ0, dag.succ1
        position = 0
        lookahead_size = self.lookahead_size
        while position < len(queue) and len(extended) < lookahead_size:
            node = queue[position]
            position += 1
            for successor in (succ0[node], succ1[node]):
                if successor < 0 or successor in seen or done[successor]:
                    continue
                seen.add(successor)
                queue.append(successor)
                b = qb[offset + successor]
                if b >= 0:
                    extended.append((qa[offset + successor], b))
        return extended

    def _candidate_swaps(self, front_pairs, builder: RoutedBuilder) -> set[tuple[int, int]]:
        """Edges touching any physical qubit involved in the front layer."""
        phys_of = builder.phys_of
        involved_physical = set()
        for logical_a, logical_b in front_pairs:
            involved_physical.add(phys_of[logical_a])
            involved_physical.add(phys_of[logical_b])
        candidates = set()
        architecture = builder.architecture
        for physical in involved_physical:
            for neighbor in architecture.neighbors_sorted(physical):
                candidates.add((physical, neighbor) if physical < neighbor
                               else (neighbor, physical))
        return candidates


def _reversed(circuit: QuantumCircuit) -> QuantumCircuit:
    """The circuit with its gate order reversed (used by bidirectional passes)."""
    reversed_circuit = QuantumCircuit(circuit.num_qubits, name=f"{circuit.name}(rev)")
    ir = circuit.ir
    for index in range(len(ir) - 1, -1, -1):
        reversed_circuit.append_op(*ir.gate(index))
    return reversed_circuit
