"""Consistent hashing of job content hashes onto shard ids.

The fleet's correctness rests on one property: *identical jobs always land
on the same shard*, so the cross-client single-solve dedup that the gateway
enforces per process (keyed by
:meth:`repro.service.BatchRoutingService.job_key`) keeps holding fleet-wide
-- the dispatcher never has to coordinate two workers solving the same job,
because two equal submissions can only ever reach one worker.

:class:`HashRing` is the classic construction: each shard id is hashed onto
the ring at ``replicas`` pseudo-random points (SHA-256, the same family as
the job content hash), and a key is owned by the first shard point at or
after the key's own ring position.  Properties the dispatcher relies on:

* **Deterministic.**  The ring is a pure function of the shard-id set and
  ``replicas`` -- a restarted dispatcher, a client-side ring built from
  ``/v1/cluster``, and the dispatcher's own all agree.
* **Stable under restart.**  Ring points are derived from *shard ids*, not
  worker PIDs or ports, so a crashed-and-restarted worker resumes exactly
  the key range it owned before (its state is recoverable from the shared
  disk cache).
* **Minimal movement.**  Removing one shard from an N-shard ring reassigns
  only ~1/N of the key space (to the surviving shards); the rest of the
  fleet's dedup mapping is untouched.

Keys are expected to be hex content hashes but any string works.
"""

from __future__ import annotations

import bisect
import hashlib

__all__ = ["HashRing"]


def _ring_position(token: str) -> int:
    """A stable 64-bit ring position for ``token``."""
    digest = hashlib.sha256(token.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class HashRing:
    """Consistent mapping of string keys onto a set of shard ids.

    Parameters
    ----------
    shards:
        The shard ids (any hashable, stringable values; the fleet uses
        ``0..N-1``).  Order does not matter -- the ring is a set.
    replicas:
        Virtual nodes per shard.  More replicas smooth the key distribution
        (64 keeps the max/min shard load within ~2x for random keys while
        the ring stays tiny).
    """

    def __init__(self, shards, replicas: int = 64) -> None:
        if replicas <= 0:
            raise ValueError("replicas must be positive")
        self.replicas = replicas
        self._points: list[int] = []
        self._owners: dict[int, object] = {}
        self._shards: set = set()
        for shard in shards:
            self.add(shard)
        if not self._shards:
            raise ValueError("a hash ring needs at least one shard")

    # ------------------------------------------------------------ membership

    @property
    def shards(self) -> list:
        """The current shard ids, sorted."""
        return sorted(self._shards)

    def add(self, shard) -> None:
        """Add a shard (idempotent)."""
        if shard in self._shards:
            return
        self._shards.add(shard)
        for replica in range(self.replicas):
            point = _ring_position(f"shard:{shard}:{replica}")
            # SHA-256 collisions across distinct tokens are not a practical
            # concern; keep the first owner deterministically if one occurs.
            if point not in self._owners:
                bisect.insort(self._points, point)
                self._owners[point] = shard

    def remove(self, shard) -> None:
        """Remove a shard; its key range flows to the ring successors."""
        if shard not in self._shards:
            return
        if len(self._shards) == 1:
            raise ValueError("cannot remove the last shard")
        self._shards.discard(shard)
        for point, owner in list(self._owners.items()):
            if owner == shard:
                del self._owners[point]
                index = bisect.bisect_left(self._points, point)
                if index < len(self._points) and self._points[index] == point:
                    self._points.pop(index)

    # --------------------------------------------------------------- lookup

    def shard_for(self, key: str):
        """The shard owning ``key``: first ring point at or after its hash."""
        position = _ring_position(f"key:{key}")
        index = bisect.bisect_right(self._points, position)
        if index == len(self._points):
            index = 0  # wrap around
        return self._owners[self._points[index]]

    def distribution(self, keys) -> dict:
        """Shard id -> number of ``keys`` it owns (diagnostics)."""
        counts: dict = {shard: 0 for shard in self._shards}
        for key in keys:
            counts[self.shard_for(key)] += 1
        return counts

    def __len__(self) -> int:
        return len(self._shards)

    def __contains__(self, shard) -> bool:
        return shard in self._shards
