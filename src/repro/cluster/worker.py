"""Shard worker processes: a full gateway per shard, managed by a handle.

Each fleet worker is an ordinary :class:`~repro.server.app.RoutingGateway`
(the whole PR-4 serving stack: dedup, long-poll, metrics, drain) bound to a
loopback port, running in its own OS process so N workers really use N
cores.  The worker builds its own :class:`~repro.service.BatchRoutingService`
from the :class:`~repro.cluster.config.FleetConfig`; all workers share one
disk :class:`~repro.service.ResultCache` directory, with entries stamped by
shard id and writers serialised through the cache's file lock.

:class:`WorkerHandle` is the dispatcher-side view of one worker: it spawns
the process, performs the port handshake over a pipe, answers liveness
checks, and restarts the process after a crash -- on the *same shard id*,
so the consistent-hash ring assignment is stable across restarts and the
reborn worker re-serves its key range from the shared cache.
"""

from __future__ import annotations

import multiprocessing
import os
import time

from repro.cluster.config import FleetConfig

#: Seconds the parent waits for a freshly spawned worker to report its port.
STARTUP_TIMEOUT = 60.0


def _start_context():
    """The multiprocessing context workers are spawned with.

    Fork is preferred where available (it skips the interpreter+import tax
    on every restart); ``REPRO_CLUSTER_START_METHOD`` overrides for
    debugging or platforms where forking a threaded parent misbehaves.
    """
    method = os.environ.get("REPRO_CLUSTER_START_METHOD")
    if not method:
        method = ("fork" if "fork" in multiprocessing.get_all_start_methods()
                  else "spawn")
    return multiprocessing.get_context(method)


def build_worker_service(config: FleetConfig, shard_id: int):
    """The shard's :class:`BatchRoutingService`, sharing the fleet cache.

    Every worker must key jobs identically (same budget default, same
    portfolio namespace) or fleet-wide dedup breaks; that is why this is
    derived from the one :class:`FleetConfig` rather than per-worker knobs.
    """
    from repro.service import BatchRoutingService, ResultCache

    if config.cache_dir is not None:
        cache = ResultCache(directory=config.cache_dir,
                            max_bytes=config.cache_max_bytes,
                            owner=f"shard-{shard_id}")
    else:
        cache = False
    return BatchRoutingService(
        max_workers=config.pool_workers,
        mode=config.pool_mode,
        time_budget=config.time_budget,
        cache=cache,
        portfolio=config.portfolio,
    )


def build_worker_gateway(config: FleetConfig, shard_id: int, port: int = 0):
    """The shard's gateway on a loopback port.

    Admission is effectively open here: the *dispatcher* is the fleet's
    admission point, and double-throttling behind it would turn its
    carefully computed ``Retry-After`` hints into lies.  The worker keeps
    only the global pending bound as a local safety valve.
    """
    from repro.obs.sampling import TailSampler
    from repro.obs.slo import SloTracker
    from repro.server import AdmissionController, RoutingGateway

    service = build_worker_service(config, shard_id)
    admission = AdmissionController(rate=1e9, burst=1e9,
                                    max_pending=config.max_pending)
    options = dict(config.gateway_options)
    # Observability wiring: every worker tracks the same objectives (the
    # dispatcher merges the raw CDFs into fleet quantiles), tags its trace
    # and event files with its shard id so the shared directories stay
    # multi-process safe, and applies the fleet's tail-sampling policy.
    options.setdefault("slo", SloTracker(objectives=config.slos))
    options.setdefault("trace_owner", f"shard-{shard_id}")
    options.setdefault("events_dir", config.events_dir)
    if config.trace_sample_rate is not None or config.slow_trace_seconds is not None:
        options.setdefault("sampler", TailSampler(
            rate=(config.trace_sample_rate
                  if config.trace_sample_rate is not None else 1.0),
            slow_threshold=config.slow_trace_seconds))
    return RoutingGateway(service=service, host="127.0.0.1", port=port,
                          admission=admission,
                          time_budget=config.time_budget,
                          trace_dir=config.trace_dir,
                          **options)


def worker_main(config: FleetConfig, shard_id: int, conn) -> None:
    """Process target: serve one shard gateway until drained.

    Reports ``("ready", port)`` through ``conn`` once the port is bound, or
    ``("error", repr)`` if startup fails.  SIGTERM drains gracefully (the
    gateway's own handler), so an orchestrator-initiated stop finishes
    in-flight jobs best-so-far.
    """
    import asyncio
    import os

    from repro.server.app import serve

    # Fleet-wide backend choice: exported before any session is built so the
    # worker's whole solve stack (including its own pool workers, which
    # inherit the environment) resolves the same SAT core.
    if config.solver_backend:
        os.environ["REPRO_SAT_BACKEND"] = config.solver_backend

    try:
        gateway = build_worker_gateway(config, shard_id)
    except BaseException as error:  # report, then die visibly
        conn.send(("error", repr(error)))
        conn.close()
        raise

    def announce(started) -> None:
        conn.send(("ready", started.port))
        conn.close()

    service = gateway.service
    try:
        asyncio.run(serve(gateway, on_started=announce))
    finally:
        service.close()


class WorkerHandle:
    """Dispatcher-side lifecycle manager for one shard worker process."""

    def __init__(self, config: FleetConfig, shard_id: int) -> None:
        self.config = config
        self.shard_id = shard_id
        self.host = "127.0.0.1"
        self.port: int | None = None
        self.process = None
        self.restarts = 0
        self.started_at: float | None = None
        self._context = _start_context()

    # -------------------------------------------------------------- lifecycle

    def start(self) -> "WorkerHandle":
        """Spawn the process and wait for its port handshake (blocking)."""
        parent_conn, child_conn = self._context.Pipe(duplex=False)
        self.process = self._context.Process(
            target=worker_main, args=(self.config, self.shard_id, child_conn),
            name=f"repro-shard-{self.shard_id}", daemon=True)
        self.process.start()
        child_conn.close()
        try:
            if not parent_conn.poll(STARTUP_TIMEOUT):
                raise RuntimeError(
                    f"shard {self.shard_id} did not report a port within "
                    f"{STARTUP_TIMEOUT:.0f}s")
            kind, value = parent_conn.recv()
        except EOFError:
            raise RuntimeError(
                f"shard {self.shard_id} died during startup") from None
        finally:
            parent_conn.close()
        if kind != "ready":
            raise RuntimeError(f"shard {self.shard_id} failed to start: {value}")
        self.port = int(value)
        self.started_at = time.monotonic()
        return self

    def alive(self) -> bool:
        return self.process is not None and self.process.is_alive()

    @property
    def pid(self) -> int | None:
        return self.process.pid if self.process is not None else None

    def restart(self) -> "WorkerHandle":
        """Reap the dead process and spawn a fresh one on the same shard id.

        The new process gets a new loopback port (the old one may linger in
        TIME_WAIT); ring assignment is untouched because the ring hashes
        shard ids, never ports.
        """
        if self.process is not None:
            self.process.join(timeout=5.0)
            if self.process.is_alive():  # pragma: no cover - hung worker
                self.process.kill()
                self.process.join(timeout=5.0)
        self.port = None
        self.restarts += 1
        return self.start()

    def terminate(self, join_timeout: float = 10.0) -> None:
        """SIGTERM (graceful drain), then SIGKILL if the worker hangs."""
        if self.process is None:
            return
        if self.process.is_alive():
            self.process.terminate()
        self.process.join(timeout=join_timeout)
        if self.process.is_alive():  # pragma: no cover - hung worker
            self.process.kill()
            self.process.join(timeout=5.0)

    def describe(self) -> dict:
        return {
            "shard": self.shard_id,
            "port": self.port,
            "pid": self.pid,
            "alive": self.alive(),
            "restarts": self.restarts,
            "uptime": (round(time.monotonic() - self.started_at, 3)
                       if self.started_at is not None and self.alive() else 0.0),
        }
