"""The fleet front-end: one listening socket, N shard workers behind it.

:class:`ClusterDispatcher` owns the public address of a sharded serving
fleet.  Every submission is parsed and keyed (the same
:meth:`~repro.service.BatchRoutingService.job_key` content hash the
single-process gateway deduplicates by), consistent-hashed onto one of N
:class:`~repro.cluster.worker.WorkerHandle` gateway processes, and proxied
there over loopback HTTP.  Because equal jobs always map to the same shard,
the per-gateway cross-client dedup of PR 4 holds *fleet-wide*: duplicate
submissions from any number of clients trigger exactly one solve.

Beyond routing, the dispatcher is the fleet's control plane:

* **Admission** -- the PR-4 token-bucket controller runs here, in front of
  the whole fleet (workers keep only a pending-bound safety valve), so 429
  ``Retry-After`` hints reflect fleet capacity.
* **Health** -- a sweep task watches worker processes and restarts crashed
  ones *on the same shard id*; the ring never moves, so a reborn worker
  resumes its key range and re-serves finished work from the shared disk
  cache.  A worker that keeps dying past ``max_restarts`` is cut from the
  ring and its range flows to the survivors.
* **Aggregation** -- ``/v1/stats`` and ``/metrics`` merge every shard's
  view into fleet totals plus per-shard ``{shard="k"}`` labelled series,
  alongside the dispatcher's own ``repro_cluster_*`` instruments.
  Mirrored per-shard counters go through a monotone fold so a worker
  restart (which resets its in-process counters) never makes a scraped
  counter regress.  ``/v1/slo`` merges every shard's windowed CDFs into
  true fleet quantiles, ``/v1/events`` serves the dispatcher's own
  control-plane event stream (restarts, disables, drains), and
  ``POST /v1/admin/profile`` profiles one shard (``?shard=K``) or the
  dispatcher plus every live worker concurrently.
* **Drain** -- ``/v1/admin/drain`` (or SIGTERM via :func:`serve_fleet`)
  fans out to every worker, waits for them to finish their queues
  best-so-far, then closes the listener.
* **Traces** -- ``/v1/jobs/<id>/trace`` is proxied to the owning shard and
  the returned tree is re-rooted under a ``dispatch`` span carrying the
  shard id and proxy latency, so ``repro trace <job>`` shows the full
  fleet path: dispatch -> job -> route -> sat-solve.

Endpoints mirror the gateway's (clients cannot tell a dispatcher from a
single gateway, except for the extra ``/v1/cluster`` topology view and the
``shard`` field stamped into job payloads).
"""

from __future__ import annotations

import asyncio
import json
import signal
import threading
import time
import urllib.parse
from collections import OrderedDict
from dataclasses import dataclass

from repro.api.registry import describe_routers
from repro.cluster.config import FleetConfig
from repro.cluster.hashring import HashRing
from repro.cluster.worker import WorkerHandle
from repro.hardware.devices import device_records, named_architectures
from repro.obs import profiler as obs_profiler
from repro.obs.events import LEVELS, EventLog
from repro.obs.metrics import MetricsRegistry
from repro.obs.slo import merge_slo_statuses, mirror_slo
from repro.obs.trace import render_trace
from repro.server import http, protocol
from repro.server.admission import AdmissionController
from repro.service import BatchRoutingService

#: Most recent job -> shard dispatch records kept for trace re-rooting.
MAX_DISPATCH_RECORDS = 4096
#: Attempts to reach a shard before surfacing 503 (submits are idempotent
#: by content hash, so a blind retry after a connection failure is safe).
PROXY_ATTEMPTS = 3
#: Health sweeps between open-job resyncs feeding admission backpressure.
STATS_SWEEP_EVERY = 4


@dataclass
class DispatchRecord:
    """Where one job went and how long the submit proxy took."""

    shard: int
    start: float  # wall-clock submit arrival, epoch seconds
    duration: float  # submit proxy round trip, seconds
    retries: int = 0


class ClusterDispatcher:
    """Front-end dispatcher for a sharded gateway fleet (see module doc)."""

    def __init__(self, config: FleetConfig,
                 admission: AdmissionController | None = None,
                 architectures: dict | None = None) -> None:
        self.config = config
        self.host = config.host
        self.port = config.port
        self.ring = HashRing(config.shard_ids(),
                             replicas=config.ring_replicas)
        self.workers: dict[int, WorkerHandle] = {
            shard: WorkerHandle(config, shard)
            for shard in config.shard_ids()}
        self.admission = admission if admission is not None else \
            AdmissionController(rate=config.rate, burst=config.burst,
                                max_pending=config.max_pending)
        self.architectures = (architectures if architectures is not None
                              else named_architectures())
        # Computes job keys exactly as the workers do (same budget default,
        # same portfolio namespace); never solves -- its pool is lazy and
        # route_batch is never called on it.
        self._keyer = BatchRoutingService(
            time_budget=config.time_budget, portfolio=config.portfolio,
            cache=False, tracer=False)
        self.metrics = MetricsRegistry()
        self._dispatched = self.metrics.counter(
            "repro_cluster_dispatched_total",
            "Submissions routed to a shard worker, by shard")
        self._retried = self.metrics.counter(
            "repro_cluster_retried_total",
            "Proxy attempts repeated after a shard connection failure")
        self._restarts_counter = self.metrics.counter(
            "repro_cluster_worker_restarts_total",
            "Crashed shard workers restarted by the health sweep")
        self.counters = {
            "requests": 0,
            "dispatched": 0,
            "retried": 0,
            "rejected": 0,
            "rejected_draining": 0,
            "bad_requests": 0,
            "proxy_failures": 0,
            "worker_restarts": 0,
        }
        self._dispatch_log: OrderedDict[str, DispatchRecord] = OrderedDict()
        #: The dispatcher's own operational narrative: restarts, disables,
        #: drains.  Shares the fleet's events directory when one is set.
        self.event_log = EventLog(directory=config.events_dir,
                                  owner="dispatcher")
        #: Monotone floors for mirrored per-shard counters: (metric, shard)
        #: -> (carried base, last raw reading).  A restarted worker resets
        #: its in-process counters to zero; re-exporting the raw reading
        #: would make a *counter* go backwards, which breaks every
        #: rate()-style consumer.  Instead the pre-restart total is folded
        #: into the base, so the mirrored series never regresses.
        self._monotone: dict[tuple[str, str], tuple[float, float]] = {}
        self._open_jobs = 0  # fleet-wide estimate, resynced by the sweep
        self._draining = False
        self._started = time.monotonic()
        self._server: asyncio.AbstractServer | None = None
        self._health_task: asyncio.Task | None = None
        self._restarting: set[int] = set()
        self._disabled: set[int] = set()
        self._connections: set[asyncio.Task] = set()
        self._closed = asyncio.Event()

    # --------------------------------------------------------------- lifecycle

    async def start(self) -> None:
        """Spawn the worker fleet, bind the listener, start the health sweep."""
        loop = asyncio.get_running_loop()
        started: list[WorkerHandle] = []
        try:
            for handle in self.workers.values():
                await loop.run_in_executor(None, handle.start)
                started.append(handle)
        except BaseException:
            for handle in started:
                handle.terminate()
            raise
        self._server = await asyncio.start_server(self._on_connection,
                                                  self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]
        self._health_task = asyncio.create_task(self._health_loop())

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    @property
    def draining(self) -> bool:
        return self._draining

    def initiate_drain(self) -> None:
        """Begin graceful fleet shutdown (idempotent, loop thread only)."""
        if self._draining:
            return
        self._draining = True
        self.event_log.emit("drain-initiated", level="warning",
                            workers=len(self.workers),
                            jobs_open=self._open_jobs)
        asyncio.ensure_future(self._shutdown())

    async def wait_closed(self) -> None:
        await self._closed.wait()

    async def _shutdown(self) -> None:
        loop = asyncio.get_running_loop()
        if self._health_task is not None:
            self._health_task.cancel()
        # Fan out the drain; workers finish their queues best-so-far.
        await asyncio.gather(
            *(self._fetch_worker(handle, "POST", "/v1/admin/drain",
                                 body=b"{}", timeout=10.0)
              for handle in self.workers.values() if handle.alive()),
            return_exceptions=True)
        # A drained gateway exits once its queue empties; give each worker
        # its full budget plus slack before escalating to SIGTERM/SIGKILL.
        join_budget = self.config.time_budget + 30.0

        def _reap() -> None:
            deadline = time.monotonic() + join_budget
            for handle in self.workers.values():
                if handle.process is None:
                    continue
                handle.process.join(
                    timeout=max(0.1, deadline - time.monotonic()))
                handle.terminate(join_timeout=5.0)

        await loop.run_in_executor(None, _reap)
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self._connections:
            await asyncio.wait(self._connections, timeout=35.0)
        self._keyer.close()
        self._closed.set()

    # ------------------------------------------------------------ health sweep

    async def _health_loop(self) -> None:
        loop = asyncio.get_running_loop()
        sweep = 0
        while not self._draining:
            await asyncio.sleep(self.config.health_interval)
            sweep += 1
            for shard, handle in self.workers.items():
                if self._draining:
                    return
                if (handle.alive() or shard in self._restarting
                        or shard in self._disabled):
                    continue
                self._restarting.add(shard)
                try:
                    if handle.restarts >= self.config.max_restarts:
                        self._disable_shard(shard)
                        continue
                    await loop.run_in_executor(None, handle.restart)
                    self.counters["worker_restarts"] += 1
                    self._restarts_counter.inc(shard=str(shard))
                    self.event_log.emit("worker-restart", level="warning",
                                        shard=shard, pid=handle.pid,
                                        restarts=handle.restarts)
                except Exception as error:
                    # Startup itself failed; count the attempt and let the
                    # next sweep retry (or give up past max_restarts).
                    self.counters["worker_restarts"] += 1
                    self._restarts_counter.inc(shard=str(shard))
                    self.event_log.emit("worker-restart-failed",
                                        level="error", shard=shard,
                                        error=repr(error))
                finally:
                    self._restarting.discard(shard)
            if sweep % STATS_SWEEP_EVERY == 0:
                await self._resync_open_jobs()

    def _disable_shard(self, shard: int) -> None:
        """Give up on a flapping worker; its range flows to ring successors."""
        if shard in self._disabled or len(self.ring) <= 1:
            return
        self.ring.remove(shard)
        self._disabled.add(shard)
        self.event_log.emit("shard-disabled", level="error", shard=shard,
                            restarts=self.workers[shard].restarts,
                            shards_serving=len(self.ring))

    async def _resync_open_jobs(self) -> None:
        """Refresh the fleet-wide open-job estimate feeding backpressure."""
        total = 0
        for handle in self.workers.values():
            response = await self._fetch_worker(handle, "GET", "/v1/stats",
                                                timeout=5.0)
            if response is None:
                continue
            status, _, body = response
            if status != 200:
                continue
            try:
                total += int(json.loads(body).get("jobs_open", 0))
            except (ValueError, TypeError):  # pragma: no cover - defensive
                continue
        self._open_jobs = total

    # ----------------------------------------------------------------- proxying

    async def _fetch_worker(self, handle: WorkerHandle, method: str,
                            path: str, body: bytes = b"",
                            headers: dict | None = None,
                            timeout: float = http.READ_TIMEOUT):
        """One attempt against one worker; ``None`` on any transport failure."""
        port = handle.port
        if port is None or not handle.alive():
            return None
        try:
            return await http.fetch(handle.host, port, method, path,
                                    body=body, headers=headers,
                                    timeout=timeout)
        except (OSError, ConnectionError, asyncio.TimeoutError,
                asyncio.IncompleteReadError):
            return None

    async def _proxy(self, shard: int, method: str, path: str,
                     body: bytes = b"", headers: dict | None = None,
                     timeout: float = http.READ_TIMEOUT):
        """Proxy with bounded retry; returns ``(status, headers, body, tries)``.

        Safe for submissions too: they are idempotent by content hash, so
        replaying one after a connection failure cannot double-solve.
        Returns ``None`` when the shard stays unreachable -- the caller maps
        that to 503 + ``Retry-After`` and the health sweep brings the worker
        back.
        """
        handle = self.workers.get(shard)
        if handle is None:  # pragma: no cover - defensive
            return None
        for attempt in range(PROXY_ATTEMPTS):
            if attempt:
                self.counters["retried"] += 1
                self._retried.inc()
                # Give the health sweep a chance to respawn the worker.
                await asyncio.sleep(
                    min(1.0, self.config.health_interval * (attempt + 0.5)))
            response = await self._fetch_worker(handle, method, path,
                                                body=body, headers=headers,
                                                timeout=timeout)
            if response is not None:
                return (*response, attempt)
        self.counters["proxy_failures"] += 1
        return None

    @staticmethod
    def _forward_headers(headers: dict) -> dict:
        forwarded = {"Content-Type": "application/json"}
        if "x-client-id" in headers:
            forwarded["X-Client-Id"] = headers["x-client-id"]
        return forwarded

    @staticmethod
    def _decode_proxied(status: int, response_headers: dict, body: bytes):
        """A proxied response as the local dispatch convention expects."""
        content_type = response_headers.get("content-type", "")
        extra = {}
        if "retry-after" in response_headers:
            extra["Retry-After"] = response_headers["retry-after"]
        if content_type.startswith("application/json"):
            try:
                return status, json.loads(body.decode("utf-8")), extra
            except ValueError:  # pragma: no cover - worker never sends this
                pass
        return status, body.decode("utf-8", errors="replace"), extra

    def _unavailable(self, shard: int) -> tuple[int, dict, dict]:
        retry_after = max(1.0, self.config.health_interval * 2)
        return 503, protocol.error_payload(
            f"shard {shard} is restarting", shard=shard,
            retry_after=retry_after), {"Retry-After": f"{retry_after:.3f}"}

    def _record_dispatch(self, job_id: str, record: DispatchRecord) -> None:
        log = self._dispatch_log
        existing = log.get(job_id)
        if existing is not None:
            existing.shard = record.shard
            existing.duration = record.duration
            existing.retries += record.retries
            log.move_to_end(job_id)
            return
        log[job_id] = record
        while len(log) > MAX_DISPATCH_RECORDS:
            log.popitem(last=False)

    # ---------------------------------------------------------------- endpoints

    async def _submit(self, headers: dict, body: bytes,
                      peer: str) -> tuple[int, object, dict]:
        client_id = headers.get("x-client-id") or peer
        arrived = time.time()
        if self._draining:
            self.counters["rejected_draining"] += 1
            return 503, protocol.error_payload("fleet is draining"), {}
        decision = self.admission.admit(client_id, pending=self._open_jobs)
        if not decision:
            self.counters["rejected"] += 1
            self.event_log.emit("admission-rejected", level="warning",
                                client=client_id, reason=decision.reason,
                                pending=self._open_jobs)
            payload = protocol.error_payload(
                f"over quota ({decision.reason})", reason=decision.reason,
                retry_after=decision.retry_after)
            return 429, payload, {"Retry-After": f"{decision.retry_after:.3f}"}
        payload = self._json_body(body)

        def parse_and_key() -> str:
            job = protocol.parse_submit(payload, self.architectures)
            return self._keyer.job_key(job)

        loop = asyncio.get_running_loop()
        job_key = await loop.run_in_executor(None, parse_and_key)
        shard = self.ring.shard_for(job_key)
        response = await self._proxy(shard, "POST", "/v1/jobs", body=body,
                                     headers=self._forward_headers(headers))
        if response is None:
            return self._unavailable(shard)
        status, response_headers, raw, tries = response
        self._record_dispatch(job_key, DispatchRecord(
            shard=shard, start=arrived, duration=time.time() - arrived,
            retries=tries))
        self.counters["dispatched"] += 1
        self._open_jobs += 1
        self._dispatched.inc(shard=str(shard))
        status, decoded, extra = self._decode_proxied(status,
                                                      response_headers, raw)
        if isinstance(decoded, dict):
            decoded["shard"] = shard
        return status, decoded, extra

    async def _job_request(self, job_id: str, suffix: str,
                           query: dict) -> tuple[int, object, dict]:
        """Status/result/trace lookups, proxied to the owning shard."""
        shard = self.ring.shard_for(job_id)
        path = f"/v1/jobs/{job_id}{suffix}"
        timeout = http.READ_TIMEOUT
        if query:
            path += "?" + urllib.parse.urlencode(query)
            try:
                timeout += min(float(query.get("wait", 0.0)), 60.0)
            except ValueError:
                pass  # the worker rejects it with a proper 400
        response = await self._proxy(shard, "GET", path, timeout=timeout)
        if response is None:
            return self._unavailable(shard)
        status, response_headers, raw, _ = response
        status, decoded, extra = self._decode_proxied(status,
                                                      response_headers, raw)
        if isinstance(decoded, dict):
            decoded["shard"] = shard
            if suffix == "/trace" and status == 200:
                self._reroot_trace(job_id, shard, decoded)
        return status, decoded, extra

    def _reroot_trace(self, job_id: str, shard: int, payload: dict) -> None:
        """Wrap the worker's span tree under the dispatcher's dispatch span.

        The worker's gateway owns the ``job`` root in its own process; the
        dispatcher cannot graft into that tracer, so the fleet view is
        synthesised at read time from the dispatch record taken when the
        submission was proxied.  ``repro trace <job>`` then shows
        dispatch -> job -> route -> ... in one tree.
        """
        tree = payload.get("trace")
        record = self._dispatch_log.get(job_id)
        if not isinstance(tree, dict) or record is None:
            return
        tree_end = float(tree.get("start", record.start)) + float(
            tree.get("duration") or 0.0)
        duration = max(record.duration, tree_end - record.start)
        dispatch_span = {
            "name": "dispatch",
            "trace_id": tree.get("trace_id", job_id[:16]),
            "span_id": f"dispatch-{job_id[:16]}",
            "start": record.start,
            "duration": duration,
            "attributes": {"shard": record.shard, "job": job_id,
                           "proxy_seconds": round(record.duration, 6),
                           "retries": record.retries},
            "children": [tree],
        }
        payload["trace"] = dispatch_span
        payload["rendered"] = render_trace(dispatch_span)

    async def _list_jobs(self) -> tuple[int, dict, dict]:
        """Fan out ``GET /v1/jobs`` and merge, tagging each job's shard."""
        merged: list[dict] = []
        for shard, handle in sorted(self.workers.items()):
            response = await self._fetch_worker(handle, "GET", "/v1/jobs",
                                                timeout=10.0)
            if response is None:
                continue
            status, _, body = response
            if status != 200:
                continue
            try:
                jobs = json.loads(body).get("jobs", [])
            except ValueError:  # pragma: no cover - defensive
                continue
            for job in jobs:
                job["shard"] = shard
                merged.append(job)
        return 200, protocol.envelope(jobs=merged), {}

    # -------------------------------------------------------------- aggregation

    async def _gather_worker_json(self, method: str, path: str,
                                  timeout: float = 5.0,
                                  ) -> dict[int, dict | None]:
        """Fan ``method path`` out to every worker; ``None`` per failure."""
        async def one(shard: int, handle: WorkerHandle):
            response = await self._fetch_worker(handle, method, path,
                                                timeout=timeout)
            if response is None:
                return shard, None
            status, _, body = response
            if status != 200:
                return shard, None
            try:
                return shard, json.loads(body)
            except ValueError:  # pragma: no cover - defensive
                return shard, None

        pairs = await asyncio.gather(*(one(shard, handle) for shard, handle
                                       in sorted(self.workers.items())))
        return dict(pairs)

    async def _gather_worker_stats(self) -> dict[int, dict | None]:
        return await self._gather_worker_json("GET", "/v1/stats")

    async def _slo_payload(self) -> tuple[int, dict, dict]:
        """``/v1/slo``: per-shard statuses plus the true fleet merge.

        Shard trackers ship their raw windowed bucket counts, so the fleet
        quantiles come from summed CDFs -- not averaged shard quantiles.
        """
        per_shard = await self._gather_worker_json("GET", "/v1/slo")
        merged = merge_slo_statuses(
            [status for status in per_shard.values() if status is not None])
        return 200, protocol.envelope(
            fleet=merged,
            shards={str(shard): status
                    for shard, status in per_shard.items()}), {}

    def _events_payload(self, query: dict) -> tuple[int, dict, dict]:
        """``/v1/events``: the dispatcher's own control-plane narrative.

        Worker-side job events live on each shard (``/v1/events`` against
        the worker, or the shared ``events_dir`` files); this stream is the
        fleet-level story -- restarts, disables, drains, rejections.
        """
        limit = int(protocol.numeric_param(query, "limit", 50,
                                           minimum=1, maximum=1000))
        level = query.get("level") or None
        if level is not None and level not in LEVELS:
            raise protocol.ProtocolError(
                f"unknown level {level!r}; pick one of {sorted(LEVELS)}")
        events = self.event_log.tail(limit=limit, level=level,
                                     event=query.get("event") or None)
        return 200, protocol.envelope(
            events=events, counts=self.event_log.counts_by_level(),
            dropped=self.event_log.dropped), {}

    async def _profile(self, query: dict) -> tuple[int, object, dict]:
        """``POST /v1/admin/profile``: one shard (``?shard=K``) or the fleet.

        The fleet form profiles every live worker *and* the dispatcher
        process concurrently for the same window, so one call answers
        "where is the whole deployment spending its seconds?".
        """
        seconds = protocol.numeric_param(
            query, "seconds", 1.0, minimum=0.05,
            maximum=obs_profiler.MAX_PROFILE_SECONDS)
        qs = urllib.parse.urlencode(
            {key: query[key] for key in ("seconds", "interval")
             if key in query})
        path = "/v1/admin/profile" + (f"?{qs}" if qs else "")
        fetch_timeout = seconds + 30.0
        if "shard" in query:
            try:
                shard = int(query["shard"])
            except ValueError:
                raise protocol.ProtocolError("shard must be an integer") \
                    from None
            if shard not in self.workers:
                return 404, protocol.error_payload(
                    f"unknown shard {shard}"), {}
            response = await self._proxy(shard, "POST", path,
                                         timeout=fetch_timeout)
            if response is None:
                return self._unavailable(shard)
            status, response_headers, raw, _ = response
            status, decoded, extra = self._decode_proxied(
                status, response_headers, raw)
            if isinstance(decoded, dict):
                decoded["shard"] = shard
            return status, decoded, extra
        loop = asyncio.get_running_loop()
        self.event_log.emit("profile-start", seconds=seconds, shard="*")
        own, per_shard = await asyncio.gather(
            loop.run_in_executor(
                None, lambda: obs_profiler.profile(seconds)),
            self._gather_worker_json("POST", path, timeout=fetch_timeout))
        return 200, protocol.envelope(
            seconds=seconds, dispatcher=own,
            shards={str(shard): report
                    for shard, report in per_shard.items()}), {}

    def _monotone_total(self, metric: str, shard: str,
                        reported: float) -> float:
        """Fold per-shard counter readings into a never-regressing total."""
        base, last = self._monotone.get((metric, shard), (0.0, 0.0))
        if reported < last:
            # The worker restarted and its in-process counter reset; carry
            # everything it had reported before the reset as a base.
            base += last
        self._monotone[(metric, shard)] = (base, reported)
        return base + reported

    def _fleet_section(self) -> dict:
        workers = [handle.describe() for _, handle
                   in sorted(self.workers.items())]
        return {
            "uptime": round(time.monotonic() - self._started, 3),
            "draining": self._draining,
            "workers": len(self.workers),
            "workers_alive": sum(1 for worker in workers if worker["alive"]),
            "shards_serving": self.ring.shards,
            "dispatcher": dict(self.counters),
            "admission": self.admission.stats(),
            "events": self.event_log.counts_by_level(),
            "worker_detail": workers,
        }

    async def _stats_payload(self) -> dict:
        per_shard = await self._gather_worker_stats()
        totals = {"jobs_open": 0, "jobs_known": 0, "throughput": 0.0,
                  "gateway": {}, "telemetry": {}, "cache": {}}
        cache_totals: dict[str, float] = {}
        cache_shared_max: dict[str, float] = {}
        for stats in per_shard.values():
            if stats is None:
                continue
            totals["jobs_open"] += int(stats.get("jobs_open", 0))
            totals["jobs_known"] += int(stats.get("jobs_known", 0))
            totals["throughput"] += float(stats.get("throughput", 0.0))
            for name, value in stats.get("gateway", {}).items():
                totals["gateway"][name] = totals["gateway"].get(name, 0) + value
            for kind, count in stats.get("telemetry", {}).items():
                totals["telemetry"][kind] = (totals["telemetry"].get(kind, 0)
                                             + count)
            for name, value in stats.get("cache", {}).items():
                cache_totals[name] = cache_totals.get(name, 0) + value
                cache_shared_max[name] = max(cache_shared_max.get(name, 0),
                                             value)
        if cache_totals:
            # Counters (hits/stores/...) sum across shards; entries and
            # bytes describe the one shared directory, so take the freshest
            # (max) view instead of multiply counting it.
            totals["cache"] = {
                name: (cache_shared_max[name]
                       if name in ("entries", "total_bytes", "max_bytes")
                       else value)
                for name, value in cache_totals.items() if name != "hit_rate"}
        totals["throughput"] = round(totals["throughput"], 4)
        return {
            "fleet": self._fleet_section(),
            "totals": totals,
            "shards": {str(shard): stats
                       for shard, stats in per_shard.items()},
        }

    _FLEET_COUNTER_HELP = {
        "requests": "HTTP requests handled by this shard",
        "submitted": "Jobs accepted for solving on this shard",
        "deduplicated": "Submissions answered by an existing job record",
        "completed": "Jobs finished with a result",
        "failed": "Jobs finished with an error",
        "rejected_draining": "Submissions refused during drain",
        "bad_requests": "Requests rejected as malformed",
        "records_pruned": "Finished job records evicted from memory",
    }

    async def _metrics_text(self) -> str:
        """The fleet ``/metrics``: dispatcher instruments + per-shard mirrors."""
        from repro import __version__

        registry = self.metrics
        registry.gauge("repro_cluster_info",
                       "Fleet identity and topology.").set(
            1, version=__version__,
            wire_version=str(protocol.WIRE_VERSION),
            workers=str(len(self.workers)))
        registry.gauge("repro_cluster_uptime_seconds",
                       "Seconds since the dispatcher started").set(
            round(time.monotonic() - self._started, 3))
        registry.gauge("repro_cluster_draining",
                       "Whether a fleet drain is in progress").set(
            int(self._draining))
        registry.gauge("repro_cluster_workers",
                       "Configured shard workers").set(len(self.workers))
        registry.gauge("repro_cluster_workers_alive",
                       "Shard worker processes currently alive").set(
            sum(1 for handle in self.workers.values() if handle.alive()))
        registry.gauge("repro_cluster_jobs_open",
                       "Fleet-wide open jobs (health-sweep estimate)").set(
            self._open_jobs)
        for name in ("requests", "rejected", "rejected_draining",
                     "bad_requests", "proxy_failures"):
            registry.counter(f"repro_cluster_{name}_total",
                             f"Dispatcher {name.replace('_', ' ')}"
                             ).set_total(self.counters[name])
        admission = self.admission.stats()
        registry.counter("repro_cluster_admission_admitted_total",
                         "Submissions admitted by the fleet controller"
                         ).set_total(admission["admitted"])
        rejected = registry.counter(
            "repro_cluster_admission_rejected_total",
            "Submissions rejected by the fleet controller, by reason")
        for reason in ("quota", "backpressure"):
            rejected.set_total(admission[f"rejected_{reason}"], reason=reason)
        per_shard, slo_statuses = await asyncio.gather(
            self._gather_worker_stats(),
            self._gather_worker_json("GET", "/v1/slo"))
        alive_gauge = registry.gauge("repro_fleet_worker_up",
                                     "Whether each shard answered /v1/stats")
        open_gauge = registry.gauge("repro_fleet_jobs_open",
                                    "Open jobs per shard")
        for shard, stats in per_shard.items():
            label = str(shard)
            alive_gauge.set(int(stats is not None), shard=label)
            if stats is None:
                continue
            open_gauge.set(int(stats.get("jobs_open", 0)), shard=label)
            # Counters are mirrored through a monotone fold: a restarted
            # worker reports from zero again, and a scrape must never see a
            # counter regress (promcheck and rate() both assume it).
            for name, value in stats.get("gateway", {}).items():
                registry.counter(
                    f"repro_fleet_{name}_total",
                    self._FLEET_COUNTER_HELP.get(name, name)).set_total(
                    self._monotone_total(f"gateway.{name}", label,
                                         float(value)), shard=label)
            cache = stats.get("cache")
            if cache:
                for key in ("hits", "misses", "stores", "rejected",
                            "evictions"):
                    registry.counter(
                        f"repro_fleet_cache_{key}_total",
                        f"Shared-cache {key} observed by each shard"
                        ).set_total(self._monotone_total(
                            f"cache.{key}", label, float(cache[key])),
                            shard=label)
        merged = merge_slo_statuses(
            [status for status in slo_statuses.values() if status is not None])
        if merged is not None:
            mirror_slo(registry, merged)
        emitted = registry.counter(
            "repro_events_total",
            "Dispatcher operational events emitted, by level")
        for level, count in sorted(self.event_log.counts_by_level().items()):
            emitted.set_total(count, level=level)
        return registry.render(first=("repro_cluster_info",))

    # --------------------------------------------------------------- HTTP layer

    def _on_connection(self, reader: asyncio.StreamReader,
                       writer: asyncio.StreamWriter) -> None:
        task = asyncio.create_task(self._handle_connection(reader, writer))
        self._connections.add(task)
        task.add_done_callback(self._connections.discard)

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        peername = writer.get_extra_info("peername")
        peer = f"{peername[0]}:{peername[1]}" if peername else "unknown"
        try:
            try:
                request = await asyncio.wait_for(http.read_request(reader),
                                                 http.READ_TIMEOUT)
            except protocol.ProtocolError as error:
                self.counters["bad_requests"] += 1
                request = None
                status = error.http_status
                payload, extra = protocol.error_payload(str(error)), {}
            else:
                if request is None:
                    return
            if request is not None:
                method, path, query, headers, body = request
                self.counters["requests"] += 1
                try:
                    status, payload, extra = await self._dispatch(
                        method, path, query, headers, body, peer)
                except protocol.ProtocolError as error:
                    self.counters["bad_requests"] += 1
                    status = error.http_status
                    payload, extra = protocol.error_payload(str(error)), {}
                except Exception as error:  # never leak a traceback
                    status, extra = 500, {}
                    payload = protocol.error_payload(
                        f"internal error: {error!r}")
            if isinstance(payload, str):
                await http.write_response(writer, status, payload.encode(),
                                          "text/plain; charset=utf-8", extra)
            else:
                body_bytes = json.dumps(payload, sort_keys=True).encode()
                await http.write_response(writer, status, body_bytes,
                                          "application/json", extra)
        except (asyncio.TimeoutError, asyncio.IncompleteReadError,
                ConnectionError):
            pass  # client went away; nothing to answer
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass

    @staticmethod
    def _json_body(body: bytes) -> dict:
        if not body:
            return {}
        try:
            payload = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, ValueError):
            raise protocol.ProtocolError(
                "request body is not valid JSON") from None
        if not isinstance(payload, dict):
            raise protocol.ProtocolError("request body must be a JSON object")
        return payload

    async def _dispatch(self, method: str, path: str, query: dict,
                        headers: dict, body: bytes, peer: str):
        if path == "/healthz" and method == "GET":
            from repro import __version__
            return 200, protocol.envelope(
                status="draining" if self._draining else "ok",
                role="dispatcher", version=__version__,
                workers=len(self.workers),
                workers_alive=sum(1 for handle in self.workers.values()
                                  if handle.alive()),
                uptime=round(time.monotonic() - self._started, 3)), {}
        if path == "/v1/cluster" and method == "GET":
            return 200, protocol.envelope(
                fleet=self._fleet_section(),
                ring={"replicas": self.config.ring_replicas,
                      "shards": self.ring.shards}), {}
        if path == "/metrics" and method == "GET":
            return 200, await self._metrics_text(), {}
        if path == "/v1/routers" and method == "GET":
            return 200, protocol.envelope(
                routers=describe_routers(query.get("capability"))), {}
        if path == "/v1/devices" and method == "GET":
            return 200, protocol.envelope(
                devices=device_records(),
                architectures=sorted(self.architectures)), {}
        if path == "/v1/stats" and method == "GET":
            return 200, protocol.envelope(await self._stats_payload()), {}
        if path == "/v1/slo" and method == "GET":
            return await self._slo_payload()
        if path == "/v1/events" and method == "GET":
            return self._events_payload(query)
        if path == "/v1/admin/profile" and method == "POST":
            return await self._profile(query)
        if path == "/v1/jobs" and method == "POST":
            return await self._submit(headers, body, peer)
        if path == "/v1/jobs" and method == "GET":
            return await self._list_jobs()
        if path.startswith("/v1/jobs/") and method == "GET":
            job_id = path[len("/v1/jobs/"):]
            suffix = ""
            for candidate in ("/result", "/trace"):
                if job_id.endswith(candidate):
                    suffix = candidate
                    job_id = job_id[:-len(candidate)]
                    break
            return await self._job_request(job_id, suffix, query)
        if path == "/v1/admin/drain" and method == "POST":
            self.initiate_drain()
            return 200, protocol.envelope(draining=True,
                                          workers=len(self.workers)), {}
        return 404, protocol.error_payload(
            f"no such endpoint: {method} {path}"), {}


async def serve_fleet(dispatcher: ClusterDispatcher,
                      install_signal_handlers: bool = True,
                      on_started=None) -> None:
    """Start the fleet and block until it has drained and closed.

    The fleet analogue of :func:`repro.server.app.serve`: SIGTERM/SIGINT
    trigger a fleet-wide drain (every worker finishes its queue best-so-far
    before the dispatcher closes).  ``on_started`` is called with the
    dispatcher once the public port is bound.
    """
    await dispatcher.start()
    if install_signal_handlers:
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(signum, dispatcher.initiate_drain)
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                pass  # non-POSIX platforms / non-main threads
    if on_started is not None:
        on_started(dispatcher)
    await dispatcher.wait_closed()


class FleetThread:
    """Run a dispatcher fleet on a daemon thread: tests, examples, benches.

    Usage::

        with FleetThread(FleetConfig(workers=4, cache_dir=...)) as fleet:
            client = RoutingClient(port=fleet.port)
            ...

    Exiting the context drains the fleet (workers finish their queues) and
    joins the thread.
    """

    def __init__(self, config: FleetConfig, **dispatcher_kwargs) -> None:
        self._config = config
        self._kwargs = dispatcher_kwargs
        self.dispatcher: ClusterDispatcher | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._ready = threading.Event()
        self._startup_error: BaseException | None = None

    def _run(self) -> None:
        self._loop = asyncio.new_event_loop()
        asyncio.set_event_loop(self._loop)
        try:
            self._loop.run_until_complete(self._main())
        finally:
            self._loop.close()

    async def _main(self) -> None:
        try:
            self.dispatcher = ClusterDispatcher(self._config, **self._kwargs)
            await self.dispatcher.start()
        except BaseException as error:
            self._startup_error = error
            self._ready.set()
            raise
        self._ready.set()
        await self.dispatcher.wait_closed()

    def start(self) -> "FleetThread":
        self._thread.start()
        self._ready.wait(timeout=STARTUP_JOIN_TIMEOUT)
        if self._startup_error is not None:
            raise RuntimeError("fleet failed to start") from self._startup_error
        if self.dispatcher is None:
            raise RuntimeError(
                f"fleet did not start within {STARTUP_JOIN_TIMEOUT:.0f}s")
        return self

    @property
    def host(self) -> str:
        assert self.dispatcher is not None
        return self.dispatcher.host

    @property
    def port(self) -> int:
        assert self.dispatcher is not None
        return self.dispatcher.port

    @property
    def url(self) -> str:
        assert self.dispatcher is not None
        return self.dispatcher.url

    def stop(self, timeout: float = 120.0) -> None:
        if self._loop is not None and self.dispatcher is not None \
                and self._thread.is_alive():
            try:
                self._loop.call_soon_threadsafe(self.dispatcher.initiate_drain)
            except RuntimeError:
                pass  # the loop closed between is_alive() and the call
        self._thread.join(timeout=timeout)

    def __enter__(self) -> "FleetThread":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()


#: Seconds FleetThread.start waits for the whole fleet (N worker
#: handshakes) before giving up.
STARTUP_JOIN_TIMEOUT = 120.0
