"""repro.cluster: a sharded multi-process serving fleet behind one dispatcher.

One asyncio :class:`ClusterDispatcher` owns the public socket and consistent-
hashes every submission's job content hash onto N shard workers -- each a
full :class:`~repro.server.app.RoutingGateway` process -- so identical jobs
from any client always reach the same worker and the gateway's cross-client
dedup holds fleet-wide.  Workers share one disk result cache; the dispatcher
health-checks and restarts crashed workers on their original shard ids,
aggregates fleet ``/metrics`` and ``/v1/stats``, and fans out graceful
drain.  ``repro serve --workers N`` is the CLI face of this package.
"""

from repro.cluster.config import FleetConfig
from repro.cluster.dispatcher import (ClusterDispatcher, FleetThread,
                                      serve_fleet)
from repro.cluster.hashring import HashRing
from repro.cluster.worker import WorkerHandle, worker_main

__all__ = [
    "ClusterDispatcher",
    "FleetConfig",
    "FleetThread",
    "HashRing",
    "WorkerHandle",
    "serve_fleet",
    "worker_main",
]
