"""Fleet topology and per-worker configuration.

One :class:`FleetConfig` describes the whole deployment: how many shard
workers, where the dispatcher listens, and every knob a worker needs to
build its :class:`~repro.service.BatchRoutingService` +
:class:`~repro.server.app.RoutingGateway` pair.  The config is all plain
data so it pickles across the ``multiprocessing`` spawn boundary.

Two invariants matter for fleet-wide dedup:

* every worker must key jobs identically, so they all get the *same*
  ``time_budget`` default and ``portfolio`` namespace -- and the
  dispatcher's keyer service (which only computes
  :meth:`~repro.service.BatchRoutingService.job_key`, never solves) is
  built from the same fields;
* the disk cache directory is *shared* across shards; each worker stamps
  its entries with its shard id and serialises writers through the cache's
  file lock (see :class:`repro.service.ResultCache`).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class FleetConfig:
    """Everything needed to start a dispatcher and its shard workers."""

    #: Number of gateway/solver worker processes (ring shards).
    workers: int = 4
    #: Dispatcher bind address.  Workers always bind loopback.
    host: str = "127.0.0.1"
    #: Dispatcher port; 0 picks a free one.
    port: int = 0
    #: Default per-job budget, seconds -- part of the job key, so it is
    #: fleet-wide, not per worker.
    time_budget: float = 10.0
    #: Per-worker service pool size (``None``: the pool's own default).
    pool_workers: int | None = None
    #: Per-worker service pool mode (auto | process | thread | serial).
    pool_mode: str = "auto"
    #: Shared on-disk result cache directory; ``None`` disables caching
    #: (consistent hashing alone still guarantees fleet-wide single-solve,
    #: but results then die with their worker).
    cache_dir: str | None = ".repro-cache"
    #: LRU byte bound on the shared cache (``None``: unbounded).
    cache_max_bytes: int | None = None
    #: Portfolio entrants raced per job (``None``: each job's own router).
    portfolio: tuple[str, ...] | None = None
    #: Dispatcher-level admission: per-client token rate and burst.
    rate: float = 20.0
    burst: float = 40.0
    #: Dispatcher-level backpressure bound on open jobs across the fleet.
    max_pending: int = 256
    #: Per-worker trace JSONL directory (``None`` disables persistence).
    #: Shared across the fleet: each worker writes ``traces.shard-N.jsonl``.
    trace_dir: str | None = None
    #: Structured-event JSONL directory, shared like ``trace_dir`` (``None``
    #: keeps events in memory only, still served at ``/v1/events``).
    events_dir: str | None = None
    #: SLO objectives, as plain dicts so the config pickles across the
    #: spawn boundary (see :meth:`repro.obs.slo.SloObjective.to_dict`).
    #: Empty uses the default objective on every worker.
    slos: tuple = ()
    #: Tail-sampling keep probability for fast, successful traces
    #: (``None`` disables sampling: every trace is retained).
    trace_sample_rate: float | None = None
    #: Root duration (seconds) at or past which a trace is always kept.
    slow_trace_seconds: float | None = None
    #: SAT solve core on every shard worker ("python" | "native" | "auto";
    #: ``None`` defers to each worker's ``$REPRO_SAT_BACKEND`` / auto).
    #: Fleet-wide so shards make identical backend choices.
    solver_backend: str | None = None
    #: Seconds between dispatcher health sweeps over the worker processes.
    health_interval: float = 0.5
    #: Virtual nodes per shard on the consistent-hash ring.
    ring_replicas: int = 64
    #: Most automatic restarts per worker before the dispatcher gives up on
    #: it (its key range then flows to ring successors).
    max_restarts: int = 16
    #: Extra gateway kwargs applied to every worker (tests use this).
    gateway_options: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError("a fleet needs at least one worker")
        if self.time_budget <= 0:
            raise ValueError("time_budget must be positive")
        if self.health_interval <= 0:
            raise ValueError("health_interval must be positive")

    def shard_ids(self) -> list[int]:
        return list(range(self.workers))
