"""Anytime linear SAT->UNSAT MaxSAT search.

This is the strategy SATMAP relies on in the paper (via Open-WBO-Inc-MCS): the
solver repeatedly asks the underlying SAT solver for a model of the hard
clauses, measures its cost (total weight of falsified soft clauses), adds a
bound "cost must be strictly smaller", and repeats.  The last model found
before the formula becomes unsatisfiable is optimal.  Crucially, the loop can
be interrupted by a time budget at any point and still returns the best model
seen so far -- this is what makes the approach usable on circuits where the
optimum is out of reach.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.maxsat.cardinality import GeneralizedTotalizer, Totalizer
from repro.maxsat.wcnf import WcnfBuilder, clause_satisfied
from repro.sat.solver import SatSolver, SolverStatus


@dataclass
class LinearSearchOutcome:
    """Raw outcome of a linear-search run."""

    found_model: bool
    optimal: bool
    cost: int
    model: dict[int, bool]
    sat_calls: int
    elapsed: float


class LinearSearchSolver:
    """Model-improving linear search with a totalizer-based bound.

    For weighted instances whose maximum soft weight exceeds
    ``max_bound_weight``, the bound structure is built over *clustered*
    weights (each weight rescaled into ``1..max_bound_weight``), the same
    approximation Open-WBO-Inc applies to large weighted instances.  Models
    are still compared by their true cost, but optimality is no longer
    claimed on termination because the coarse bound may hide a slightly
    better solution.  Instances with small weights are unaffected.
    """

    def __init__(self, builder: WcnfBuilder, max_bound_weight: int = 32) -> None:
        if max_bound_weight < 1:
            raise ValueError("max_bound_weight must be at least 1")
        self.builder = builder
        self.max_bound_weight = max_bound_weight

    def solve(
        self,
        time_budget: float | None = None,
        per_call_conflict_budget: int | None = None,
    ) -> LinearSearchOutcome:
        """Run the search under an optional wall-clock budget (seconds)."""
        start = time.monotonic()
        builder = self.builder
        sat = SatSolver()
        sat.ensure_vars(builder.num_vars)
        for clause in builder.hard:
            sat.add_clause(clause)
        self._loaded_hard = len(builder.hard)

        # Relax each soft clause with a fresh selector: clause OR selector.
        # The selector being true means the soft clause is (possibly) violated.
        weighted_selectors: list[tuple[int, int]] = []
        for soft in builder.soft:
            if len(soft.literals) == 1:
                # For unit soft clauses the negation of the literal is its own
                # selector; no auxiliary variable or clause is needed.
                selector = -soft.literals[0]
                if abs(selector) > sat.num_vars:
                    sat.ensure_vars(abs(selector))
            else:
                selector_var = builder.new_var()
                sat.ensure_vars(builder.num_vars)
                sat.add_clause(soft.literals + [selector_var])
                selector = selector_var
            weighted_selectors.append((selector, soft.weight))

        remaining = self._remaining(start, time_budget)
        result = sat.solve(time_budget=remaining, conflict_budget=per_call_conflict_budget)
        sat_calls = 1
        if result.status is not SolverStatus.SAT:
            # UNSAT here means the hard clauses themselves have no model, which
            # is a definitive answer; UNKNOWN means the budget ran out.
            return LinearSearchOutcome(
                found_model=False,
                optimal=result.status is SolverStatus.UNSAT,
                cost=-1,
                model={},
                sat_calls=sat_calls,
                elapsed=time.monotonic() - start,
            )

        best_model = dict(result.model)
        best_cost = builder.cost_of_model(best_model)
        if best_cost == 0 or not builder.soft:
            return LinearSearchOutcome(True, True, best_cost, best_model, sat_calls,
                                       time.monotonic() - start)

        # The bound structure can itself be expensive to build; if the budget
        # is already gone, settle for the first model (anytime behaviour).
        remaining = self._remaining(start, time_budget)
        if remaining is not None and remaining <= 0:
            return LinearSearchOutcome(True, False, best_cost, best_model, sat_calls,
                                       time.monotonic() - start)

        # Build the bound structure once.  Its clauses are appended to
        # builder.hard, so sync them into the SAT solver afterwards.  Large
        # weights are clustered so the generalized totalizer stays
        # pseudo-polynomial in a small bound (Open-WBO-Inc's approximation).
        weighted = builder.is_weighted()
        scaled_weights = self._cluster_weights([w for _, w in weighted_selectors])
        approximate = scaled_weights is not None
        if weighted:
            bound_weights = (scaled_weights if approximate
                             else [w for _, w in weighted_selectors])
            gte = GeneralizedTotalizer(
                builder,
                [(sel, weight) for (sel, _), weight
                 in zip(weighted_selectors, bound_weights)])
            totalizer = None
        else:
            bound_weights = [1] * len(weighted_selectors)
            totalizer = Totalizer(builder, [sel for sel, _ in weighted_selectors])
            gte = None
        self._sync_hard_clauses(sat, builder)

        best_bound_cost = self._bound_cost(best_model, builder, bound_weights)
        optimal = False
        while True:
            if best_bound_cost == 0:
                # All soft obligations the bound can see are satisfied.
                optimal = best_cost == 0
                break
            # Tighten: total selector weight must be strictly below the bound
            # cost of the best model so far.
            if weighted:
                self._enforce_weighted_bound(sat, builder, gte, best_bound_cost)
            else:
                self._enforce_unweighted_bound(sat, builder, totalizer, best_bound_cost)
            self._sync_hard_clauses(sat, builder)

            remaining = self._remaining(start, time_budget)
            if remaining is not None and remaining <= 0:
                break
            result = sat.solve(time_budget=remaining,
                               conflict_budget=per_call_conflict_budget)
            sat_calls += 1
            if result.status is SolverStatus.SAT:
                cost = builder.cost_of_model(result.model)
                bound_cost = self._bound_cost(result.model, builder, bound_weights)
                if cost < best_cost:
                    best_cost = cost
                    best_model = dict(result.model)
                if bound_cost >= best_bound_cost:
                    # The bound forces strictly decreasing bound cost; if it
                    # did not decrease something is inconsistent, so stop
                    # rather than loop.
                    break
                best_bound_cost = bound_cost
                if best_cost == 0:
                    optimal = True
                    break
            elif result.status is SolverStatus.UNSAT:
                optimal = not approximate
                break
            else:  # UNKNOWN: budget exhausted
                break

        return LinearSearchOutcome(
            found_model=True,
            optimal=optimal,
            cost=best_cost,
            model=best_model,
            sat_calls=sat_calls,
            elapsed=time.monotonic() - start,
        )

    # ------------------------------------------------------------------ utils

    def _cluster_weights(self, weights: list[int]) -> list[int] | None:
        """Rescale weights into ``1..max_bound_weight`` when they are large.

        Returns ``None`` when no rescaling is needed (the bound is then exact).
        """
        if not weights:
            return None
        largest = max(weights)
        if largest <= self.max_bound_weight:
            return None
        scale = self.max_bound_weight / largest
        return [max(1, round(weight * scale)) for weight in weights]

    @staticmethod
    def _bound_cost(model: dict[int, bool], builder: WcnfBuilder,
                    bound_weights: list[int]) -> int:
        """Cost of ``model`` as the bound structure measures it."""
        total = 0
        for soft, weight in zip(builder.soft, bound_weights):
            if not clause_satisfied(soft.literals, model):
                total += weight
        return total

    def _sync_hard_clauses(self, sat: SatSolver, builder: WcnfBuilder) -> None:
        """Feed hard clauses added to the builder since the last sync."""
        sat.ensure_vars(builder.num_vars)
        for clause in builder.hard[self._loaded_hard:]:
            sat.add_clause(clause)
        self._loaded_hard = len(builder.hard)

    def _enforce_unweighted_bound(self, sat: SatSolver, builder: WcnfBuilder,
                                  totalizer: Totalizer, best_cost: int) -> None:
        totalizer.enforce_at_most(best_cost - 1)

    def _enforce_weighted_bound(self, sat: SatSolver, builder: WcnfBuilder,
                                gte: GeneralizedTotalizer, best_cost: int) -> None:
        gte.enforce_weight_less_than(best_cost)

    @staticmethod
    def _remaining(start: float, time_budget: float | None) -> float | None:
        if time_budget is None:
            return None
        return time_budget - (time.monotonic() - start)
