"""Anytime linear SAT->UNSAT MaxSAT search.

This is the strategy SATMAP relies on in the paper (via Open-WBO-Inc-MCS): the
solver repeatedly asks the underlying SAT solver for a model of the hard
clauses, measures its cost (total weight of falsified soft clauses), adds a
bound "cost must be strictly smaller", and repeats.  The last model found
before the formula becomes unsatisfiable is optimal.  Crucially, the loop can
be interrupted by a time budget at any point and still returns the best model
seen so far -- this is what makes the approach usable on circuits where the
optimum is out of reach.

Two execution modes share one code path:

* **From scratch** (no session): every ``solve()`` call builds a fresh
  :class:`~repro.sat.solver.SatSolver`, loads the hard clauses, relaxes the
  soft clauses, and discards everything at the end -- the original behaviour.
* **Session-backed**: with a :class:`~repro.sat.session.SatSession` the hard
  clauses stream into one live solver exactly once, the soft-clause selectors
  and the totalizer bound structure are built exactly once, and cost bounds
  are expressed as *assumptions* on totalizer outputs instead of permanent
  unit clauses.  Repeated ``solve()`` calls (with different base assumptions,
  e.g. a slicing re-solve under a new pinned initial map) therefore reuse the
  formula, the relaxation, and everything the solver has learnt.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.maxsat.cardinality import GeneralizedTotalizer, Totalizer
from repro.maxsat.wcnf import WcnfBuilder, clause_satisfied
from repro.sat.session import SatSession
from repro.sat.backends import create_solver
from repro.sat.solver import SatSolver, SolverStatus

#: How many soft clauses are relaxed between wall-clock budget checks.
_SELECTOR_BUDGET_STRIDE = 128


@dataclass
class LinearSearchOutcome:
    """Raw outcome of a linear-search run."""

    found_model: bool
    optimal: bool
    cost: int
    model: dict[int, bool]
    sat_calls: int
    elapsed: float
    #: True when the search stopped because an *external* upper bound (from
    #: ``upper_bound``/``bound_hook``) clipped it: the instance has no model
    #: cheaper than that bound, but nothing is known about models at or above
    #: it.  A pruned run with ``found_model=False`` must not be read as
    #: hard-clause unsatisfiability.
    pruned: bool = False


class LinearSearchSolver:
    """Model-improving linear search with a totalizer-based bound.

    For weighted instances whose maximum soft weight exceeds
    ``max_bound_weight``, the bound structure is built over *clustered*
    weights (each weight rescaled into ``1..max_bound_weight``), the same
    approximation Open-WBO-Inc applies to large weighted instances.  Models
    are still compared by their true cost, but optimality is no longer
    claimed on termination because the coarse bound may hide a slightly
    better solution.  Instances with small weights are unaffected.
    """

    def __init__(self, builder: WcnfBuilder, max_bound_weight: int = 32,
                 session: SatSession | None = None,
                 solver_backend: str | None = None) -> None:
        if max_bound_weight < 1:
            raise ValueError("max_bound_weight must be at least 1")
        self.builder = builder
        self.max_bound_weight = max_bound_weight
        self.session = session
        #: Solve core for the session-less path (None: env / auto); when a
        #: session is present its own backend wins.
        self.solver_backend = solver_backend
        self._reset_state()

    def _reset_state(self) -> None:
        self._sat: SatSolver | None = None
        self._loaded_hard = 0
        self._weighted_selectors: list[tuple[int, int]] = []
        self._weighted = False
        self._approximate = False
        self._bound_weights: list[int] = []
        self._totalizer: Totalizer | None = None
        self._gte: GeneralizedTotalizer | None = None
        self._session_generation = (self.session.generation
                                    if self.session is not None else 0)

    # ---------------------------------------------------------------- solve

    def solve(
        self,
        time_budget: float | None = None,
        per_call_conflict_budget: int | None = None,
        assumptions: list[int] | None = None,
        upper_bound: int | None = None,
        bound_hook=None,
    ) -> LinearSearchOutcome:
        """Run the search under an optional wall-clock budget (seconds).

        ``assumptions`` are base literals assumed in every SAT call of this
        run; session-backed callers use them to pin per-call context (a
        slice's inherited initial map) without touching the formula.

        ``upper_bound`` and ``bound_hook`` connect the run to an *external*
        incumbent (cube-and-conquer racing): only models strictly cheaper
        than the bound are searched for.  ``bound_hook`` is called once per
        SAT iteration with the run's best true cost so far (or ``None``);
        whatever it returns (or ``None``) is merged with ``upper_bound`` into
        the effective bound, so a shared incumbent both tightens this run and
        is tightened by it.  External bounds are expressed in true-cost units
        and are therefore only *used* when the internal bound structure is
        exact (not weight-clustered); publication through the hook is always
        sound because every published cost belongs to a found model.  A run
        that ends UNSAT under an external bound tighter than its own best is
        reported with ``pruned=True``.
        """
        start = time.monotonic()
        builder = self.builder
        base_assumptions = list(assumptions or [])
        external = upper_bound is not None or bound_hook is not None
        if self.session is None:
            # From-scratch semantics: nothing survives between calls.
            self._reset_state()
        sat = self._attach_solver()

        # Relax the soft clauses (budget-aware: large encodings can spend the
        # whole budget here, and the anytime contract must still hold).
        if not self._prepare_selectors(start, time_budget):
            return LinearSearchOutcome(
                found_model=False, optimal=False, cost=-1, model={},
                sat_calls=0, elapsed=time.monotonic() - start)

        # With an external bound the very first SAT call can already carry
        # bound assumptions -- an incumbent-dominated cube is then refuted in
        # one (usually cheap) UNSAT call without ever enumerating a model.
        first_assumptions = list(base_assumptions)
        first_bounded = False
        if external and builder.soft:
            self._prepare_bound(sat)
            target = self._external_bound(upper_bound, bound_hook, None)
            if target is not None:
                if target <= 0:
                    # The incumbent is already perfect; nothing to search for.
                    return LinearSearchOutcome(
                        found_model=False, optimal=True, cost=-1, model={},
                        sat_calls=0, elapsed=time.monotonic() - start,
                        pruned=True)
                first_assumptions += self._bound_assumptions(target)
                first_bounded = True

        remaining = self._remaining(start, time_budget)
        result = sat.solve(assumptions=first_assumptions, time_budget=remaining,
                           conflict_budget=per_call_conflict_budget)
        sat_calls = 1
        if result.status is not SolverStatus.SAT:
            # UNSAT here means the hard clauses (under the base assumptions)
            # have no model, which is a definitive answer -- unless the call
            # was bound-clipped, in which case it only proves no model beats
            # the incumbent.  UNKNOWN means the budget ran out.
            return LinearSearchOutcome(
                found_model=False,
                optimal=result.status is SolverStatus.UNSAT,
                cost=-1,
                model={},
                sat_calls=sat_calls,
                elapsed=time.monotonic() - start,
                pruned=(result.status is SolverStatus.UNSAT and first_bounded),
            )

        best_model = dict(result.model)
        best_cost = builder.cost_of_model(best_model)
        if best_cost == 0 or not builder.soft:
            if bound_hook is not None:
                bound_hook(best_cost)
            return LinearSearchOutcome(True, True, best_cost, best_model, sat_calls,
                                       time.monotonic() - start)

        # The bound structure can itself be expensive to build; if the budget
        # is already gone, settle for the first model (anytime behaviour).
        remaining = self._remaining(start, time_budget)
        if remaining is not None and remaining <= 0:
            if bound_hook is not None:
                bound_hook(best_cost)
            return LinearSearchOutcome(True, False, best_cost, best_model, sat_calls,
                                       time.monotonic() - start)

        self._prepare_bound(sat)

        best_bound_cost = self._bound_cost(best_model, builder, self._bound_weights)
        optimal = False
        pruned = False
        while True:
            if best_bound_cost == 0:
                # All soft obligations the bound can see are satisfied.
                optimal = best_cost == 0
                break
            # Tighten: total selector weight must be strictly below the bound
            # cost of the best model so far -- or below the shared external
            # incumbent when that is tighter.  The bound is an assumption, so
            # a later run on the same live solver starts unbounded again; the
            # formula itself no longer grows inside this loop.
            target = best_bound_cost
            if external:
                shared = self._external_bound(upper_bound, bound_hook, best_cost)
                if shared is not None and shared < target:
                    target = shared
                if target <= 0:
                    # The shared incumbent is already perfect; this run's
                    # best model cannot beat it.
                    optimal = True
                    pruned = True
                    break
            bound_assumptions = self._bound_assumptions(target)

            remaining = self._remaining(start, time_budget)
            if remaining is not None and remaining <= 0:
                break
            result = sat.solve(assumptions=base_assumptions + bound_assumptions,
                               time_budget=remaining,
                               conflict_budget=per_call_conflict_budget)
            sat_calls += 1
            if result.status is SolverStatus.SAT:
                cost = builder.cost_of_model(result.model)
                bound_cost = self._bound_cost(result.model, builder, self._bound_weights)
                if cost < best_cost:
                    best_cost = cost
                    best_model = dict(result.model)
                if bound_cost >= target:
                    # The bound forces strictly decreasing bound cost; if it
                    # did not decrease something is inconsistent, so stop
                    # rather than loop.
                    break
                best_bound_cost = bound_cost
                if best_cost == 0:
                    optimal = True
                    break
            elif result.status is SolverStatus.UNSAT:
                optimal = not self._approximate
                # UNSAT under a bound tighter than our own proves only that
                # nothing beats the incumbent here, not local optimality.
                pruned = optimal and target < best_bound_cost
                break
            else:  # UNKNOWN: budget exhausted
                break

        if bound_hook is not None:
            bound_hook(best_cost)
        return LinearSearchOutcome(
            found_model=True,
            optimal=optimal,
            cost=best_cost,
            model=best_model,
            sat_calls=sat_calls,
            elapsed=time.monotonic() - start,
            pruned=pruned,
        )

    # ------------------------------------------------------------ formula IO

    def _attach_solver(self) -> SatSolver:
        """The solver holding the hard clauses: session-backed or fresh."""
        if self.session is not None:
            if self.session.generation != self._session_generation:
                # The session was reset: its solver lost our relaxation
                # clauses, so the prepared selectors and bound structure are
                # meaningless.  Start over on the fresh solver.
                self._reset_state()
            # Stream (idempotently) through the builder: clauses the session
            # has already seen are not replayed.
            self.builder.attach_sink(self.session)
            self._sat = self.session.solver
            self._loaded_hard = len(self.builder.hard)
            return self._sat
        if self._sat is None:
            sat = create_solver(self.solver_backend)
            sat.ensure_vars(self.builder.num_vars)
            for clause in self.builder.hard:
                sat.add_clause(clause)
            self._loaded_hard = len(self.builder.hard)
            self._sat = sat
        return self._sat

    def _sync_hard_clauses(self, sat: SatSolver, builder: WcnfBuilder) -> None:
        """Feed hard clauses added to the builder since the last sync."""
        if self.session is not None:
            builder.sync_sink()
            self._loaded_hard = len(builder.hard)
            return
        sat.ensure_vars(builder.num_vars)
        for clause in builder.hard[self._loaded_hard:]:
            sat.add_clause(clause)
        self._loaded_hard = len(builder.hard)

    def _add_relaxation_clause(self, sat: SatSolver, clause: list[int]) -> None:
        """Selector relaxation clauses go straight to the solver.

        They are search scaffolding, not part of the instance, so they never
        enter ``builder.hard`` (keeping exports and clause counts faithful).
        """
        if self.session is not None:
            self.session.ensure_vars(self.builder.num_vars)
            self.session.add_hard(clause)
        else:
            sat.ensure_vars(self.builder.num_vars)
            sat.add_clause(clause)

    # ----------------------------------------------------------- relaxation

    def _prepare_selectors(self, start: float, time_budget: float | None) -> bool:
        """Relax each soft clause with a selector; ``False`` if the budget died.

        The selector being true means the soft clause is (possibly) violated.
        Session-backed runs prepare once and reuse: a second call with the
        same soft clauses skips straight through.  Budget expiry keeps the
        selectors already built, so a later call resumes from where this one
        stopped instead of re-relaxing (and duplicating) the prefix.
        """
        builder = self.builder
        sat = self._sat
        progress = len(self._weighted_selectors)
        total = len(builder.soft)
        if progress == total:
            return True
        if progress > total:
            # The soft set shrank or was rewritten under a prepared session:
            # rebuild the relaxation from scratch.  The old selectors and
            # bound structure become inert (their outputs are never assumed
            # again).
            self._weighted_selectors = []
            progress = 0
        if self._totalizer is not None or self._gte is not None:
            # The bound structure covered the old selector set; new soft
            # clauses mean it no longer bounds the full objective.
            self._totalizer = None
            self._gte = None
            self._bound_weights = []
        for index in range(progress, total):
            if (index - progress) % _SELECTOR_BUDGET_STRIDE == 0:
                remaining = self._remaining(start, time_budget)
                if remaining is not None and remaining <= 0:
                    # Anytime contract: give up cleanly, keep the progress.
                    return False
            soft = builder.soft[index]
            if len(soft.literals) == 1:
                # For unit soft clauses the negation of the literal is its own
                # selector; no auxiliary variable or clause is needed.
                selector = -soft.literals[0]
                if self.session is not None:
                    self.session.ensure_vars(abs(selector))
                else:
                    sat.ensure_vars(abs(selector))
            else:
                selector = builder.new_var()
                self._add_relaxation_clause(sat, soft.literals + [selector])
            self._weighted_selectors.append((selector, soft.weight))
        return True

    def _prepare_bound(self, sat: SatSolver) -> None:
        """Build the totalizer bound structure once (its clauses are hard).

        Large weights are clustered so the generalized totalizer stays
        pseudo-polynomial in a small bound (Open-WBO-Inc's approximation).
        The structural clauses only *define* the output literals, so they are
        sound to keep in a live session; the bounds themselves are assumed
        per call.
        """
        if self._totalizer is not None or self._gte is not None:
            return
        builder = self.builder
        weighted_selectors = self._weighted_selectors
        self._weighted = builder.is_weighted()
        scaled_weights = self._cluster_weights([w for _, w in weighted_selectors])
        self._approximate = scaled_weights is not None
        if self._weighted:
            self._bound_weights = (scaled_weights if self._approximate
                                   else [w for _, w in weighted_selectors])
            self._gte = GeneralizedTotalizer(
                builder,
                [(sel, weight) for (sel, _), weight
                 in zip(weighted_selectors, self._bound_weights)])
        else:
            self._bound_weights = [1] * len(weighted_selectors)
            self._totalizer = Totalizer(builder,
                                        [sel for sel, _ in weighted_selectors])
        self._sync_hard_clauses(sat, builder)

    def _external_bound(self, upper_bound: int | None, bound_hook,
                        best_cost: int | None) -> int | None:
        """The effective external bound, or ``None`` when unusable.

        Publishing ``best_cost`` through the hook is always sound (the cost
        belongs to an actual model of this instance), but the returned shared
        bound is only *used* when the internal bound structure is exact:
        external bounds are true costs, and a weight-clustered bound counts
        in different units.
        """
        shared = bound_hook(best_cost) if bound_hook is not None else None
        if self._approximate:
            return None
        candidates = [b for b in (upper_bound, shared) if b is not None]
        return min(candidates) if candidates else None

    def _bound_assumptions(self, best_bound_cost: int) -> list[int]:
        """Assumption literals asserting "bound cost strictly below the best"."""
        if self._weighted:
            assert self._gte is not None
            return self._gte.assumptions_for_weight_less_than(best_bound_cost)
        assert self._totalizer is not None
        return self._totalizer.assumption_for_at_most(best_bound_cost - 1)

    # ------------------------------------------------------------------ utils

    def _cluster_weights(self, weights: list[int]) -> list[int] | None:
        """Rescale weights into ``1..max_bound_weight`` when they are large.

        Returns ``None`` when no rescaling is needed (the bound is then exact).
        """
        if not weights:
            return None
        largest = max(weights)
        if largest <= self.max_bound_weight:
            return None
        scale = self.max_bound_weight / largest
        return [max(1, round(weight * scale)) for weight in weights]

    @staticmethod
    def _bound_cost(model: dict[int, bool], builder: WcnfBuilder,
                    bound_weights: list[int]) -> int:
        """Cost of ``model`` as the bound structure measures it."""
        total = 0
        for soft, weight in zip(builder.soft, bound_weights):
            if not clause_satisfied(soft.literals, model):
                total += weight
        return total

    @staticmethod
    def _remaining(start: float, time_budget: float | None) -> float | None:
        if time_budget is None:
            return None
        return time_budget - (time.monotonic() - start)
