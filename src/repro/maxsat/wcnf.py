"""Weighted partial CNF construction helpers.

:class:`WcnfBuilder` is the object the SATMAP encoder populates: it owns the
variable counter, the hard clauses, and the weighted soft clauses, and it can
be converted to the DIMACS containers in :mod:`repro.sat.dimacs`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.sat.dimacs import WcnfFormula


@dataclass
class SoftClause:
    """A soft clause with a positive integer weight."""

    literals: list[int]
    weight: int = 1


@dataclass
class WcnfBuilder:
    """Incrementally built weighted partial MaxSAT instance."""

    num_vars: int = 0
    hard: list[list[int]] = field(default_factory=list)
    soft: list[SoftClause] = field(default_factory=list)

    def new_var(self) -> int:
        """Allocate a fresh Boolean variable and return its index."""
        self.num_vars += 1
        return self.num_vars

    def new_vars(self, count: int) -> list[int]:
        """Allocate ``count`` fresh variables."""
        return [self.new_var() for _ in range(count)]

    def add_hard(self, clause: list[int]) -> None:
        """Add a hard clause (must be satisfied by every solution)."""
        self._validate(clause)
        self.hard.append(list(clause))

    def add_soft(self, clause: list[int], weight: int = 1) -> None:
        """Add a soft clause with the given positive integer weight."""
        if weight <= 0:
            raise ValueError(f"soft clause weight must be positive, got {weight}")
        self._validate(clause)
        self.soft.append(SoftClause(list(clause), weight))

    def _validate(self, clause: list[int]) -> None:
        if not clause:
            raise ValueError("clauses must be non-empty")
        for literal in clause:
            if literal == 0:
                raise ValueError("0 is not a valid literal")
            if abs(literal) > self.num_vars:
                self.num_vars = abs(literal)

    @property
    def total_soft_weight(self) -> int:
        return sum(soft.weight for soft in self.soft)

    @property
    def num_hard(self) -> int:
        return len(self.hard)

    @property
    def num_soft(self) -> int:
        return len(self.soft)

    def is_weighted(self) -> bool:
        """Return ``True`` if the soft clauses do not all share weight 1."""
        return any(soft.weight != 1 for soft in self.soft)

    def to_dimacs(self) -> WcnfFormula:
        """Convert to the DIMACS WCNF container (for export / debugging)."""
        formula = WcnfFormula(num_vars=self.num_vars)
        for clause in self.hard:
            formula.add_hard(clause)
        for soft in self.soft:
            formula.add_soft(soft.literals, soft.weight)
        return formula

    def cost_of_model(self, model: dict[int, bool]) -> int:
        """Total weight of soft clauses falsified by ``model``."""
        cost = 0
        for soft in self.soft:
            if not clause_satisfied(soft.literals, model):
                cost += soft.weight
        return cost


def clause_satisfied(clause: list[int], model: dict[int, bool]) -> bool:
    """Return ``True`` if ``model`` satisfies ``clause`` (missing vars are False)."""
    for literal in clause:
        value = model.get(abs(literal), False)
        if literal > 0 and value:
            return True
        if literal < 0 and not value:
            return True
    return False
