"""Weighted partial CNF construction helpers.

:class:`WcnfBuilder` is the object the SATMAP encoder populates: it owns the
variable counter, the hard clauses, and the weighted soft clauses, and it can
be converted to the DIMACS containers in :mod:`repro.sat.dimacs`.

The builder is itself a :class:`repro.sat.session.ClauseSink`, and it can be
*attached* to another sink -- typically a live
:class:`~repro.sat.session.SatSession`.  While attached, every hard clause is
streamed into the session the moment it is added, so the MaxSAT strategies
never replay ``self.hard`` into a fresh solver: by the time a strategy runs,
the session already holds the formula.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.sat.dimacs import WcnfFormula


@dataclass
class SoftClause:
    """A soft clause with a positive integer weight."""

    literals: list[int]
    weight: int = 1


@dataclass
class WcnfBuilder:
    """Incrementally built weighted partial MaxSAT instance."""

    num_vars: int = 0
    hard: list[list[int]] = field(default_factory=list)
    soft: list[SoftClause] = field(default_factory=list)
    #: Attached streaming sink (a ``SatSession`` in practice); ``None`` keeps
    #: the builder a plain in-memory container, exactly as before.
    _sink: object | None = field(default=None, repr=False, compare=False)
    _streamed: int = field(default=0, repr=False, compare=False)
    #: The sink generation last streamed to; a mismatch (session reset)
    #: restarts streaming from the first clause.
    _sink_generation: int = field(default=0, repr=False, compare=False)

    def new_var(self) -> int:
        """Allocate a fresh Boolean variable and return its index."""
        self.num_vars += 1
        return self.num_vars

    def new_vars(self, count: int) -> list[int]:
        """Allocate ``count`` fresh variables."""
        return [self.new_var() for _ in range(count)]

    def add_hard(self, clause: list[int]) -> None:
        """Add a hard clause (must be satisfied by every solution).

        When a sink is attached the clause is also streamed into it
        immediately, so attached solvers stay in sync clause by clause.
        """
        self._validate(clause)
        stored = list(clause)
        self.hard.append(stored)
        sink = self._sink
        if sink is not None:
            if (self._streamed == len(self.hard) - 1
                    and getattr(sink, "generation", 0) == self._sink_generation):
                # Fast path: the sink is in sync, stream just this clause.
                sink.ensure_vars(self.num_vars)
                sink.add_hard(stored)
                self._streamed += 1
            else:
                self.sync_sink()

    def add_soft(self, clause: list[int], weight: int = 1) -> None:
        """Add a soft clause with the given positive integer weight."""
        if weight <= 0:
            raise ValueError(f"soft clause weight must be positive, got {weight}")
        self._validate(clause)
        self.soft.append(SoftClause(list(clause), weight))

    def _validate(self, clause: list[int]) -> None:
        if not clause:
            raise ValueError("clauses must be non-empty")
        for literal in clause:
            if literal == 0:
                raise ValueError("0 is not a valid literal")
            if abs(literal) > self.num_vars:
                self.num_vars = abs(literal)

    # ------------------------------------------------------------ streaming

    @property
    def sink(self) -> object | None:
        """The attached streaming sink, if any."""
        return self._sink

    def attach_sink(self, sink) -> None:
        """Stream hard clauses into ``sink`` as they are added.

        Clauses already in the builder are streamed immediately (exactly
        once); afterwards every :meth:`add_hard` forwards the clause the
        moment it exists.  Attaching a *different* sink restarts streaming
        from the first clause for that sink.
        """
        if sink is self._sink:
            self.sync_sink()
            return
        self._sink = sink
        self._streamed = 0
        self._sink_generation = getattr(sink, "generation", 0)
        self.sync_sink()

    def detach_sink(self) -> None:
        """Stop streaming; the builder reverts to a plain container."""
        self._sink = None
        self._streamed = 0
        self._sink_generation = 0

    def sync_sink(self) -> None:
        """Stream any hard clauses the attached sink has not seen yet.

        A sink whose ``generation`` changed (a reset session) is treated as
        empty and re-fed the whole formula.
        """
        sink = self._sink
        if sink is None:
            return
        generation = getattr(sink, "generation", 0)
        if generation != self._sink_generation:
            self._streamed = 0
            self._sink_generation = generation
        sink.ensure_vars(self.num_vars)
        for clause in self.hard[self._streamed:]:
            sink.add_hard(clause)
        self._streamed = len(self.hard)

    # -------------------------------------------------------------- queries

    @property
    def total_soft_weight(self) -> int:
        return sum(soft.weight for soft in self.soft)

    @property
    def num_hard(self) -> int:
        return len(self.hard)

    @property
    def num_soft(self) -> int:
        return len(self.soft)

    def is_weighted(self) -> bool:
        """Return ``True`` if the soft clauses do not all share weight 1."""
        return any(soft.weight != 1 for soft in self.soft)

    def to_dimacs(self) -> WcnfFormula:
        """Convert to the DIMACS WCNF container (for export / debugging)."""
        formula = WcnfFormula(num_vars=self.num_vars)
        for clause in self.hard:
            formula.add_hard(clause)
        for soft in self.soft:
            formula.add_soft(soft.literals, soft.weight)
        return formula

    def cost_of_model(self, model: dict[int, bool]) -> int:
        """Total weight of soft clauses falsified by ``model``."""
        cost = 0
        for soft in self.soft:
            if not clause_satisfied(soft.literals, model):
                cost += soft.weight
        return cost

    def ensure_vars(self, max_var: int) -> None:
        """Grow the variable counter to cover ``max_var`` (ClauseSink API)."""
        if max_var > self.num_vars:
            self.num_vars = max_var


def clause_satisfied(clause: list[int], model: dict[int, bool]) -> bool:
    """Return ``True`` if ``model`` satisfies ``clause`` (missing vars are False)."""
    for literal in clause:
        value = model.get(abs(literal), False)
        if literal > 0 and value:
            return True
        if literal < 0 and not value:
            return True
    return False
