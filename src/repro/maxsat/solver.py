"""Facade over the MaxSAT strategies.

:class:`MaxSatSolver` is what the SATMAP core (and the constraint-based
baselines) talk to.  It mirrors the interface SATMAP uses with
Open-WBO-Inc-MCS: hand over a weighted partial CNF, optionally a wall-clock
budget, and get back either an optimal model, the best model found before the
budget ran out, or a report that no model of the hard clauses was found.

Construct the facade with a :class:`~repro.sat.session.SatSession` to make it
*incremental*: the session's CDCL solver stays alive across ``solve()``
calls, hard clauses stream in exactly once, and repeated solves of the same
builder (a slicing backtrack re-solve under new ``assumptions``) reuse the
relaxation and everything the solver has learnt instead of rebuilding.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from repro.maxsat.core_guided import FuMalikSolver
from repro.maxsat.linear_search import LinearSearchSolver
from repro.maxsat.rc2 import OllSolver
from repro.maxsat.wcnf import WcnfBuilder
from repro.sat.session import SatSession


class MaxSatStatus(Enum):
    """Outcome classification of a MaxSAT call."""

    OPTIMAL = "optimal"
    SATISFIABLE = "satisfiable"  # a model was found but optimality is unproven
    UNSATISFIABLE = "unsatisfiable"  # the hard clauses have no model
    UNKNOWN = "unknown"  # no model found within the budget


@dataclass
class MaxSatResult:
    """Result of a MaxSAT call."""

    status: MaxSatStatus
    cost: int = -1
    model: dict[int, bool] = field(default_factory=dict)
    sat_calls: int = 0
    solve_time: float = 0.0
    #: True when an external incumbent bound clipped the search (the linear
    #: strategy's cube-and-conquer hook): an UNSATISFIABLE status then means
    #: "no model cheaper than the bound", not hard-clause unsatisfiability,
    #: and an OPTIMAL status means "optimal under the bound".
    pruned: bool = False

    @property
    def has_model(self) -> bool:
        return self.status in (MaxSatStatus.OPTIMAL, MaxSatStatus.SATISFIABLE)

    @property
    def is_optimal(self) -> bool:
        return self.status is MaxSatStatus.OPTIMAL


class MaxSatSolver:
    """Weighted partial MaxSAT solver with selectable strategy.

    Parameters
    ----------
    strategy:
        ``"linear"`` (default) for the anytime linear SAT->UNSAT search that
        mirrors Open-WBO-Inc-MCS, ``"core-guided"`` for Fu-Malik (unweighted
        only), or ``"rc2"`` for the weighted OLL algorithm.
    session:
        Optional persistent :class:`~repro.sat.session.SatSession`.  With a
        session the underlying SAT solver, the streamed hard clauses, and the
        learnt-clause database survive between ``solve()`` calls.
    """

    STRATEGIES = ("linear", "core-guided", "rc2")

    def __init__(self, strategy: str = "linear",
                 session: SatSession | None = None,
                 solver_backend: str | None = None) -> None:
        if strategy not in self.STRATEGIES:
            raise ValueError(f"unknown strategy {strategy!r}; expected one of {self.STRATEGIES}")
        self.strategy = strategy
        self.session = session
        #: Solve core used by session-less strategies (python | native |
        #: auto | None).  A session brings its own solver, so this only
        #: matters for the non-incremental path.
        self.solver_backend = solver_backend
        #: Per-builder linear-search state (selectors + bound structure) kept
        #: alive between calls when a session is present.
        self._linear: LinearSearchSolver | None = None
        #: The builder a session-backed facade is bound to.  Streamed clauses
        #: are permanent, so one session can only ever answer for one formula.
        self._bound_builder: WcnfBuilder | None = None

    def solve(self, builder: WcnfBuilder, time_budget: float | None = None,
              assumptions: list[int] | None = None,
              upper_bound: int | None = None,
              bound_hook=None) -> MaxSatResult:
        """Solve ``builder`` under an optional wall-clock budget (seconds).

        ``assumptions`` are base literals assumed in every underlying SAT
        call; incremental callers use them to pin per-call context (e.g. a
        slice's inherited initial map) without mutating the formula.

        ``upper_bound``/``bound_hook`` connect the solve to an external
        incumbent (see :meth:`LinearSearchSolver.solve`); they are only
        supported by the ``"linear"`` strategy.
        """
        if ((upper_bound is not None or bound_hook is not None)
                and self.strategy != "linear"):
            raise ValueError(
                "external bounds (upper_bound/bound_hook) require the "
                f"'linear' strategy, not {self.strategy!r}")
        if self.session is not None:
            if self._bound_builder is None:
                self._bound_builder = builder
            elif self._bound_builder is not builder:
                raise ValueError(
                    "a session-backed MaxSatSolver is bound to the first "
                    "builder it solves (the session permanently holds that "
                    "formula's clauses); use a fresh session for a different "
                    "instance")
        strategy = self.strategy
        if strategy == "core-guided" and builder.is_weighted():
            strategy = "linear"

        if strategy == "rc2":
            outcome = OllSolver(builder, session=self.session,
                                solver_backend=self.solver_backend).solve(
                time_budget=time_budget, assumptions=assumptions)
            if outcome.found_model:
                return MaxSatResult(MaxSatStatus.OPTIMAL, outcome.cost, outcome.model,
                                    outcome.sat_calls, outcome.elapsed)
            if outcome.optimal and outcome.cost == -1:
                return MaxSatResult(MaxSatStatus.UNSATISFIABLE, -1, {},
                                    outcome.sat_calls, outcome.elapsed)
            return MaxSatResult(MaxSatStatus.UNKNOWN, -1, {},
                                outcome.sat_calls, outcome.elapsed)

        if strategy == "core-guided":
            outcome = FuMalikSolver(builder, session=self.session,
                                    solver_backend=self.solver_backend).solve(
                time_budget=time_budget, assumptions=assumptions)
            if outcome.found_model:
                return MaxSatResult(MaxSatStatus.OPTIMAL, outcome.cost, outcome.model,
                                    outcome.sat_calls, outcome.elapsed)
            if outcome.optimal and outcome.cost == -1:
                return MaxSatResult(MaxSatStatus.UNSATISFIABLE, -1, {},
                                    outcome.sat_calls, outcome.elapsed)
            return MaxSatResult(MaxSatStatus.UNKNOWN, -1, {},
                                outcome.sat_calls, outcome.elapsed)

        outcome = self._linear_solver(builder).solve(time_budget=time_budget,
                                                     assumptions=assumptions,
                                                     upper_bound=upper_bound,
                                                     bound_hook=bound_hook)
        if outcome.found_model:
            status = MaxSatStatus.OPTIMAL if outcome.optimal else MaxSatStatus.SATISFIABLE
            return MaxSatResult(status, outcome.cost, outcome.model,
                                outcome.sat_calls, outcome.elapsed,
                                pruned=outcome.pruned)
        if outcome.optimal:
            return MaxSatResult(MaxSatStatus.UNSATISFIABLE, -1, {},
                                outcome.sat_calls, outcome.elapsed,
                                pruned=outcome.pruned)
        return MaxSatResult(MaxSatStatus.UNKNOWN, -1, {},
                            outcome.sat_calls, outcome.elapsed)

    def _linear_solver(self, builder: WcnfBuilder) -> LinearSearchSolver:
        """The (cached, when incremental) linear-search state for ``builder``."""
        if self.session is None:
            return LinearSearchSolver(builder,
                                      solver_backend=self.solver_backend)
        if self._linear is None or self._linear.builder is not builder:
            self._linear = LinearSearchSolver(builder, session=self.session)
        return self._linear
