"""Facade over the MaxSAT strategies.

:class:`MaxSatSolver` is what the SATMAP core (and the constraint-based
baselines) talk to.  It mirrors the interface SATMAP uses with
Open-WBO-Inc-MCS: hand over a weighted partial CNF, optionally a wall-clock
budget, and get back either an optimal model, the best model found before the
budget ran out, or a report that no model of the hard clauses was found.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from repro.maxsat.core_guided import FuMalikSolver
from repro.maxsat.linear_search import LinearSearchSolver
from repro.maxsat.rc2 import OllSolver
from repro.maxsat.wcnf import WcnfBuilder


class MaxSatStatus(Enum):
    """Outcome classification of a MaxSAT call."""

    OPTIMAL = "optimal"
    SATISFIABLE = "satisfiable"  # a model was found but optimality is unproven
    UNSATISFIABLE = "unsatisfiable"  # the hard clauses have no model
    UNKNOWN = "unknown"  # no model found within the budget


@dataclass
class MaxSatResult:
    """Result of a MaxSAT call."""

    status: MaxSatStatus
    cost: int = -1
    model: dict[int, bool] = field(default_factory=dict)
    sat_calls: int = 0
    solve_time: float = 0.0

    @property
    def has_model(self) -> bool:
        return self.status in (MaxSatStatus.OPTIMAL, MaxSatStatus.SATISFIABLE)

    @property
    def is_optimal(self) -> bool:
        return self.status is MaxSatStatus.OPTIMAL


class MaxSatSolver:
    """Weighted partial MaxSAT solver with selectable strategy.

    Parameters
    ----------
    strategy:
        ``"linear"`` (default) for the anytime linear SAT->UNSAT search that
        mirrors Open-WBO-Inc-MCS, ``"core-guided"`` for Fu-Malik (unweighted
        only), or ``"rc2"`` for the weighted OLL algorithm.
    """

    STRATEGIES = ("linear", "core-guided", "rc2")

    def __init__(self, strategy: str = "linear") -> None:
        if strategy not in self.STRATEGIES:
            raise ValueError(f"unknown strategy {strategy!r}; expected one of {self.STRATEGIES}")
        self.strategy = strategy

    def solve(self, builder: WcnfBuilder, time_budget: float | None = None) -> MaxSatResult:
        """Solve ``builder`` under an optional wall-clock budget (seconds)."""
        strategy = self.strategy
        if strategy == "core-guided" and builder.is_weighted():
            strategy = "linear"

        if strategy == "rc2":
            outcome = OllSolver(builder).solve(time_budget=time_budget)
            if outcome.found_model:
                return MaxSatResult(MaxSatStatus.OPTIMAL, outcome.cost, outcome.model,
                                    outcome.sat_calls, outcome.elapsed)
            if outcome.optimal and outcome.cost == -1:
                return MaxSatResult(MaxSatStatus.UNSATISFIABLE, -1, {},
                                    outcome.sat_calls, outcome.elapsed)
            return MaxSatResult(MaxSatStatus.UNKNOWN, -1, {},
                                outcome.sat_calls, outcome.elapsed)

        if strategy == "core-guided":
            outcome = FuMalikSolver(builder).solve(time_budget=time_budget)
            if outcome.found_model:
                return MaxSatResult(MaxSatStatus.OPTIMAL, outcome.cost, outcome.model,
                                    outcome.sat_calls, outcome.elapsed)
            if outcome.optimal and outcome.cost == -1:
                return MaxSatResult(MaxSatStatus.UNSATISFIABLE, -1, {},
                                    outcome.sat_calls, outcome.elapsed)
            return MaxSatResult(MaxSatStatus.UNKNOWN, -1, {},
                                outcome.sat_calls, outcome.elapsed)

        outcome = LinearSearchSolver(builder).solve(time_budget=time_budget)
        if outcome.found_model:
            status = MaxSatStatus.OPTIMAL if outcome.optimal else MaxSatStatus.SATISFIABLE
            return MaxSatResult(status, outcome.cost, outcome.model,
                                outcome.sat_calls, outcome.elapsed)
        if outcome.optimal:
            return MaxSatResult(MaxSatStatus.UNSATISFIABLE, -1, {},
                                outcome.sat_calls, outcome.elapsed)
        return MaxSatResult(MaxSatStatus.UNKNOWN, -1, {},
                            outcome.sat_calls, outcome.elapsed)
