"""Core-guided (Fu-Malik) MaxSAT solving.

The Fu-Malik algorithm repeatedly asks the SAT solver for a model of the hard
clauses plus assumptions asserting that every not-yet-relaxed soft clause
holds.  Each UNSAT answer yields a core; every soft clause in the core gains a
fresh blocking variable, an exactly-one constraint over the new blocking
variables is added as hard, and the lower bound increases by one.  When the
formula becomes satisfiable the accumulated bound is the optimum.

This strategy is exact but not anytime (it produces no intermediate models),
so SATMAP uses it only for small instances and as an ablation against the
linear-search strategy.  Only unweighted (all weights equal 1) instances are
supported; the facade falls back to linear search otherwise.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.maxsat.cardinality import exactly_one
from repro.maxsat.wcnf import WcnfBuilder, clause_satisfied
from repro.sat.session import SatSession
from repro.sat.backends import create_solver
from repro.sat.solver import SatSolver, SolverStatus


@dataclass
class CoreGuidedOutcome:
    """Raw outcome of a Fu-Malik run."""

    found_model: bool
    optimal: bool
    cost: int
    model: dict[int, bool]
    sat_calls: int
    elapsed: float


class FuMalikSolver:
    """Fu-Malik core-guided MaxSAT for unweighted instances.

    With a :class:`~repro.sat.session.SatSession` the hard clauses stream into
    the live solver once and learnt clauses persist across the core loop; the
    blocking/selector machinery is rebuilt fresh on every run (the previous
    run's scaffolding becomes inert), which keeps repeated runs sound at the
    cost of O(#soft) inert clauses per run -- for many re-solves on one
    session, prefer the ``"linear"`` strategy, whose relaxation is built once.
    """

    def __init__(self, builder: WcnfBuilder,
                 session: SatSession | None = None,
                 solver_backend: str | None = None) -> None:
        if builder.is_weighted():
            raise ValueError("FuMalikSolver only supports unweighted soft clauses")
        self.builder = builder
        self.session = session
        self.solver_backend = solver_backend

    def solve(self, time_budget: float | None = None,
              assumptions: list[int] | None = None) -> CoreGuidedOutcome:
        start = time.monotonic()
        builder = self.builder
        base_assumptions = list(assumptions or [])
        original_soft = [list(soft.literals) for soft in builder.soft]

        if self.session is not None:
            builder.attach_sink(self.session)
            sat = self.session.solver
        else:
            sat = create_solver(self.solver_backend)
            sat.ensure_vars(builder.num_vars)
            for clause in builder.hard:
                sat.add_clause(clause)

        # Working copy of every soft clause: original literals plus the
        # blocking variables accumulated over the cores it has appeared in.
        working: list[list[int]] = [list(literals) for literals in original_soft]
        # Current selector variable of each soft clause.  Assuming the
        # selector false asserts the working clause; an UNSAT core over the
        # selectors therefore names violated soft clauses.
        selectors: list[int] = []
        soft_of_selector: dict[int, int] = {}
        for index, literals in enumerate(working):
            selector = builder.new_var()
            sat.ensure_vars(builder.num_vars)
            sat.add_clause(literals + [selector])
            selectors.append(selector)
            soft_of_selector[selector] = index

        lower_bound = 0
        sat_calls = 0
        while True:
            remaining = None
            if time_budget is not None:
                remaining = time_budget - (time.monotonic() - start)
                if remaining <= 0:
                    return CoreGuidedOutcome(False, False, lower_bound, {}, sat_calls,
                                             time.monotonic() - start)
            assumption_literals = base_assumptions + [-selector for selector in selectors]
            result = sat.solve(assumptions=assumption_literals, time_budget=remaining)
            sat_calls += 1
            if result.status is SolverStatus.SAT:
                cost = sum(1 for literals in original_soft
                           if not clause_satisfied(literals, result.model))
                return CoreGuidedOutcome(
                    found_model=True,
                    optimal=True,
                    cost=cost,
                    model=dict(result.model),
                    sat_calls=sat_calls,
                    elapsed=time.monotonic() - start,
                )
            if result.status is SolverStatus.UNKNOWN:
                return CoreGuidedOutcome(False, False, lower_bound, {}, sat_calls,
                                         time.monotonic() - start)

            core_selectors = sorted({abs(literal) for literal in result.core
                                     if abs(literal) in soft_of_selector})
            if not core_selectors:
                # The hard clauses alone are unsatisfiable.
                return CoreGuidedOutcome(False, True, -1, {}, sat_calls,
                                         time.monotonic() - start)

            lower_bound += 1
            blocking_vars: list[int] = []
            for old_selector in core_selectors:
                soft_index = soft_of_selector.pop(old_selector)
                blocking = builder.new_var()
                new_selector = builder.new_var()
                sat.ensure_vars(builder.num_vars)
                blocking_vars.append(blocking)
                working[soft_index].append(blocking)
                # Retire the previous copy of the clause by forcing its
                # selector true, then install the extended copy.
                sat.add_clause([old_selector])
                sat.add_clause(working[soft_index] + [new_selector])
                position = selectors.index(old_selector)
                selectors[position] = new_selector
                soft_of_selector[new_selector] = soft_index

            hard_before = len(builder.hard)
            exactly_one(builder, blocking_vars)
            sat.ensure_vars(builder.num_vars)
            if self.session is None:
                # An attached session already received these via streaming.
                for clause in builder.hard[hard_before:]:
                    sat.add_clause(clause)
