"""OLL-style core-guided MaxSAT (the algorithm behind RC2 / MSCG).

The linear-search strategy mirrors Open-WBO-Inc-MCS and is SATMAP's default;
Fu-Malik covers small unweighted instances.  This module adds the third major
family of MaxSAT algorithms -- OLL (Morgado, Dodaro, Marques-Silva 2014),
popularised by the RC2 solver -- which handles *weighted* instances natively
and tends to win when the optimum is far from zero.

The algorithm maintains a weight for every active selector (a literal whose
truth means "this soft obligation was violated").  Each UNSAT core lowers the
weights of the selectors in the core by the core's minimum weight, adds that
minimum to the lower bound, and introduces a totalizer over the core whose
higher outputs ("at least two of these were violated", "at least three", ...)
become new weighted selectors.  When the assumptions become satisfiable the
lower bound equals the optimum.

OLL proves optimality from below, so unlike the linear search it produces no
intermediate models -- it is exact-or-nothing under a time budget.  The
:class:`~repro.maxsat.solver.MaxSatSolver` facade exposes it as the ``"rc2"``
strategy, used by the MaxSAT-strategy ablation benchmark.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.maxsat.cardinality import Totalizer
from repro.maxsat.wcnf import WcnfBuilder
from repro.sat.session import SatSession
from repro.sat.backends import create_solver
from repro.sat.solver import SatSolver, SolverStatus


@dataclass
class OllOutcome:
    """Raw outcome of an OLL run."""

    found_model: bool
    optimal: bool
    cost: int
    model: dict[int, bool]
    sat_calls: int
    cores: int
    elapsed: float


class OllSolver:
    """Weighted core-guided MaxSAT via the OLL algorithm.

    With a :class:`~repro.sat.session.SatSession` the hard clauses stream into
    the live solver once (through the builder's attached sink) and learnt
    clauses survive the whole core-extraction loop; the per-call selector
    relaxation is recreated fresh on every run, which keeps repeated runs on
    one session sound (stale selectors are simply never assumed again) but
    grows the session by O(#soft) inert scaffolding clauses per run -- for
    workloads that re-solve one session many times (slicing backtracks),
    prefer the ``"linear"`` strategy, whose relaxation is built once.
    """

    def __init__(self, builder: WcnfBuilder,
                 session: SatSession | None = None,
                 solver_backend: str | None = None) -> None:
        self.builder = builder
        self.session = session
        self.solver_backend = solver_backend

    def solve(self, time_budget: float | None = None,
              assumptions: list[int] | None = None) -> OllOutcome:
        """Run OLL to optimality or until the wall-clock budget expires."""
        start = time.monotonic()
        builder = self.builder
        base_assumptions = list(assumptions or [])

        if self.session is not None:
            builder.attach_sink(self.session)
            sat = self.session.solver
        else:
            sat = create_solver(self.solver_backend)
            sat.ensure_vars(builder.num_vars)
            for clause in builder.hard:
                sat.add_clause(clause)

        # Relax every soft clause with a selector whose truth means "violated".
        weights: dict[int, int] = {}
        for soft in builder.soft:
            if len(soft.literals) == 1:
                selector = -soft.literals[0]
                sat.ensure_vars(abs(selector))
            else:
                selector = builder.new_var()
                sat.ensure_vars(builder.num_vars)
                sat.add_clause(soft.literals + [selector])
            weights[selector] = weights.get(selector, 0) + soft.weight

        lower_bound = 0
        sat_calls = 0
        cores = 0

        while True:
            remaining = None
            if time_budget is not None:
                remaining = time_budget - (time.monotonic() - start)
                if remaining <= 0:
                    return OllOutcome(False, False, lower_bound, {}, sat_calls, cores,
                                      time.monotonic() - start)
            assumption_literals = base_assumptions + [
                -selector for selector, weight in sorted(weights.items())
                if weight > 0]
            result = sat.solve(assumptions=assumption_literals, time_budget=remaining)
            sat_calls += 1

            if result.status is SolverStatus.SAT:
                cost = builder.cost_of_model(result.model)
                return OllOutcome(
                    found_model=True,
                    optimal=True,
                    cost=cost,
                    model=dict(result.model),
                    sat_calls=sat_calls,
                    cores=cores,
                    elapsed=time.monotonic() - start,
                )
            if result.status is SolverStatus.UNKNOWN:
                return OllOutcome(False, False, lower_bound, {}, sat_calls, cores,
                                  time.monotonic() - start)

            core_selectors = sorted({-literal for literal in result.core})
            core_selectors = [selector for selector in core_selectors
                              if weights.get(selector, 0) > 0]
            if not core_selectors:
                # The hard clauses alone are unsatisfiable.
                return OllOutcome(False, True, -1, {}, sat_calls, cores,
                                  time.monotonic() - start)

            cores += 1
            core_weight = min(weights[selector] for selector in core_selectors)
            lower_bound += core_weight
            for selector in core_selectors:
                weights[selector] -= core_weight

            if len(core_selectors) > 1:
                # "At least one violated" is paid for by the lower bound; every
                # additional violation within this core costs core_weight more,
                # which is exactly what soft-ening the higher totalizer outputs
                # expresses.
                hard_before = len(builder.hard)
                totalizer = Totalizer(builder, core_selectors)
                sat.ensure_vars(builder.num_vars)
                if self.session is None:
                    # An attached session already received these via streaming.
                    for clause in builder.hard[hard_before:]:
                        sat.add_clause(clause)
                for output in totalizer.outputs[1:]:
                    weights[output] = weights.get(output, 0) + core_weight
            # Cores of size one need no totalizer: the selector's weight simply
            # drops (possibly to zero, retiring it from the assumptions).
