"""Cardinality and pseudo-Boolean encodings for the MaxSAT bound.

Two encoders are provided:

* :class:`Totalizer` -- the classic totalizer encoding for unweighted
  cardinality constraints ("at most k of these literals are true").
* :class:`GeneralizedTotalizer` -- the weighted generalisation (GTE), where
  each input literal carries a positive integer weight and the outputs encode
  "the total weight of true inputs is at least w".

Both are built once and strengthened monotonically by asserting unit clauses
on output literals, which is how the linear-search MaxSAT strategy tightens
its bound between SAT calls.

The paper's "only one swap" constraint (Hard C) also uses a standard
at-most-one encoding, provided here as :func:`at_most_one_pairwise` and
:func:`exactly_one`.
"""

from __future__ import annotations

from repro.maxsat.wcnf import WcnfBuilder


def at_most_one_pairwise(builder: WcnfBuilder, literals: list[int]) -> None:
    """Add pairwise at-most-one hard constraints over ``literals``."""
    for index, first in enumerate(literals):
        for second in literals[index + 1:]:
            builder.add_hard([-first, -second])


def at_least_one(builder: WcnfBuilder, literals: list[int]) -> None:
    """Add an at-least-one hard constraint over ``literals``."""
    builder.add_hard(list(literals))


def exactly_one(builder: WcnfBuilder, literals: list[int]) -> None:
    """Add an exactly-one hard constraint (pairwise AMO + ALO)."""
    at_least_one(builder, literals)
    at_most_one_pairwise(builder, literals)


def at_most_one_commander(
    builder: WcnfBuilder, literals: list[int], group_size: int = 4
) -> None:
    """Commander (hierarchical) at-most-one encoding.

    Linear in the number of literals, which matters for the larger "only one"
    constraints the QMR encoding produces on well-connected architectures.
    """
    if len(literals) <= group_size + 1:
        at_most_one_pairwise(builder, literals)
        return
    commanders: list[int] = []
    for start in range(0, len(literals), group_size):
        group = literals[start:start + group_size]
        commander = builder.new_var()
        commanders.append(commander)
        at_most_one_pairwise(builder, group)
        # The commander is true iff some literal in its group is true.
        for literal in group:
            builder.add_hard([-literal, commander])
        builder.add_hard([-commander] + group)
    at_most_one_commander(builder, commanders, group_size)


class Totalizer:
    """Totalizer encoding over a set of input literals.

    After construction, ``outputs[j]`` (0-based) is a literal that is true in
    every model in which at least ``j + 1`` of the inputs are true.  Asserting
    ``-outputs[k]`` therefore enforces "at most k inputs are true".
    """

    def __init__(self, builder: WcnfBuilder, inputs: list[int]) -> None:
        self.builder = builder
        self.inputs = list(inputs)
        if not inputs:
            self.outputs: list[int] = []
            return
        self.outputs = self._build(list(inputs))

    def _build(self, literals: list[int]) -> list[int]:
        if len(literals) == 1:
            return [literals[0]]
        mid = len(literals) // 2
        left = self._build(literals[:mid])
        right = self._build(literals[mid:])
        return self._merge(left, right)

    def _merge(self, left: list[int], right: list[int]) -> list[int]:
        builder = self.builder
        total = len(left) + len(right)
        outputs = [builder.new_var() for _ in range(total)]
        # sum(left) >= a and sum(right) >= b  implies  sum >= a + b
        for a in range(len(left) + 1):
            for b in range(len(right) + 1):
                if a + b == 0:
                    continue
                antecedent = []
                if a > 0:
                    antecedent.append(-left[a - 1])
                if b > 0:
                    antecedent.append(-right[b - 1])
                builder.add_hard(antecedent + [outputs[a + b - 1]])
        # Monotonicity: outputs[j] implies outputs[j-1].
        for j in range(1, total):
            builder.add_hard([-outputs[j], outputs[j - 1]])
        return outputs

    def enforce_at_most(self, bound: int) -> None:
        """Permanently assert that at most ``bound`` inputs are true."""
        if bound < 0:
            raise ValueError("bound must be non-negative")
        if bound >= len(self.outputs):
            return
        self.builder.add_hard([-self.outputs[bound]])

    def assumption_for_at_most(self, bound: int) -> list[int]:
        """Assumption literals enforcing "at most ``bound``" non-permanently."""
        if bound < 0:
            raise ValueError("bound must be non-negative")
        if bound >= len(self.outputs):
            return []
        return [-self.outputs[bound]]


class GeneralizedTotalizer:
    """Generalised totalizer (GTE) over weighted input literals.

    ``outputs`` maps each achievable total weight ``w`` (> 0) to a literal that
    is true whenever the total weight of true inputs is at least ``w``.
    """

    def __init__(self, builder: WcnfBuilder, weighted_inputs: list[tuple[int, int]]) -> None:
        self.builder = builder
        self.weighted_inputs = list(weighted_inputs)
        for literal, weight in self.weighted_inputs:
            if weight <= 0:
                raise ValueError(f"weights must be positive, got {weight} for {literal}")
        if not self.weighted_inputs:
            self.outputs: dict[int, int] = {}
            return
        self.outputs = self._build(self.weighted_inputs)

    def _build(self, pairs: list[tuple[int, int]]) -> dict[int, int]:
        if len(pairs) == 1:
            literal, weight = pairs[0]
            return {weight: literal}
        mid = len(pairs) // 2
        left = self._build(pairs[:mid])
        right = self._build(pairs[mid:])
        return self._merge(left, right)

    def _merge(self, left: dict[int, int], right: dict[int, int]) -> dict[int, int]:
        builder = self.builder
        sums: set[int] = set(left) | set(right)
        for left_weight in left:
            for right_weight in right:
                sums.add(left_weight + right_weight)
        outputs = {weight: builder.new_var() for weight in sorted(sums)}
        for left_weight, left_literal in left.items():
            builder.add_hard([-left_literal, outputs[left_weight]])
        for right_weight, right_literal in right.items():
            builder.add_hard([-right_literal, outputs[right_weight]])
        for left_weight, left_literal in left.items():
            for right_weight, right_literal in right.items():
                combined = left_weight + right_weight
                builder.add_hard([-left_literal, -right_literal, outputs[combined]])
        # Monotonicity between consecutive achievable sums.
        ordered = sorted(outputs)
        for lower, upper in zip(ordered, ordered[1:]):
            builder.add_hard([-outputs[upper], outputs[lower]])
        return outputs

    def enforce_weight_less_than(self, bound: int) -> None:
        """Permanently assert that the total weight of true inputs is < ``bound``."""
        if bound <= 0:
            raise ValueError("bound must be positive")
        for weight in sorted(self.outputs):
            if weight >= bound:
                self.builder.add_hard([-self.outputs[weight]])
                return  # monotonicity clauses handle the larger weights

    def assumptions_for_weight_less_than(self, bound: int) -> list[int]:
        """Assumption literals enforcing "total weight < ``bound``" non-permanently.

        Incremental sessions use this instead of
        :meth:`enforce_weight_less_than`: the bound holds only for the solve
        call that assumes it, so a later call on the same live solver can
        start from a clean (or different) bound.
        """
        if bound <= 0:
            raise ValueError("bound must be positive")
        for weight in sorted(self.outputs):
            if weight >= bound:
                # Monotonicity clauses imply the larger weights stay false.
                return [-self.outputs[weight]]
        return []
