"""Weighted partial MaxSAT solving on top of :mod:`repro.sat`.

The paper's tool calls Open-WBO-Inc-MCS, an *anytime* MaxSAT solver: it keeps
improving a model of the hard constraints and can be interrupted at any point,
returning the best solution found so far.  This package reproduces that
behaviour with two strategies built on our CDCL solver:

* :class:`repro.maxsat.linear_search.LinearSearchSolver` -- model-improving
  linear SAT->UNSAT search with a (generalised) totalizer bound.  This is the
  default strategy and the closest analogue of Open-WBO-Inc-MCS.
* :class:`repro.maxsat.core_guided.FuMalikSolver` -- core-guided search, used
  as an ablation and for small unweighted instances.
* :class:`repro.maxsat.rc2.OllSolver` -- the weighted OLL / RC2 algorithm,
  the third strategy of the MaxSAT ablation study.

:class:`repro.maxsat.solver.MaxSatSolver` is the facade the rest of the
library uses; it accepts a :class:`repro.maxsat.wcnf.WcnfBuilder`, a strategy
name, and a time budget.
"""

from repro.maxsat.wcnf import WcnfBuilder
from repro.maxsat.solver import MaxSatResult, MaxSatSolver, MaxSatStatus

__all__ = ["WcnfBuilder", "MaxSatSolver", "MaxSatResult", "MaxSatStatus"]
