"""Additional cardinality encodings (sequential counter, ladder, bitwise).

:mod:`repro.maxsat.cardinality` provides the totalizer family used by the
MaxSAT bound.  This module adds the remaining encodings that matter for the
QMR constraints themselves, where the shape of the at-most-one / at-most-k
constraint determines how large the generated formula gets:

* :func:`at_most_one_ladder` -- the sequential ("regular"/ladder) at-most-one,
  3n clauses and n auxiliary variables, the encoding the paper cites from
  Gent & Nightingale for Hard A and Hard C;
* :func:`at_most_one_bitwise` -- the logarithmic (binary) at-most-one;
* :class:`SequentialCounter` -- Sinz's LTn,k sequential-counter at-most-k
  encoding, with incremental bound tightening like the totalizer;
* :func:`exactly_k` -- exactly-k on top of the sequential counter.

All functions take the shared :class:`~repro.maxsat.wcnf.WcnfBuilder` so the
auxiliary variables they allocate stay consistent with the encoder's counter.
"""

from __future__ import annotations

from repro.maxsat.cardinality import at_least_one, at_most_one_pairwise
from repro.maxsat.wcnf import WcnfBuilder


def at_most_one_ladder(builder: WcnfBuilder, literals: list[int]) -> list[int]:
    """Sequential (ladder) at-most-one encoding.

    Introduces one ladder variable per position; returns the ladder variables
    so callers can inspect or reuse them.  For fewer than three literals the
    pairwise encoding is already minimal and is used instead.
    """
    if len(literals) < 3:
        at_most_one_pairwise(builder, literals)
        return []
    ladder = builder.new_vars(len(literals) - 1)
    first = literals[0]
    builder.add_hard([-first, ladder[0]])
    for index in range(1, len(literals) - 1):
        literal = literals[index]
        builder.add_hard([-literal, ladder[index]])
        builder.add_hard([-ladder[index - 1], ladder[index]])
        builder.add_hard([-literal, -ladder[index - 1]])
    builder.add_hard([-literals[-1], -ladder[-1]])
    return ladder


def at_most_one_bitwise(builder: WcnfBuilder, literals: list[int]) -> list[int]:
    """Bitwise (binary) at-most-one encoding.

    Each literal is associated with the binary representation of its index
    over ``ceil(log2 n)`` fresh bit variables; two distinct literals disagree
    on at least one bit, so at most one can be true.  Returns the bit
    variables.
    """
    if len(literals) < 2:
        return []
    num_bits = max(1, (len(literals) - 1).bit_length())
    bits = builder.new_vars(num_bits)
    for index, literal in enumerate(literals):
        for bit_position, bit_var in enumerate(bits):
            if (index >> bit_position) & 1:
                builder.add_hard([-literal, bit_var])
            else:
                builder.add_hard([-literal, -bit_var])
    return bits


class SequentialCounter:
    """Sinz's sequential-counter encoding of "at most k inputs are true".

    The counter is built for a maximum bound ``max_bound``; the registers
    ``register[i][j]`` mean "at least ``j + 1`` of the first ``i + 1`` inputs
    are true".  The final row doubles as an output vector analogous to the
    totalizer's, so the bound can be tightened incrementally by asserting unit
    clauses over it.
    """

    def __init__(self, builder: WcnfBuilder, inputs: list[int],
                 max_bound: int | None = None) -> None:
        self.builder = builder
        self.inputs = list(inputs)
        if max_bound is None:
            max_bound = len(inputs)
        if max_bound < 0:
            raise ValueError("max_bound must be non-negative")
        self.max_bound = min(max_bound, len(inputs))
        self.registers: list[list[int]] = []
        if self.inputs and self.max_bound > 0:
            self._build()

    def _build(self) -> None:
        builder = self.builder
        width = self.max_bound
        previous: list[int] = []
        for index, literal in enumerate(self.inputs):
            row_width = min(index + 1, width)
            row = builder.new_vars(row_width)
            # The input raises the count by one.
            builder.add_hard([-literal, row[0]])
            if previous:
                for j in range(min(len(previous), row_width)):
                    # Carrying the previous count forward.
                    builder.add_hard([-previous[j], row[j]])
                for j in range(1, row_width):
                    if j - 1 < len(previous):
                        builder.add_hard([-literal, -previous[j - 1], row[j]])
            self.registers.append(row)
            previous = row

    @property
    def outputs(self) -> list[int]:
        """Output literals: ``outputs[j]`` true when at least ``j + 1`` inputs are."""
        return list(self.registers[-1]) if self.registers else []

    def enforce_at_most(self, bound: int) -> None:
        """Permanently assert that at most ``bound`` inputs are true."""
        if bound < 0:
            raise ValueError("bound must be non-negative")
        if bound >= self.max_bound:
            return
        # Forbid any prefix count from exceeding the bound: an input being
        # true while the previous row already reached `bound` is a conflict.
        for index in range(1, len(self.inputs)):
            previous = self.registers[index - 1]
            if bound - 1 < len(previous) and bound <= self.max_bound - 1:
                self.builder.add_hard([-self.inputs[index], -previous[bound - 1]]
                                      if bound >= 1 else [-self.inputs[index]])
        if bound == 0:
            for literal in self.inputs:
                self.builder.add_hard([-literal])
            return
        outputs = self.outputs
        if bound < len(outputs):
            self.builder.add_hard([-outputs[bound]])

    def assumption_for_at_most(self, bound: int) -> list[int]:
        """Assumptions enforcing "at most ``bound``" without committing to it."""
        outputs = self.outputs
        if bound >= len(outputs):
            return []
        return [-outputs[bound]]


def at_most_k_sequential(builder: WcnfBuilder, literals: list[int], bound: int) -> None:
    """One-shot at-most-k using a sequential counter sized to the bound."""
    if bound >= len(literals):
        return
    counter = SequentialCounter(builder, literals, max_bound=bound + 1)
    counter.enforce_at_most(bound)


def exactly_k(builder: WcnfBuilder, literals: list[int], bound: int) -> None:
    """Exactly-k: at-most-k via a sequential counter plus at-least-k.

    At-least-k is encoded by requiring at most ``n - k`` of the negated
    literals to be true, which reuses the same counter machinery.
    """
    if bound < 0 or bound > len(literals):
        raise ValueError(f"cannot require exactly {bound} of {len(literals)} literals")
    if bound == 0:
        for literal in literals:
            builder.add_hard([-literal])
        return
    if bound == len(literals):
        for literal in literals:
            builder.add_hard([literal])
        return
    at_most_k_sequential(builder, literals, bound)
    if bound == 1:
        at_least_one(builder, literals)
    else:
        at_most_k_sequential(builder, [-literal for literal in literals],
                             len(literals) - bound)
