"""Top-level routing entry points: ``repro.route`` and :class:`RouteRequest`.

These are the "just route it" surface of the library: pick a router with a
declarative spec (string, dict, or :class:`~repro.api.spec.RouterSpec`),
let the registry construct it, and get a
:class:`~repro.core.result.RoutingResult` back.  The batch service consumes
the same requests via :meth:`RouteRequest.to_job`, so a one-off call and a
cached, pooled batch job are built from identical data.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.api.registry import get_router
from repro.api.spec import RouterSpec
from repro.circuits.circuit import QuantumCircuit
from repro.core.result import RoutingResult
from repro.hardware.architecture import Architecture

#: Spec used when a caller does not name a router at all.
DEFAULT_SPEC = "satmap"


def route(
    circuit: QuantumCircuit,
    architecture: Architecture,
    spec: RouterSpec | str | Mapping[str, Any] = DEFAULT_SPEC,
    time_budget: float | None = None,
    **options: Any,
) -> RoutingResult:
    """Route ``circuit`` onto ``architecture`` with the router ``spec`` names.

    ``options`` (and a bare ``time_budget``) are conveniences that merge into
    the spec's options, so these are equivalent::

        route(circuit, arch, "satmap:slice_size=10,time_budget=30")
        route(circuit, arch, "satmap", slice_size=10, time_budget=30)
        route(circuit, arch, RouterSpec("satmap", {"slice_size": 10}),
              time_budget=30)
    """
    parsed = RouterSpec.parse(spec)
    if options:
        parsed = parsed.with_options(**options)
    if time_budget is not None:
        parsed = parsed.with_options(time_budget=time_budget)
    return get_router(parsed).route(circuit, architecture)


@dataclass
class RouteRequest:
    """One routing task as declarative data: circuit, architecture, spec.

    The uniform currency between the convenience API and the batch service:
    ``request.run()`` routes in-process, ``request.to_job()`` produces the
    hashable :class:`~repro.service.jobs.RoutingJob` the service queues,
    caches, and ships across process boundaries.
    """

    circuit: QuantumCircuit
    architecture: Architecture
    spec: RouterSpec = field(default_factory=lambda: RouterSpec.parse(DEFAULT_SPEC))
    name: str | None = None

    def __post_init__(self) -> None:
        self.spec = RouterSpec.parse(self.spec).validated()

    def run(self) -> RoutingResult:
        """Route in-process through the registry."""
        return get_router(self.spec).route(self.circuit, self.architecture)

    def to_job(self):
        """The equivalent batch-service job (content-hashed from the spec)."""
        from repro.service.jobs import RoutingJob

        return RoutingJob.from_spec(self.circuit, self.architecture, self.spec,
                                    name=self.name)

    def describe(self) -> dict[str, Any]:
        """JSON-ready summary for logs and telemetry."""
        return {
            "circuit": self.name or self.circuit.name,
            "qubits": self.circuit.num_qubits,
            "two_qubit_gates": self.circuit.num_two_qubit_gates,
            "architecture": self.architecture.name,
            "spec": self.spec.to_dict(),
        }
