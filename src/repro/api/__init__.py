"""repro.api: the canonical public surface for naming and running routers.

Everything that selects a router -- the library, the CLI, the batch service,
the portfolio racer, the experiment harness -- goes through this package:

* :class:`Router` / :class:`BaseRouter` -- the structural protocol every
  router satisfies, and the shared deadline/verify/error-capture scaffolding
  (:mod:`repro.api.protocol`);
* :class:`RouterSpec` -- a declarative, serialisable router selection: name
  plus typed options, parseable from strings like
  ``"satmap:slice_size=25,time_budget=60"``, dicts, and JSON
  (:mod:`repro.api.spec`);
* the registry -- :func:`register_router`, :func:`get_router`,
  :func:`list_routers`, capability filtering (:mod:`repro.api.registry`);
* :func:`route` / :class:`RouteRequest` -- one-call routing built on the
  registry (:mod:`repro.api.routing`).

Example::

    from repro.api import RouterSpec, list_routers, route

    list_routers(capability="noise_aware")       # -> ['noise-satmap']
    spec = RouterSpec.from_string("satmap:slice_size=25,time_budget=30")
    result = route(circuit, architecture, spec)
"""

from repro.api.protocol import BaseRouter, Router, RoutingTimeout, format_error_notes
from repro.api.registry import (
    OptionField,
    RouterEntry,
    UnknownRouterError,
    describe_routers,
    display_name,
    get_router,
    list_routers,
    register_router,
    router_capabilities,
    router_entry,
    unregister_router,
)
from repro.api.routing import DEFAULT_SPEC, RouteRequest, route
from repro.api.spec import RouterSpec, SpecError

__all__ = [
    "Router",
    "BaseRouter",
    "RoutingTimeout",
    "format_error_notes",
    "RouterSpec",
    "SpecError",
    "RouterEntry",
    "OptionField",
    "UnknownRouterError",
    "register_router",
    "unregister_router",
    "get_router",
    "router_entry",
    "router_capabilities",
    "list_routers",
    "describe_routers",
    "display_name",
    "route",
    "RouteRequest",
    "DEFAULT_SPEC",
]
