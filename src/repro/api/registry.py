"""The single, capability-aware router registry.

One mapping from registry names to routers serves every surface: the library
(:func:`repro.api.route`), the CLI, the batch service's worker processes, the
portfolio racer, and the experiment harness.  Each :class:`RouterEntry`
couples a name to a factory, a per-option schema (so specs are validated and
coerced *before* a job reaches a worker), and a set of capability tags --
``noise_aware``, ``optimal``, ``anytime``, ... -- that callers can filter on
without instantiating anything.

Router classes are imported lazily inside the factories: the registry is
imported by ``repro.baselines.base`` (via :mod:`repro.api`), so importing the
router modules at the top level here would be circular.

Capability vocabulary used by the built-in entries:

* ``anytime``     -- returns its best solution so far when the budget expires;
* ``optimal``     -- can prove optimality (of the possibly-relaxed instance);
* ``noise_aware`` -- optimises estimated fidelity, not just SWAP count;
* ``heuristic``   -- polynomial-time search, no optimality guarantee;
* ``exact``       -- exhaustive/complete search;
* ``incremental`` -- reuses live SAT sessions across re-solves;
* ``cyclic``      -- supports the cyclic (repeated-block) relaxation;
* ``fallback``    -- cheap and complete enough to rescue timed-out jobs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Mapping

from repro.api.spec import RouterSpec, SpecError, parse_scalar


class UnknownRouterError(KeyError):
    """A spec names a router no one has registered."""

    def __init__(self, name: str, known: Iterable[str]) -> None:
        super().__init__(
            f"unknown router {name!r}; known routers: {', '.join(sorted(known))}")
        self.router_name = name


@dataclass(frozen=True)
class OptionField:
    """Schema of one router option: name, scalar type, default, doc line."""

    name: str
    type: str  # "int" | "float" | "bool" | "str"
    default: Any = None
    help: str = ""
    allow_none: bool = False

    _TYPES = ("int", "float", "bool", "str")

    def __post_init__(self) -> None:
        if self.type not in self._TYPES:
            raise ValueError(f"option type must be one of {self._TYPES}")

    def coerce(self, value: Any) -> Any:
        """Check/convert one value against this field, or raise SpecError."""
        if value is None:
            if self.allow_none:
                return None
            raise SpecError(f"option {self.name!r} may not be none")
        if isinstance(value, str) and self.type != "str":
            value = parse_scalar(value)
        if self.type == "int":
            if isinstance(value, bool) or not isinstance(value, int):
                raise SpecError(f"option {self.name!r} expects an int, "
                                f"got {value!r}")
            return value
        if self.type == "float":
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                raise SpecError(f"option {self.name!r} expects a number, "
                                f"got {value!r}")
            return float(value)
        if self.type == "bool":
            if not isinstance(value, bool):
                raise SpecError(f"option {self.name!r} expects a bool, "
                                f"got {value!r}")
            return value
        if not isinstance(value, str):
            raise SpecError(f"option {self.name!r} expects a string, got {value!r}")
        return value

    def describe(self) -> dict[str, Any]:
        return {"name": self.name, "type": self.type, "default": self.default,
                "help": self.help, "allow_none": self.allow_none}


@dataclass(frozen=True)
class RouterEntry:
    """One registered router: factory, option schema, capabilities."""

    name: str
    factory: Callable[..., Any]
    summary: str = ""
    capabilities: frozenset[str] = frozenset()
    options: tuple[OptionField, ...] = ()

    def option(self, name: str) -> OptionField | None:
        for option_field in self.options:
            if option_field.name == name:
                return option_field
        return None

    def validate_options(self, options: Mapping[str, Any]) -> dict[str, Any]:
        """Coerce ``options`` against the schema; unknown names are rejected."""
        validated: dict[str, Any] = {}
        for key in sorted(options):
            option_field = self.option(key)
            if option_field is None:
                known = ", ".join(f.name for f in self.options) or "(no options)"
                raise SpecError(f"router {self.name!r} has no option {key!r}; "
                                f"valid options: {known}")
            validated[key] = option_field.coerce(options[key])
        return validated

    def build_options(self, options: Mapping[str, Any]) -> dict[str, Any]:
        """Validated options with schema defaults filled in for the factory."""
        merged = {f.name: f.default for f in self.options}
        merged.update(self.validate_options(options))
        return merged

    def describe(self) -> dict[str, Any]:
        """JSON-ready description for CLI listings and dashboards."""
        return {
            "name": self.name,
            "summary": self.summary,
            "capabilities": sorted(self.capabilities),
            "options": [f.describe() for f in self.options],
        }


_REGISTRY: dict[str, RouterEntry] = {}


def register_router(
    name: str,
    factory: Callable[..., Any],
    summary: str = "",
    capabilities: Iterable[str] = (),
    options: Iterable[OptionField] = (),
    replace: bool = False,
) -> RouterEntry:
    """Register a router under ``name``; returns the entry.

    ``factory`` is called with keyword arguments only (validated options with
    schema defaults filled in) and must return an object satisfying the
    :class:`repro.api.Router` protocol.  Registering an existing name raises
    unless ``replace=True``.
    """
    if not name or not isinstance(name, str):
        raise ValueError("router name must be a non-empty string")
    if name in _REGISTRY and not replace:
        raise ValueError(f"router {name!r} is already registered "
                         f"(pass replace=True to override)")
    entry = RouterEntry(name=name, factory=factory, summary=summary,
                        capabilities=frozenset(capabilities),
                        options=tuple(options))
    _REGISTRY[name] = entry
    return entry


def unregister_router(name: str) -> None:
    """Remove a registration (mainly for tests and plugin teardown)."""
    _REGISTRY.pop(name, None)


def router_entry(name: str) -> RouterEntry:
    """The entry registered under ``name``; raises :class:`UnknownRouterError`."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise UnknownRouterError(name, _REGISTRY) from None


def list_routers(capability: str | Iterable[str] | None = None) -> list[str]:
    """Sorted registry names, optionally filtered by capability tag(s)."""
    if capability is None:
        required: frozenset[str] = frozenset()
    elif isinstance(capability, str):
        required = frozenset((capability,))
    else:
        required = frozenset(capability)
    return sorted(name for name, entry in _REGISTRY.items()
                  if required <= entry.capabilities)


def router_capabilities(name: str) -> frozenset[str]:
    return router_entry(name).capabilities


def describe_routers(capability: str | Iterable[str] | None = None) -> list[dict]:
    """JSON-ready entry descriptions (the payload behind ``repro routers``)."""
    return [router_entry(name).describe() for name in list_routers(capability)]


def get_router(spec: RouterSpec | str | Mapping[str, Any], **defaults: Any):
    """Instantiate the router a spec describes.

    ``defaults`` fill options the spec leaves unset (the service passes its
    per-job ``time_budget`` this way), the spec's own options win, and the
    entry's schema supplies everything else.  Validation happens here, so a
    misconfigured spec fails at submission rather than inside a worker.
    """
    parsed = RouterSpec.parse(spec)
    entry = router_entry(parsed.name)
    if defaults:
        parsed = parsed.with_defaults(**defaults)
    return entry.factory(**entry.build_options(parsed.options))


def display_name(spec: RouterSpec | str | Mapping[str, Any],
                 options: Mapping[str, Any] | None = None) -> str:
    """The router's self-reported display name (``'satmap'`` -> ``'SATMAP'``).

    Experiment records are keyed by the name routers stamp on their results;
    synthetic records (e.g. a hard-timeout entry) must use the same name or
    they fragment the comparison tables.  Falls back to the registry name
    when construction fails.
    """
    try:
        parsed = RouterSpec.parse(spec)
    except Exception:
        return str(spec)
    try:
        if options:
            parsed = parsed.with_options(**options)
        return get_router(parsed, time_budget=1.0).name
    except Exception:
        return parsed.name


# --------------------------------------------------------------------------
# Built-in registrations.  Router classes import lazily inside the factories;
# see the module docstring for why.
# --------------------------------------------------------------------------

def _common_options(time_budget: float = 60.0) -> tuple[OptionField, ...]:
    return (
        OptionField("time_budget", "float", time_budget,
                    "wall-clock budget in seconds"),
        OptionField("verify", "bool", True,
                    "run the independent verifier on every solution"),
    )


_SATMAP_OPTIONS = (
    OptionField("swaps_per_gate", "int", 1,
                "SWAP slots available before each two-qubit gate"),
    OptionField("strategy", "str", "linear",
                "MaxSAT strategy: 'linear' (anytime) or 'core-guided'"),
    OptionField("backtrack_limit", "int", 10,
                "max backtracking steps of the local relaxation"),
    OptionField("collapse_repeated_pairs", "bool", True,
                "merge adjacent repeats of the same interaction"),
    OptionField("incremental", "bool", True,
                "solve through persistent SAT sessions"),
    OptionField("cube_workers", "int", None, allow_none=True,
                help="race this many cube-and-conquer workers over the "
                     "initial-mapping space (default: serial)"),
    OptionField("pipeline_slices", "bool", False,
                "pre-encode slice k+1 in a worker while slice k solves"),
    OptionField("solver_backend", "str", None, allow_none=True,
                help="SAT solve core: 'python', 'native', or 'auto' "
                     "(default: $REPRO_SAT_BACKEND, then auto)"),
)


def _make_satmap(**options):
    from repro.core.satmap import SatMapRouter

    return SatMapRouter(**options)


def _make_noise_satmap(**options):
    from repro.core.noise_aware import NoiseAwareSatMapRouter

    return NoiseAwareSatMapRouter(**options)


def _make_cyclic(**options):
    from repro.core.cyclic import CyclicRouter

    return CyclicRouter(**options)


def _make_hybrid(**options):
    from repro.core.hybrid import HybridSatMapRouter

    return HybridSatMapRouter(**options)


def _baseline_factory(class_name: str):
    def make(**options):
        import repro.baselines as baselines

        return getattr(baselines, class_name)(**options)

    return make


def _register_builtins() -> None:
    register_router(
        "satmap", _make_satmap,
        summary="SATMAP with the locally optimal (slicing) relaxation",
        capabilities=("anytime", "optimal", "incremental"),
        options=_common_options() + _SATMAP_OPTIONS + (
            OptionField("slice_size", "int", 25, allow_none=True,
                        help="two-qubit gates per slice (none disables slicing)"),
        ),
    )
    register_router(
        "nl-satmap", _make_satmap,
        summary="SATMAP on the whole circuit as one MaxSAT instance",
        capabilities=("anytime", "optimal", "incremental"),
        options=_common_options() + _SATMAP_OPTIONS + (
            OptionField("slice_size", "int", None, allow_none=True,
                        help="two-qubit gates per slice (default: no slicing)"),
        ),
    )
    register_router(
        "noise-satmap", _make_noise_satmap,
        summary="SATMAP with the weighted fidelity-maximising objective",
        capabilities=("anytime", "optimal", "incremental", "noise_aware"),
        options=_common_options() + _SATMAP_OPTIONS + (
            OptionField("slice_size", "int", None, allow_none=True,
                        help="two-qubit gates per slice (none disables slicing)"),
            OptionField("noise", "str", "uniform",
                        "noise profile built per architecture: 'uniform' or "
                        "'synthetic'"),
            OptionField("two_qubit_error", "float", 0.02,
                        "edge error rate of the 'uniform' profile"),
            OptionField("single_qubit_error", "float", 0.001,
                        "qubit error rate of the 'uniform' profile"),
            OptionField("seed", "int", 2019, "seed of the 'synthetic' profile"),
        ),
    )
    register_router(
        "cyclic", _make_cyclic,
        summary="cyclic relaxation: route one block, stitch it `cycles` times",
        capabilities=("anytime", "cyclic", "incremental"),
        options=_common_options() + (
            OptionField("cycles", "int", 1,
                        "how many times the input block repeats"),
            OptionField("slice_size", "int", None, allow_none=True,
                        help="slice size of the fallback block solve"),
            OptionField("swaps_per_gate", "int", 1,
                        "SWAP slots available before each two-qubit gate"),
            OptionField("fallback_reset", "bool", True,
                        "on cyclic UNSAT/timeout, route plainly and append "
                        "reset swaps"),
            OptionField("strategy", "str", "linear",
                        "MaxSAT strategy: 'linear' or 'core-guided'"),
            OptionField("incremental", "bool", True,
                        "solve through persistent SAT sessions"),
            OptionField("solver_backend", "str", None, allow_none=True,
                        help="SAT solve core: 'python', 'native', or 'auto'"),
        ),
    )
    register_router(
        "hybrid", _make_hybrid,
        summary="optimal MaxSAT placement followed by SABRE routing",
        capabilities=("anytime", "heuristic"),
        options=_common_options() + (
            OptionField("placement_share", "float", 0.5,
                        "fraction of the budget spent on MaxSAT placement"),
            OptionField("strategy", "str", "linear",
                        "MaxSAT strategy of the placement solve"),
            OptionField("solver_backend", "str", None, allow_none=True,
                        help="SAT solve core: 'python', 'native', or 'auto'"),
        ),
    )
    register_router(
        "sabre", _baseline_factory("SabreRouter"),
        summary="SABRE: bidirectional initial map, lookahead-scored swaps",
        capabilities=("heuristic", "anytime"),
        options=_common_options() + (
            OptionField("lookahead_size", "int", 20,
                        "gates in the extended (lookahead) layer"),
            OptionField("lookahead_weight", "float", 0.5,
                        "weight of the lookahead layer in the swap score"),
            OptionField("decay_factor", "float", 0.001,
                        "per-use decay added to a qubit's swap score"),
            OptionField("decay_reset_interval", "int", 5,
                        "swaps between decay resets"),
            OptionField("bidirectional_passes", "int", 3,
                        "forward/backward passes refining the initial map"),
            OptionField("seed", "int", 0, "tie-breaking seed"),
        ),
    )
    register_router(
        "tket", _baseline_factory("TketLikeRouter"),
        summary="tket-style: greedy graph placement, windowed distance scoring",
        capabilities=("heuristic",),
        options=_common_options() + (
            OptionField("window_size", "int", 15,
                        "gates scored per routing window"),
            OptionField("window_discount", "float", 0.7,
                        "geometric discount of later window gates"),
        ),
    )
    register_router(
        "astar", _baseline_factory("AStarLayerRouter"),
        summary="MQT-style A* over swap sequences between layers",
        capabilities=("heuristic",),
        options=_common_options() + (
            OptionField("expansion_limit", "int", 20000,
                        "A* node expansions per layer"),
        ),
    )
    register_router(
        "bmt", _baseline_factory("BmtLikeRouter"),
        summary="BMT-style: subgraph isomorphism + approximate token swapping",
        capabilities=("heuristic",),
        options=_common_options() + (
            OptionField("max_embedding_attempts", "int", 20_000,
                        "bound on subgraph-embedding search steps"),
        ),
    )
    register_router(
        "naive", _baseline_factory("NaiveShortestPathRouter"),
        summary="no-lookahead shortest-path swaps; the cost-ratio anchor",
        capabilities=("heuristic", "fallback"),
        options=_common_options() + (
            OptionField("smart_initial_mapping", "bool", False,
                        "greedy interaction placement instead of identity"),
        ),
    )
    register_router(
        "olsq", _baseline_factory("OlsqStyleRouter"),
        summary="TB-OLSQ-style SAT model, iterative deepening on swap count",
        capabilities=("exact", "optimal"),
        options=_common_options() + (
            OptionField("swaps_per_gate", "int", 1,
                        "SWAP slots available before each two-qubit gate"),
            OptionField("max_bound", "int", None, allow_none=True,
                        help="stop deepening past this swap bound"),
        ),
    )
    register_router(
        "exact", _baseline_factory("ExhaustiveOptimalRouter"),
        summary="EX-MQT-style exact search over (gate, mapping) states",
        capabilities=("exact", "optimal"),
        options=_common_options() + (
            OptionField("expansion_limit", "int", 2_000_000,
                        "bound on search-state expansions"),
        ),
    )


_register_builtins()
