"""Declarative router specifications.

A :class:`RouterSpec` is the one way to *name* a configured router in this
repository: a registry name plus a flat dictionary of typed options.  Specs
are plain data -- they parse from dicts, JSON, and compact CLI strings like
``"satmap:slice_size=25,time_budget=60"`` and serialise symmetrically with
:meth:`RouterSpec.to_dict`, so the same value that selects a router on the
command line also keys the service's content-addressed result cache and
appears verbatim in telemetry.

The grammar of the string form::

    spec    := name [":" option ("," option)*]
    option  := key "=" value
    value   := int | float | bool | "none" | string

Booleans accept ``true/false``, ``yes/no``, ``on/off`` (case-insensitive);
``none``/``null`` parse to ``None``; everything else stays a string.  Keys
are sorted on output, so ``to_string`` is canonical: two specs with the same
name and options always render identically.

Validation against a router's option schema (types, unknown-option
rejection, defaults) lives in :mod:`repro.api.registry`; a spec itself is
just the parsed, serialisable value.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Mapping


class SpecError(ValueError):
    """A router spec that cannot be parsed or validated."""


def parse_scalar(text: str) -> Any:
    """Parse one option value from its string form (CLI grammar)."""
    lowered = text.strip().lower()
    if lowered in ("true", "yes", "on"):
        return True
    if lowered in ("false", "no", "off"):
        return False
    if lowered in ("none", "null"):
        return None
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        pass
    return text.strip()


def render_scalar(value: Any) -> str:
    """The inverse of :func:`parse_scalar`, used by :meth:`RouterSpec.to_string`."""
    if value is True:
        return "true"
    if value is False:
        return "false"
    if value is None:
        return "none"
    return str(value)


def _check_option_key(key: str) -> str:
    key = key.strip()
    if not key or not key.replace("_", "").isalnum():
        raise SpecError(f"invalid option name {key!r}")
    return key


@dataclass(frozen=True)
class RouterSpec:
    """A router selected by registry name, with typed construction options.

    Instances are immutable; derivation helpers (:meth:`with_options`,
    :meth:`with_defaults`) return new specs.  Equality is structural, so two
    specs parsed from different representations of the same configuration
    compare equal.
    """

    name: str
    options: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise SpecError(f"router name must be a non-empty string, got {self.name!r}")
        # Freeze a private copy so the shared default {} is never mutated.
        object.__setattr__(self, "options", dict(self.options))

    # ------------------------------------------------------------- builders

    @classmethod
    def from_string(cls, text: str) -> "RouterSpec":
        """Parse the compact CLI form, e.g. ``"satmap:slice_size=25"``."""
        if not isinstance(text, str) or not text.strip():
            raise SpecError(f"empty router spec {text!r}")
        name, _, tail = text.strip().partition(":")
        name = name.strip()
        if not name:
            raise SpecError(f"router spec {text!r} has no router name")
        options: dict[str, Any] = {}
        if tail.strip():
            for piece in tail.split(","):
                key, eq, value = piece.partition("=")
                if not eq:
                    raise SpecError(
                        f"malformed option {piece.strip()!r} in spec {text!r} "
                        f"(expected key=value)")
                options[_check_option_key(key)] = parse_scalar(value)
        return cls(name, options)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "RouterSpec":
        """Parse the dict form: ``{"router": name, "options": {...}}``.

        ``"name"`` is accepted as an alias for ``"router"``; any other key is
        rejected so typos surface instead of silently vanishing.
        """
        if not isinstance(data, Mapping):
            raise SpecError(f"expected a mapping, got {type(data).__name__}")
        payload = dict(data)
        name = payload.pop("router", None)
        alias = payload.pop("name", None)
        if name is None:
            name = alias
        elif alias is not None and alias != name:
            raise SpecError(f"spec dict names two routers: {name!r} and {alias!r}")
        options = payload.pop("options", {}) or {}
        if payload:
            raise SpecError(f"unknown spec keys {sorted(payload)} "
                            f"(expected 'router' and 'options')")
        if not isinstance(options, Mapping):
            raise SpecError("spec 'options' must be a mapping")
        if not name:
            raise SpecError("spec dict needs a 'router' name")
        return cls(str(name), dict(options))

    @classmethod
    def from_json(cls, text: str) -> "RouterSpec":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as error:
            raise SpecError(f"invalid JSON router spec: {error}") from None
        return cls.from_dict(data)

    @classmethod
    def parse(cls, value: "RouterSpec | str | Mapping[str, Any]") -> "RouterSpec":
        """Coerce any accepted representation into a spec.

        Accepts an existing spec (returned as-is), a compact string, or a
        dict -- the single entry point every API that takes a "router"
        argument funnels through.
        """
        if isinstance(value, cls):
            return value
        if isinstance(value, str):
            return cls.from_string(value)
        if isinstance(value, Mapping):
            return cls.from_dict(value)
        raise SpecError(
            f"cannot interpret {type(value).__name__} as a router spec "
            f"(expected RouterSpec, str, or dict)")

    # ---------------------------------------------------------- serialisers

    def to_dict(self) -> dict[str, Any]:
        """Canonical dict form; feeds cache keys and telemetry verbatim."""
        return {"router": self.name,
                "options": {key: self.options[key] for key in sorted(self.options)}}

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))

    def to_string(self) -> str:
        """Canonical compact form; round-trips through :meth:`from_string`."""
        if not self.options:
            return self.name
        rendered = ",".join(f"{key}={render_scalar(self.options[key])}"
                            for key in sorted(self.options))
        return f"{self.name}:{rendered}"

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.to_string()

    # ------------------------------------------------------------ derivation

    def with_options(self, **overrides: Any) -> "RouterSpec":
        """A new spec with ``overrides`` replacing/adding options."""
        merged = dict(self.options)
        merged.update(overrides)
        return RouterSpec(self.name, merged)

    def with_defaults(self, **defaults: Any) -> "RouterSpec":
        """A new spec where ``defaults`` fill only *missing* options."""
        merged = dict(defaults)
        merged.update(self.options)
        return RouterSpec(self.name, merged)

    # ------------------------------------------------------------ validation

    def validated(self) -> "RouterSpec":
        """This spec with options type-checked and coerced by the registry.

        Raises :class:`~repro.api.registry.UnknownRouterError` for an
        unregistered name and :class:`SpecError` for unknown or ill-typed
        options.  Import is deferred to keep this module dependency-free.
        """
        from repro.api.registry import router_entry

        entry = router_entry(self.name)
        return RouterSpec(self.name, entry.validate_options(self.options))

    def build(self, **defaults: Any):
        """Instantiate the configured router (see :func:`repro.api.get_router`)."""
        from repro.api.registry import get_router

        return get_router(self, **defaults)
