"""The Router protocol and the shared routing scaffolding.

Every mapping-and-routing algorithm in this repository -- SATMAP and its
variants, the heuristic and constraint-based baselines, and any router a user
registers -- satisfies the same structural :class:`Router` protocol: a
``name`` attribute and a ``route(circuit, architecture) -> RoutingResult``
method.  The protocol is ``runtime_checkable``, so ``isinstance(obj, Router)``
works on anything with the right shape, inheritance or not.

:class:`BaseRouter` is the shared implementation of everything *around* an
algorithm: wall-clock deadlines, timeout translation, error capture (with the
traceback tail recorded in ``RoutingResult.notes`` so failures name their
site), result stamping, and post-hoc verification.  Subclasses implement only
:meth:`BaseRouter._route`.

This module was lifted out of ``repro.baselines.base`` so the SATMAP family
and the baselines share one scaffolding; ``repro.baselines.base.Router``
remains as a deprecated alias.
"""

from __future__ import annotations

import abc
import time
import traceback
from typing import Protocol, runtime_checkable

from repro.circuits.circuit import QuantumCircuit
from repro.core.result import RoutingResult, RoutingStatus
from repro.core.verifier import verify_routing
from repro.hardware.architecture import Architecture
from repro.obs import trace as obs_trace


class RoutingTimeout(Exception):
    """Raised internally when a router exceeds its deadline."""


@runtime_checkable
class Router(Protocol):
    """Structural interface of every router: a name and a ``route`` method."""

    name: str

    def route(self, circuit: QuantumCircuit,
              architecture: Architecture) -> RoutingResult:
        """Map and route ``circuit`` onto ``architecture``."""
        ...  # pragma: no cover - protocol body


def format_error_notes(error: BaseException, frames: int = 3) -> str:
    """``type: message`` plus the innermost traceback frames.

    A bare ``type: message`` loses the failure site; the tail (innermost
    frame first) makes an ERROR result debuggable from its notes alone.
    """
    notes = f"{type(error).__name__}: {error}"
    tail = traceback.extract_tb(error.__traceback__)[-frames:]
    if tail:
        site = " <- ".join(
            f"{frame.filename.rsplit('/', 1)[-1]}:{frame.lineno} in {frame.name}"
            for frame in reversed(tail))
        notes += f" [at {site}]"
    return notes


class BaseRouter(abc.ABC):
    """Deadline, error-capture, stamping, and verification scaffolding.

    Subclasses implement :meth:`_route`; everything else -- translating
    :class:`RoutingTimeout` into a TIMEOUT result, capturing crashes as ERROR
    results with the failure site in ``notes``, stamping the router/circuit
    names and wall-clock time, and running the independent verifier on every
    produced solution -- is shared here.
    """

    name: str = "router"

    def __init__(self, time_budget: float = 60.0, verify: bool = True) -> None:
        if time_budget <= 0:
            raise ValueError("time_budget must be positive")
        self.time_budget = time_budget
        self.verify = verify

    def route(self, circuit: QuantumCircuit,
              architecture: Architecture) -> RoutingResult:
        """Route ``circuit`` onto ``architecture`` within the time budget."""
        start = time.monotonic()
        deadline = start + self.time_budget
        try:
            result = self._route(circuit, architecture, deadline)
        except RoutingTimeout:
            return RoutingResult(
                status=RoutingStatus.TIMEOUT,
                router_name=self.name,
                circuit_name=circuit.name,
                solve_time=time.monotonic() - start,
            )
        except Exception as error:
            return RoutingResult(
                status=RoutingStatus.ERROR,
                router_name=self.name,
                circuit_name=circuit.name,
                solve_time=time.monotonic() - start,
                notes=format_error_notes(error),
            )
        result.router_name = self.name
        result.circuit_name = self._circuit_label(circuit)
        result.solve_time = time.monotonic() - start
        if result.solved and self.verify and result.routed_circuit is not None:
            with obs_trace.span("verify") as verify_span:
                self._verify(circuit, architecture, result)
                verify_span.set(swaps=result.swap_count)
        return result

    @abc.abstractmethod
    def _route(self, circuit: QuantumCircuit, architecture: Architecture,
               deadline: float) -> RoutingResult:
        """Algorithm-specific implementation."""

    # ----------------------------------------------------------------- hooks

    def _circuit_label(self, circuit: QuantumCircuit) -> str:
        """The circuit name stamped on results (overridable for wrappers)."""
        return circuit.name

    def _verify(self, circuit: QuantumCircuit, architecture: Architecture,
                result: RoutingResult) -> None:
        """Check a solved result with the independent verifier.

        Wrappers whose routed circuit is not the input circuit verbatim (the
        cyclic router stitches ``cycles`` copies) override this to verify
        against the right reference.
        """
        verify_routing(circuit, result.routed_circuit, result.initial_mapping,
                       architecture)

    @staticmethod
    def check_deadline(deadline: float) -> None:
        if time.monotonic() > deadline:
            raise RoutingTimeout
