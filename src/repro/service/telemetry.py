"""Structured service telemetry: per-job events, counters, and histograms.

Every stage of a job's life emits a :class:`ServiceEvent` -- ``queued``,
``started``, ``cache-hit``, ``cache-store``, ``fallback``, ``finished``,
``failed`` -- into a :class:`TelemetryLog`.  The log keeps the raw event
stream (for inspection and tests) in a bounded ring buffer, aggregate
counters and latency histograms that stay exact regardless of event
eviction, and enough timing to report throughput.  Subscribers can attach a
callback to observe events as they happen; the batch queue uses this for
progress reporting.  A raising subscriber is dropped (and counted under
``subscriber-error``) rather than allowed to abort ``record()`` mid-job.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass, field
from typing import Callable

from repro.obs.metrics import (DEFAULT_COUNT_BUCKETS, MetricsRegistry)

EVENT_KINDS = (
    "queued", "started", "cache-hit", "cache-store", "cache-reject",
    "cache-evict", "fallback", "finished", "failed",
)


@dataclass(frozen=True)
class ServiceEvent:
    """One structured telemetry record."""

    kind: str
    job_key: str
    job_name: str = ""
    elapsed: float = 0.0  # seconds since the log was created
    detail: dict = field(default_factory=dict)

    def format(self) -> str:
        extra = " ".join(f"{k}={v}" for k, v in sorted(self.detail.items()))
        return (f"[{self.elapsed:8.3f}s] {self.kind:<12} {self.job_name} "
                f"({self.job_key}){' ' + extra if extra else ''}")


class TelemetryLog:
    """Collects events and derives the aggregate service counters.

    Parameters
    ----------
    metrics:
        A :class:`~repro.obs.MetricsRegistry` to register the latency
        histograms on; one is created when omitted.  The server shares this
        registry with its own instruments so ``/metrics`` is a single
        document.
    max_events:
        Ring-buffer capacity for the raw event stream.  Older events are
        evicted past the bound so a long-running gateway does not grow
        without limit; counters, stage totals, and histograms are updated
        at record time and stay exact regardless of eviction.
    """

    def __init__(self, metrics: MetricsRegistry | None = None,
                 max_events: int = 10_000) -> None:
        if max_events <= 0:
            raise ValueError("max_events must be positive")
        self._start = time.monotonic()
        self.max_events = max_events
        self.events: deque[ServiceEvent] = deque(maxlen=max_events)
        self.counters: dict[str, int] = {kind: 0 for kind in EVENT_KINDS}
        self._subscribers: list[Callable[[ServiceEvent], None]] = []
        self._solve_time_total = 0.0
        #: Per-stage solve-path seconds summed over finished jobs
        #: ("encode" / "solve" / "extract"), from ``stage_*`` event details.
        self.stage_totals: dict[str, float] = {}
        #: Session-reuse counters summed over finished jobs.
        self.clauses_streamed = 0
        self.learnt_retained = 0
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._job_seconds = self.metrics.histogram(
            "repro_job_seconds",
            "End-to-end solve seconds per finished routing job")
        self._stage_seconds = self.metrics.histogram(
            "repro_stage_seconds",
            "Solve-path seconds per stage (encode / solve / extract) "
            "per finished job")
        self._queue_wait = self.metrics.histogram(
            "repro_queue_wait_seconds",
            "Seconds a job waited between submission and dispatch")
        self._solve_conflicts = self.metrics.histogram(
            "repro_solve_conflicts",
            "CDCL conflicts accumulated per finished job",
            buckets=DEFAULT_COUNT_BUCKETS)
        self._sat_solve_seconds = self.metrics.histogram(
            "repro_sat_solve_seconds",
            "Solve-stage seconds per finished job by SAT solve core "
            "(backend label: python | native)")

    # ------------------------------------------------------------ recording

    def record(self, kind: str, job_key: str, job_name: str = "", **detail) -> ServiceEvent:
        """Append an event, update counters/histograms, notify subscribers."""
        if kind not in self.counters:
            self.counters[kind] = 0
        event = ServiceEvent(kind=kind, job_key=job_key, job_name=job_name,
                             elapsed=time.monotonic() - self._start,
                             detail=dict(detail))
        self.events.append(event)
        self.counters[kind] += 1
        if kind == "finished":
            self._solve_time_total += float(detail.get("solve_time", 0.0))
            self._job_seconds.observe(float(detail.get("solve_time", 0.0)))
            for key, value in detail.items():
                if key.startswith("stage_"):
                    stage = key[len("stage_"):]
                    self.stage_totals[stage] = (self.stage_totals.get(stage, 0.0)
                                                + float(value))
                    self._stage_seconds.observe(float(value), stage=stage)
            self.clauses_streamed += int(detail.get("clauses_streamed", 0))
            self.learnt_retained += int(detail.get("learnt_retained", 0))
            if "conflicts" in detail:
                self._solve_conflicts.observe(float(detail["conflicts"]))
            if "solver_backend" in detail:
                self._sat_solve_seconds.observe(
                    float(detail.get("stage_solve",
                                     detail.get("solve_time", 0.0))),
                    backend=str(detail["solver_backend"]))
            if "queue_wait" in detail:
                self._queue_wait.observe(float(detail["queue_wait"]))
        for subscriber in list(self._subscribers):
            try:
                subscriber(event)
            except Exception:
                # A broken observer must never abort record() mid-job: drop
                # it so it cannot fail again, and make the drop visible.
                try:
                    self._subscribers.remove(subscriber)
                except ValueError:
                    pass
                self.counters["subscriber-error"] = (
                    self.counters.get("subscriber-error", 0) + 1)
        return event

    def observe_queue_wait(self, seconds: float) -> None:
        """Feed the queue-wait histogram directly (the gateway's dispatch path)."""
        self._queue_wait.observe(float(seconds))

    def subscribe(self, callback: Callable[[ServiceEvent], None]) -> None:
        """Attach a progress callback invoked for every subsequent event."""
        self._subscribers.append(callback)

    # ------------------------------------------------------------- queries

    def events_for(self, job_key: str) -> list[ServiceEvent]:
        return [event for event in self.events if event.job_key == job_key]

    def kinds_for(self, job_key: str) -> list[str]:
        return [event.kind for event in self.events_for(job_key)]

    @property
    def cache_hits(self) -> int:
        return self.counters.get("cache-hit", 0)

    @property
    def jobs_finished(self) -> int:
        return self.counters.get("finished", 0) + self.cache_hits

    @property
    def wall_time(self) -> float:
        return time.monotonic() - self._start

    def throughput(self) -> float:
        """Completed jobs (including cache hits) per wall-clock second."""
        elapsed = self.wall_time
        return self.jobs_finished / elapsed if elapsed > 0 else 0.0

    def summary(self) -> str:
        """Multi-line human-readable roll-up of the counters."""
        lines = ["service telemetry:"]
        for kind in sorted(self.counters):
            if self.counters[kind]:
                lines.append(f"  {kind:<12} {self.counters[kind]}")
        lines.append(f"  {'wall time':<12} {self.wall_time:.3f}s")
        lines.append(f"  {'solver time':<12} {self._solve_time_total:.3f}s")
        for stage in ("encode", "solve", "extract"):
            if stage in self.stage_totals:
                lines.append(f"  {'· ' + stage:<12} {self.stage_totals[stage]:.3f}s")
        if self.clauses_streamed:
            lines.append(f"  {'streamed':<12} {self.clauses_streamed} clauses")
        if self.learnt_retained:
            lines.append(f"  {'learnt kept':<12} {self.learnt_retained} clauses")
        lines.append(f"  {'throughput':<12} {self.throughput():.2f} jobs/s")
        return "\n".join(lines)
