"""Structured service telemetry: per-job events and aggregate counters.

Every stage of a job's life emits a :class:`ServiceEvent` -- ``queued``,
``started``, ``cache-hit``, ``cache-store``, ``fallback``, ``finished``,
``failed`` -- into a :class:`TelemetryLog`.  The log keeps the raw event
stream (for inspection and tests), aggregate counters, and enough timing to
report throughput.  Subscribers can attach a callback to observe events as
they happen; the batch queue uses this for progress reporting.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable

EVENT_KINDS = (
    "queued", "started", "cache-hit", "cache-store", "cache-reject",
    "cache-evict", "fallback", "finished", "failed",
)


@dataclass(frozen=True)
class ServiceEvent:
    """One structured telemetry record."""

    kind: str
    job_key: str
    job_name: str = ""
    elapsed: float = 0.0  # seconds since the log was created
    detail: dict = field(default_factory=dict)

    def format(self) -> str:
        extra = " ".join(f"{k}={v}" for k, v in sorted(self.detail.items()))
        return (f"[{self.elapsed:8.3f}s] {self.kind:<12} {self.job_name} "
                f"({self.job_key}){' ' + extra if extra else ''}")


class TelemetryLog:
    """Collects events and derives the aggregate service counters."""

    def __init__(self) -> None:
        self._start = time.monotonic()
        self.events: list[ServiceEvent] = []
        self.counters: dict[str, int] = {kind: 0 for kind in EVENT_KINDS}
        self._subscribers: list[Callable[[ServiceEvent], None]] = []
        self._solve_time_total = 0.0
        #: Per-stage solve-path seconds summed over finished jobs
        #: ("encode" / "solve" / "extract"), from ``stage_*`` event details.
        self.stage_totals: dict[str, float] = {}
        #: Session-reuse counters summed over finished jobs.
        self.clauses_streamed = 0
        self.learnt_retained = 0

    # ------------------------------------------------------------ recording

    def record(self, kind: str, job_key: str, job_name: str = "", **detail) -> ServiceEvent:
        """Append an event, update counters, and notify subscribers."""
        if kind not in self.counters:
            self.counters[kind] = 0
        event = ServiceEvent(kind=kind, job_key=job_key, job_name=job_name,
                             elapsed=time.monotonic() - self._start,
                             detail=dict(detail))
        self.events.append(event)
        self.counters[kind] += 1
        if kind == "finished":
            self._solve_time_total += float(detail.get("solve_time", 0.0))
            for key, value in detail.items():
                if key.startswith("stage_"):
                    stage = key[len("stage_"):]
                    self.stage_totals[stage] = (self.stage_totals.get(stage, 0.0)
                                                + float(value))
            self.clauses_streamed += int(detail.get("clauses_streamed", 0))
            self.learnt_retained += int(detail.get("learnt_retained", 0))
        for subscriber in list(self._subscribers):
            subscriber(event)
        return event

    def subscribe(self, callback: Callable[[ServiceEvent], None]) -> None:
        """Attach a progress callback invoked for every subsequent event."""
        self._subscribers.append(callback)

    # ------------------------------------------------------------- queries

    def events_for(self, job_key: str) -> list[ServiceEvent]:
        return [event for event in self.events if event.job_key == job_key]

    def kinds_for(self, job_key: str) -> list[str]:
        return [event.kind for event in self.events_for(job_key)]

    @property
    def cache_hits(self) -> int:
        return self.counters.get("cache-hit", 0)

    @property
    def jobs_finished(self) -> int:
        return self.counters.get("finished", 0) + self.cache_hits

    @property
    def wall_time(self) -> float:
        return time.monotonic() - self._start

    def throughput(self) -> float:
        """Completed jobs (including cache hits) per wall-clock second."""
        elapsed = self.wall_time
        return self.jobs_finished / elapsed if elapsed > 0 else 0.0

    def summary(self) -> str:
        """Multi-line human-readable roll-up of the counters."""
        lines = ["service telemetry:"]
        for kind in sorted(self.counters):
            if self.counters[kind]:
                lines.append(f"  {kind:<12} {self.counters[kind]}")
        lines.append(f"  {'wall time':<12} {self.wall_time:.3f}s")
        lines.append(f"  {'solver time':<12} {self._solve_time_total:.3f}s")
        for stage in ("encode", "solve", "extract"):
            if stage in self.stage_totals:
                lines.append(f"  {'· ' + stage:<12} {self.stage_totals[stage]:.3f}s")
        if self.clauses_streamed:
            lines.append(f"  {'streamed':<12} {self.clauses_streamed} clauses")
        if self.learnt_retained:
            lines.append(f"  {'learnt kept':<12} {self.learnt_retained} clauses")
        lines.append(f"  {'throughput':<12} {self.throughput():.2f} jobs/s")
        return "\n".join(lines)
