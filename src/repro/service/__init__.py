"""Batch routing service: parallel execution, portfolio racing, result cache.

This subsystem turns the single-call routers of :mod:`repro.core` and
:mod:`repro.baselines` into a throughput-oriented service:

* :mod:`repro.service.jobs` -- self-contained, content-hashed job specs;
* :mod:`repro.service.registry` -- routers constructible by name in workers;
* :mod:`repro.service.cache` -- content-addressed, verified result cache
  (in-memory + on-disk JSON);
* :mod:`repro.service.pool` -- process/thread/serial worker pool with
  graceful per-job timeouts (best-so-far semantics);
* :mod:`repro.service.portfolio` -- race SATMAP against heuristic baselines,
  return the cheapest verified result, cancel the losers;
* :mod:`repro.service.queue` -- cost-priority batch scheduling with
  deterministic ordering and progress callbacks;
* :mod:`repro.service.telemetry` -- structured per-job events and throughput
  counters;
* :mod:`repro.service.service` -- the :class:`BatchRoutingService` facade.
"""

from repro.service.cache import ResultCache, payload_to_result, result_to_payload, verify_cached_result
from repro.service.jobs import RoutingJob
from repro.service.pool import WorkerPool, execute_job, is_fallback_result, outcome_to_result
from repro.service.portfolio import race_portfolio, race_portfolio_batch
from repro.service.queue import BatchProgress, JobQueue, dispatch_order
from repro.service.registry import (
    DEFAULT_PORTFOLIO,
    FALLBACK_ROUTER,
    build_router,
    router_names,
)
from repro.service.service import BatchRoutingService
from repro.service.telemetry import ServiceEvent, TelemetryLog

__all__ = [
    "BatchRoutingService",
    "RoutingJob",
    "ResultCache",
    "WorkerPool",
    "JobQueue",
    "BatchProgress",
    "TelemetryLog",
    "ServiceEvent",
    "race_portfolio",
    "race_portfolio_batch",
    "is_fallback_result",
    "dispatch_order",
    "build_router",
    "router_names",
    "execute_job",
    "outcome_to_result",
    "result_to_payload",
    "payload_to_result",
    "verify_cached_result",
    "DEFAULT_PORTFOLIO",
    "FALLBACK_ROUTER",
]
