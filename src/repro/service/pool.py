"""Worker pool: fan routing jobs out across processes with time budgets.

The pool executes :class:`~repro.service.jobs.RoutingJob`\\ s via a
``concurrent.futures`` executor.  Three modes:

* ``process`` -- ``ProcessPoolExecutor``; true parallelism for the CPU-bound
  SAT search.  Jobs and results cross the boundary as plain data (the job is
  a picklable dataclass, the result travels as the JSON payload from
  :mod:`repro.service.cache`).
* ``thread`` -- ``ThreadPoolExecutor``; GIL-bound but useful when processes
  are unavailable (restricted sandboxes) or for I/O-ish workloads.
* ``serial`` -- execute inline in submission order; the reference behaviour
  every parallel mode must reproduce.

``auto`` picks ``process`` when more than one CPU is visible and falls back
gracefully (process -> thread -> serial) if an executor cannot be created.

Timeout semantics are *graceful*: every router in this repository is anytime
(it returns its best solution when the budget expires), so the per-job budget
is enforced primarily by the router itself.  If the primary router still
fails to produce a solution -- hard timeout, crash, genuinely stuck -- the
worker runs the fast fallback router so the caller receives a feasible
best-so-far result rather than nothing.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import Future, ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from typing import Callable

from repro.api.registry import display_name, get_router
from repro.core.result import RoutingResult, RoutingStatus
from repro.obs import trace as obs_trace
from repro.service.cache import payload_to_result, result_to_payload
from repro.service.jobs import RoutingJob
from repro.service.registry import FALLBACK_ROUTER

#: Default extra wall-clock slack (seconds) granted on top of a job's budget
#: before the pool declares a hard timeout.  Routers self-terminate at their
#: budget; the slack covers process startup, QASM parsing, and verification.
#: Per-pool override: ``WorkerPool(slack=...)``; process-wide override: the
#: ``REPRO_POOL_SLACK`` environment variable.
HARD_TIMEOUT_SLACK = 30.0


def _default_slack() -> float:
    """The effective default slack, honouring ``REPRO_POOL_SLACK``."""
    raw = os.environ.get("REPRO_POOL_SLACK")
    if raw is None:
        return HARD_TIMEOUT_SLACK
    try:
        slack = float(raw)
    except ValueError:
        raise ValueError(
            f"REPRO_POOL_SLACK must be a number, got {raw!r}") from None
    if slack < 0:
        raise ValueError(f"REPRO_POOL_SLACK must be >= 0, got {slack}")
    return slack

#: Notes markers stamped on results that were produced by the fallback
#: router instead of the one the job asked for.  The service uses
#: :func:`is_fallback_result` to keep such substitutes out of the cache: a
#: job's content hash names a specific router, and a rescued answer under
#: that hash would be served forever in place of the real router's result.
_FALLBACK_MARKERS = ("fallback=", "rescued after ")


def is_fallback_result(result: RoutingResult) -> bool:
    """Whether a result came from the fallback router, not the job's own."""
    return any(marker in result.notes for marker in _FALLBACK_MARKERS)


def execute_job(job: RoutingJob, time_budget: float, fallback: bool = True) -> dict:
    """Run one job to completion inside a worker; returns a picklable outcome.

    The outcome dict has ``solved``, ``status``, ``router_name``, ``notes``,
    ``solve_time``, and -- when solved -- the serialised result ``payload``.
    When ``fallback`` is true and the primary router produced no solution,
    the fallback router's feasible answer is returned instead (annotated so
    callers can see the substitution).

    When the job carries a ``trace_context`` (set by the dispatching
    service), the worker builds its own span subtree -- ``queue-wait``
    synthesised from the context's ``enqueued_at``, then the router's
    encode/solve/extract/verify spans -- and ships it back serialised as
    ``outcome["trace"]`` for the parent to graft under the submitter's span.
    """
    context = job.trace_context
    root = None
    if context is not None:
        tracer = obs_trace.Tracer(max_traces=1)
        dispatched = time.time()
        enqueued = context.get("enqueued_at")
        # The root is anchored at enqueue time so the synthesised queue-wait
        # child nests inside it; "route" therefore spans wait + work.
        start = min(float(enqueued), dispatched) if enqueued is not None else None
        root = tracer.start_trace("route", start=start,
                                  job=job.key, router=job.router)
        if enqueued is not None:
            tracer.record("queue-wait", root, start=float(enqueued),
                          duration=max(0.0, dispatched - float(enqueued)))
        with obs_trace.activate(tracer, root):
            result = _execute(job, time_budget, fallback)
        root.finish(status=result.status.value,
                    router=result.router_name,
                    **result.solver_stats)
    else:
        result = _execute(job, time_budget, fallback)
    outcome = _outcome_from_result(job, result)
    if root is not None:
        outcome["trace"] = root.to_dict()
        outcome["trace_context"] = dict(context)
    return outcome


def _execute(job: RoutingJob, time_budget: float, fallback: bool) -> RoutingResult:
    circuit = job.circuit()
    architecture = job.architecture()
    router = get_router(job.spec(), time_budget=time_budget)
    result = router.route(circuit, architecture)
    if not result.solved and fallback and job.router != FALLBACK_ROUTER:
        with obs_trace.span("fallback", router=FALLBACK_ROUTER):
            rescue = get_router(FALLBACK_ROUTER,
                                time_budget=max(time_budget, 1.0)).route(
                circuit, architecture)
        if rescue.solved:
            rescue.notes = (f"fallback={FALLBACK_ROUTER} after {job.router} "
                            f"{result.status.value}"
                            + (f"; {rescue.notes}" if rescue.notes else ""))
            rescue.solve_time += result.solve_time
            result = rescue
    return result


def _outcome_from_result(job: RoutingJob, result: RoutingResult) -> dict:
    outcome = {
        "job_key": job.key,
        "solved": result.solved,
        "status": result.status.value,
        "router_name": result.router_name,
        "notes": result.notes,
        "solve_time": result.solve_time,
        "payload": None,
    }
    if result.solved and result.routed_circuit is not None:
        outcome["payload"] = result_to_payload(result)
    return outcome


def outcome_to_result(job: RoutingJob, outcome: dict) -> RoutingResult:
    """Rebuild a :class:`RoutingResult` from a worker outcome dict."""
    if outcome.get("payload") is not None:
        result = payload_to_result(outcome["payload"])
    else:
        result = RoutingResult(
            status=RoutingStatus(outcome.get("status", "error")),
            router_name=outcome.get("router_name", job.router),
            circuit_name=job.name,
            solve_time=float(outcome.get("solve_time", 0.0)),
            notes=outcome.get("notes", ""),
        )
    if outcome.get("trace") is not None:
        result.trace = outcome["trace"]
    return result


class _SerialExecutor:
    """Minimal executor that runs submissions inline, in order."""

    def submit(self, function, *args, **kwargs) -> Future:
        future: Future = Future()
        try:
            future.set_result(function(*args, **kwargs))
        except BaseException as error:  # noqa: BLE001 - mirror executor semantics
            future.set_exception(error)
        return future

    def shutdown(self, wait: bool = True, **_) -> None:
        return None


class WorkerPool:
    """Executes routing jobs under per-job time budgets.

    Parameters
    ----------
    max_workers:
        Worker count; defaults to the visible CPU count.
    mode:
        ``"auto"``, ``"process"``, ``"thread"``, or ``"serial"``.
    fallback:
        Whether unsolved jobs are rescued with the fallback router.
    slack:
        Extra wall-clock seconds on top of each job's budget before a hard
        timeout; defaults to ``REPRO_POOL_SLACK`` or ``HARD_TIMEOUT_SLACK``.
    """

    def __init__(self, max_workers: int | None = None, mode: str = "auto",
                 fallback: bool = True, slack: float | None = None) -> None:
        if mode not in ("auto", "process", "thread", "serial"):
            raise ValueError(f"unknown pool mode {mode!r}")
        if slack is None:
            slack = _default_slack()
        elif not isinstance(slack, (int, float)) or isinstance(slack, bool):
            raise ValueError(f"slack must be a number, got {slack!r}")
        elif slack < 0:
            raise ValueError(f"slack must be >= 0, got {slack}")
        self.slack = float(slack)
        cpus = os.cpu_count() or 1
        self.max_workers = max(1, max_workers if max_workers is not None else cpus)
        self.fallback = fallback
        self.requested_mode = mode
        if mode == "auto":
            mode = "process" if cpus > 1 and self.max_workers > 1 else "serial"
        self.mode, self._executor = self._make_executor(mode)

    def _make_executor(self, mode: str):
        if mode == "process":
            try:
                executor = ProcessPoolExecutor(max_workers=self.max_workers)
                # Surface pool-creation failures (missing /dev/shm and the
                # like) here rather than at first submit.
                executor.submit(int, 0).result(timeout=60)
                return "process", executor
            except Exception:
                mode = "thread"
        if mode == "thread":
            try:
                return "thread", ThreadPoolExecutor(max_workers=self.max_workers)
            except Exception:
                mode = "serial"
        return "serial", _SerialExecutor()

    # ------------------------------------------------------------------ API

    def submit(self, job: RoutingJob, time_budget: float,
               fallback: bool | None = None) -> Future:
        """Schedule one job; the future resolves to a worker outcome dict."""
        use_fallback = self.fallback if fallback is None else fallback
        return self._executor.submit(execute_job, job, time_budget, use_fallback)

    def run(self, jobs: list[RoutingJob], time_budget: float,
            on_done: Callable[[int, RoutingJob, RoutingResult], None] | None = None,
            ) -> list[RoutingResult]:
        """Run a batch and return results in submission order.

        Each job gets the same ``time_budget``; a job that blows through
        ``budget + slack`` wall-clock is declared a hard timeout and rescued
        inline with the fallback router, so the returned list always lines up
        one-to-one with ``jobs``.
        """
        futures = [self.submit(job, time_budget) for job in jobs]
        deadline = time.monotonic() + (time_budget + self.slack) * max(
            1, len(jobs) // self.max_workers + 1)
        results: list[RoutingResult] = []
        for index, (job, future) in enumerate(zip(jobs, futures)):
            remaining = max(deadline - time.monotonic(), 0.1)
            try:
                outcome = future.result(timeout=remaining)
                result = outcome_to_result(job, outcome)
            except FutureTimeoutError:
                future.cancel()
                result = self._rescue(job, "hard timeout in worker pool")
            except Exception as error:  # worker crashed / broken pool
                result = self._rescue(job, f"{type(error).__name__}: {error}")
            results.append(result)
            if on_done is not None:
                on_done(index, job, result)
        return results

    def _rescue(self, job: RoutingJob, reason: str) -> RoutingResult:
        """Best-so-far answer for a job whose worker never delivered."""
        if self.fallback:
            try:
                outcome = execute_job(job.with_router(FALLBACK_ROUTER),
                                      time_budget=5.0, fallback=False)
                result = outcome_to_result(job, outcome)
                if result.solved:
                    result.notes = (f"rescued after {reason}"
                                    + (f"; {result.notes}" if result.notes else ""))
                    return result
            except Exception:  # pragma: no cover - rescue is best-effort
                pass
        return RoutingResult(status=RoutingStatus.TIMEOUT,
                             router_name=display_name(job.router, job.options),
                             circuit_name=job.name, notes=reason)

    # ------------------------------------------------------------ lifecycle

    def close(self) -> None:
        self._executor.shutdown(wait=True)

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
