"""Content-addressed cache of verified routing results.

The cache maps a job's content hash (see
:meth:`repro.service.jobs.RoutingJob.content_hash`) to a serialised
:class:`~repro.core.result.RoutingResult`.  Two layers:

* an in-memory dict for the lifetime of a service instance, and
* an optional on-disk JSON directory (one ``<hash>.json`` per entry) so a
  second process -- or a second CLI invocation -- reuses earlier work.

Trust model: the cache trusts *nothing*.  Entries are re-verified with the
independent verifier (:func:`repro.core.verifier.verify_routing`) against the
job's own circuit and architecture on every load, and results are verified
again before being stored.  A corrupted, tampered, or stale entry therefore
degrades to a cache miss (and is evicted) instead of propagating a wrong
answer -- crucial because the on-disk layer is plain JSON anyone can edit.
"""

from __future__ import annotations

import json
import os
import threading
import time
from pathlib import Path

try:  # POSIX file locking; absent on some platforms -- degrade to no-op
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX
    fcntl = None

from repro.circuits.qasm import circuit_to_qasm, parse_qasm
from repro.core.result import RoutingResult, RoutingStatus
from repro.core.verifier import verify_routing
from repro.service.jobs import RoutingJob

#: Bump when the serialisation layout changes; mismatched entries are misses.
CACHE_FORMAT_VERSION = 1


class _DirectoryLock:
    """An exclusive inter-process lock on a cache directory.

    Serialises the eviction scan and disk writes across the fleet's shard
    workers, which all share one cache directory.  Backed by ``flock`` on a
    ``.lock`` sentinel file; a fresh handle is opened per acquisition so the
    lock is also safe to take from multiple threads of one process (POSIX
    ``flock`` is per-open-file-description).  Degrades to a no-op when the
    cache is memory-only or the platform has no ``fcntl`` -- single-process
    behaviour is then unchanged.
    """

    def __init__(self, directory: Path | None) -> None:
        self.path = directory / ".lock" if directory is not None else None
        self._local = threading.local()

    def __enter__(self) -> "_DirectoryLock":
        self._local.handle = None
        if self.path is not None and fcntl is not None:
            try:
                handle = open(self.path, "a")
                fcntl.flock(handle.fileno(), fcntl.LOCK_EX)
                self._local.handle = handle
            except OSError:  # pragma: no cover - unwritable directory
                pass  # proceed unlocked; atomic renames still keep files whole
        return self

    def __exit__(self, *exc_info) -> None:
        handle = getattr(self._local, "handle", None)
        if handle is not None:
            try:
                fcntl.flock(handle.fileno(), fcntl.LOCK_UN)
            except OSError:  # pragma: no cover - defensive
                pass
            handle.close()
            self._local.handle = None


def result_to_payload(result: RoutingResult) -> dict:
    """Flatten a solved :class:`RoutingResult` to a JSON-serialisable dict."""
    if result.routed_circuit is None:
        raise ValueError("only results with a routed circuit can be serialised")
    return {
        "version": CACHE_FORMAT_VERSION,
        "status": result.status.value,
        "router_name": result.router_name,
        "circuit_name": result.circuit_name,
        "initial_mapping": {str(k): v for k, v in result.initial_mapping.items()},
        "final_mapping": {str(k): v for k, v in result.final_mapping.items()},
        "routed_qasm": circuit_to_qasm(result.routed_circuit),
        "routed_num_qubits": result.routed_circuit.num_qubits,
        "swap_count": result.swap_count,
        "solve_time": result.solve_time,
        "sat_calls": result.sat_calls,
        "optimal": result.optimal,
        "num_slices": result.num_slices,
        "objective_value": result.objective_value,
        "notes": result.notes,
        "stage_timings": dict(result.stage_timings),
        "clauses_streamed": result.clauses_streamed,
        "learnt_clauses_retained": result.learnt_clauses_retained,
        "solver_stats": {str(k): (str(v) if k == "backend" else int(v))
                         for k, v in result.solver_stats.items()},
    }


def payload_to_result(payload: dict) -> RoutingResult:
    """Rebuild a :class:`RoutingResult` from :func:`result_to_payload` output.

    Raises on malformed payloads; callers treat any exception as a miss.
    """
    if payload.get("version") != CACHE_FORMAT_VERSION:
        raise ValueError(f"cache format version mismatch: {payload.get('version')}")
    routed = parse_qasm(payload["routed_qasm"], name=payload["circuit_name"])
    return RoutingResult(
        status=RoutingStatus(payload["status"]),
        router_name=payload["router_name"],
        circuit_name=payload["circuit_name"],
        initial_mapping={int(k): int(v) for k, v in payload["initial_mapping"].items()},
        final_mapping={int(k): int(v) for k, v in payload["final_mapping"].items()},
        routed_circuit=routed,
        swap_count=int(payload["swap_count"]),
        solve_time=float(payload["solve_time"]),
        sat_calls=int(payload.get("sat_calls", 0)),
        optimal=bool(payload["optimal"]),
        num_slices=int(payload.get("num_slices", 1)),
        objective_value=payload.get("objective_value"),
        notes=payload.get("notes", ""),
        stage_timings={str(stage): float(seconds) for stage, seconds
                       in payload.get("stage_timings", {}).items()},
        clauses_streamed=int(payload.get("clauses_streamed", 0)),
        learnt_clauses_retained=int(payload.get("learnt_clauses_retained", 0)),
        solver_stats={str(counter): (str(value) if counter == "backend"
                                     else int(value))
                      for counter, value
                      in payload.get("solver_stats", {}).items()},
    )


def verify_cached_result(job: RoutingJob, result: RoutingResult) -> bool:
    """Re-check a result against its job with the independent verifier.

    Returns ``True`` only if the routed circuit is a valid routing of the
    job's circuit on the job's architecture *and* the recorded swap count
    matches what the verifier counts.
    """
    if not result.solved or result.routed_circuit is None:
        return False
    try:
        counted = verify_routing(job.circuit(), result.routed_circuit,
                                 result.initial_mapping, job.architecture())
    except Exception:
        return False
    return counted == result.swap_count


class ResultCache:
    """In-memory + on-disk content-addressed store of verified results.

    Parameters
    ----------
    directory:
        Where on-disk entries live; ``None`` keeps the cache memory-only.
    verify_on_load:
        Re-run the independent verifier on every entry read back from memory
        or disk (default on; turning it off is only sensible in tests).
    max_bytes:
        Upper bound on the total serialised size of the store.  When a
        ``put`` pushes the store over the limit, least-recently-used entries
        are evicted (memory and disk) until it fits again; the most recently
        stored entry always survives, even if it alone exceeds the budget.
        ``None`` (the default) keeps the store unbounded.  Recency is the
        last hit or store; for disk entries written by other processes it
        falls back to the file's mtime, which ``get`` refreshes on a hit, so
        the LRU order also holds across server restarts.
    owner:
        Optional writer identity (the fleet uses ``"shard-<k>"``) stamped
        into every stored payload as ``stored_by`` -- provenance for a disk
        directory shared by many processes.  Readers ignore the stamp.

    The disk layer is safe to share between processes: entries are written
    to a unique temp file and atomically renamed into place, and writers
    (including the LRU eviction scan) serialise through an exclusive
    ``flock`` on the directory's ``.lock`` file.
    """

    def __init__(self, directory: str | Path | None = None,
                 verify_on_load: bool = True,
                 max_bytes: int | None = None,
                 owner: str | None = None) -> None:
        if max_bytes is not None and max_bytes <= 0:
            raise ValueError("max_bytes must be positive (or None for unbounded)")
        self.directory = Path(directory) if directory is not None else None
        if self.directory is not None:
            self.directory.mkdir(parents=True, exist_ok=True)
        self.verify_on_load = verify_on_load
        self.max_bytes = max_bytes
        self.owner = owner
        self._lock = _DirectoryLock(self.directory)
        self._memory: dict[str, dict] = {}
        self._recency: dict[str, float] = {}  # key -> last hit/store timestamp
        self._sizes: dict[str, int] = {}  # serialised bytes per memory entry
        # Running byte total so the common paths (stores under budget,
        # stats/metrics scrapes) are O(1); seeded from disk once here and
        # resynced by a full scan whenever the budget is actually exceeded,
        # which also picks up entries other processes wrote meanwhile.
        self._total_bytes = 0
        if self.directory is not None:
            for path in self.directory.glob("*.json"):
                try:
                    self._total_bytes += path.stat().st_size
                except OSError:  # pragma: no cover - racing deletion
                    pass
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.rejected = 0  # entries that failed deserialisation or verification
        self.evictions = 0  # entries dropped to stay under max_bytes

    # -------------------------------------------------------------- helpers

    def _path_for(self, key: str) -> Path | None:
        if self.directory is None:
            return None
        return self.directory / f"{key}.json"

    def _load_payload(self, key: str) -> dict | None:
        payload = self._memory.get(key)
        if payload is not None:
            return payload
        path = self._path_for(key)
        if path is None or not path.exists():
            return None
        try:
            payload = json.loads(path.read_text())
        except (OSError, ValueError):
            return None
        return payload

    def _evict(self, key: str) -> None:
        size = self._sizes.pop(key, None)
        self._memory.pop(key, None)
        self._recency.pop(key, None)
        path = self._path_for(key)
        if path is not None and path.exists():
            if size is None:
                try:
                    size = path.stat().st_size
                except OSError:  # pragma: no cover - racing deletion
                    size = None
            try:
                path.unlink()
            except OSError:  # pragma: no cover - best-effort cleanup
                pass
        self._total_bytes = max(0, self._total_bytes - (size or 0))

    def _touch(self, key: str) -> None:
        """Mark ``key`` as most recently used (memory clock + file mtime)."""
        self._recency[key] = time.time()
        path = self._path_for(key)
        if path is not None and path.exists():
            try:
                os.utime(path)
            except OSError:  # pragma: no cover - best-effort bookkeeping
                pass

    def _entry_inventory(self) -> dict[str, tuple[float, int]]:
        """Every known entry as ``key -> (recency, serialised bytes)``.

        Iterates over snapshots of the internal dicts: the server's metrics
        endpoint reads this from the event-loop thread while a worker thread
        may be storing results.
        """
        inventory: dict[str, tuple[float, int]] = {}
        if self.directory is not None:
            for path in list(self.directory.glob("*.json")):
                try:
                    stat = path.stat()
                except OSError:  # pragma: no cover - racing deletion
                    continue
                key = path.stem
                inventory[key] = (self._recency.get(key, stat.st_mtime),
                                  stat.st_size)
        for key, payload in list(self._memory.items()):
            if key not in inventory:
                if key not in self._sizes:
                    self._sizes[key] = len(json.dumps(payload, sort_keys=True))
                inventory[key] = (self._recency.get(key, 0.0), self._sizes[key])
        return inventory

    def total_bytes(self) -> int:
        """Total serialised size of the store, from the running counter."""
        return self._total_bytes

    def _enforce_budget(self) -> None:
        """Evict least-recently-used entries until the store fits max_bytes.

        The most recently used entry is never evicted, so a single oversized
        result still lands in the cache instead of thrashing forever.  The
        O(1) running total gates the check; the full directory scan (which
        also resyncs the counter against other writers) only happens when
        the budget is actually exceeded.
        """
        if self.max_bytes is None or self._total_bytes <= self.max_bytes:
            return
        inventory = self._entry_inventory()
        self._total_bytes = sum(size for _, size in inventory.values())
        if self._total_bytes <= self.max_bytes:
            return
        by_age = sorted(inventory, key=lambda key: inventory[key][0])
        for key in by_age[:-1]:  # keep the newest entry no matter what
            if self._total_bytes <= self.max_bytes:
                break
            self._evict(key)  # maintains the running total
            self.evictions += 1

    # ------------------------------------------------------------------ API

    def get(self, job: RoutingJob) -> RoutingResult | None:
        """Return the verified cached result for ``job``, or ``None``.

        Any failure along the way -- unreadable file, malformed payload,
        verification failure -- evicts the entry and counts as a miss.
        """
        key = job.content_hash()
        payload = self._load_payload(key)
        if payload is None:
            self.misses += 1
            return None
        try:
            result = payload_to_result(payload)
        except Exception:
            self.rejected += 1
            self.misses += 1
            self._evict(key)
            return None
        if self.verify_on_load and not verify_cached_result(job, result):
            self.rejected += 1
            self.misses += 1
            self._evict(key)
            return None
        self._memory.setdefault(key, payload)
        self._touch(key)
        self.hits += 1
        result.notes = (result.notes + "; " if result.notes else "") + "cache-hit"
        return result

    def put(self, job: RoutingJob, result: RoutingResult) -> bool:
        """Store a result after verifying it; returns whether it was stored.

        Unsolved results and results that fail the independent verifier are
        refused (counted in ``rejected``) -- the cache only ever serves
        answers that have been checked against the job they claim to solve.
        """
        if not verify_cached_result(job, result):
            self.rejected += 1
            return False
        key = job.content_hash()
        payload = result_to_payload(result)
        if self.owner is not None:
            payload["stored_by"] = self.owner
        self._memory[key] = payload
        serialised = json.dumps(payload, sort_keys=True, indent=1)
        old_size = self._sizes.get(key)
        if old_size is None and self.directory is not None:
            # overwriting an entry this instance never measured (written by
            # an earlier process): account for the bytes it replaces
            path = self._path_for(key)
            try:
                old_size = path.stat().st_size if path.exists() else None
            except OSError:  # pragma: no cover - racing deletion
                old_size = None
        self._sizes[key] = len(serialised)
        self._total_bytes += len(serialised) - (old_size or 0)
        path = self._path_for(key)
        with self._lock:
            if path is not None:
                # Unique temp name per writer: two processes storing the same
                # key must never truncate each other's half-written file, and
                # os.replace makes the final entry appear atomically.
                tmp = path.parent / (f".{key}.{os.getpid()}."
                                     f"{threading.get_ident()}.tmp")
                try:
                    tmp.write_text(serialised)
                    os.replace(tmp, path)
                except OSError:
                    # a full disk or vanished cache dir must not fail the
                    # batch; the entry still lives in the memory layer
                    try:
                        tmp.unlink()
                    except OSError:
                        pass
            self.stores += 1
            self._touch(key)
            # Inside the directory lock: two shards over budget at once must
            # not scan-and-evict concurrently, or both could delete the other
            # writer's freshest entries mid-rename.
            self._enforce_budget()
        return True

    def __contains__(self, job: RoutingJob) -> bool:
        return self._load_payload(job.content_hash()) is not None

    def __len__(self) -> int:
        keys = set(self._memory)
        if self.directory is not None:
            keys.update(p.stem for p in self.directory.glob("*.json"))
        return len(keys)

    def clear_memory(self) -> None:
        """Drop the in-memory layer (disk entries survive); used in tests."""
        self._memory.clear()

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> dict[str, float]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "rejected": self.rejected,
            "evictions": self.evictions,
            "hit_rate": self.hit_rate,
            "entries": len(self),
            "total_bytes": self._total_bytes,
            "max_bytes": self.max_bytes if self.max_bytes is not None else 0,
        }
