"""Batch submission queue: cost-based priority with deterministic order.

When a batch of heterogeneous jobs is fanned out over a fixed number of
workers, scheduling the expensive jobs first minimises the makespan (the
classic longest-processing-time rule); the queue therefore orders jobs by
the cheap size estimate from :meth:`RoutingJob.estimated_cost`, costliest
first, with submission order as the tie-break so two runs of the same batch
always dispatch identically.

The queue is a scheduling buffer, not a thread-safe broker: the service
drains it fully before handing the ordered list to the worker pool, and
results are re-assembled in *submission* order so callers see deterministic
output regardless of worker count or completion order.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable, Iterable

from repro.service.jobs import RoutingJob


@dataclass(order=True)
class _Entry:
    priority: float
    sequence: int
    job: RoutingJob = field(compare=False)


class JobQueue:
    """Priority queue over routing jobs (costliest first, stable)."""

    def __init__(self) -> None:
        self._heap: list[_Entry] = []
        self._sequence = 0

    def push(self, job: RoutingJob) -> int:
        """Enqueue a job; returns its submission index within this queue."""
        sequence = self._sequence
        # negative cost => largest estimated cost pops first
        heapq.heappush(self._heap, _Entry(-job.estimated_cost(), sequence, job))
        self._sequence += 1
        return sequence

    def extend(self, jobs: Iterable[RoutingJob]) -> list[int]:
        return [self.push(job) for job in jobs]

    def pop(self) -> tuple[int, RoutingJob]:
        """Dequeue the highest-priority job as ``(submission_index, job)``."""
        entry = heapq.heappop(self._heap)
        return entry.sequence, entry.job

    def drain(self) -> list[tuple[int, RoutingJob]]:
        """Remove and return all jobs in dispatch (priority) order."""
        ordered = []
        while self._heap:
            ordered.append(self.pop())
        return ordered

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)


@dataclass
class BatchProgress:
    """Progress snapshot passed to batch callbacks after every completion."""

    completed: int
    total: int
    job: RoutingJob
    solved: bool

    @property
    def fraction(self) -> float:
        return self.completed / self.total if self.total else 1.0

    def format(self) -> str:
        mark = "ok" if self.solved else "!!"
        return (f"[{self.completed:>3}/{self.total}] {mark} "
                f"{self.job.name} ({self.job.router})")


ProgressCallback = Callable[[BatchProgress], None]


def dispatch_order(jobs: list[RoutingJob]) -> list[int]:
    """Indices of ``jobs`` in the order the queue would dispatch them."""
    queue = JobQueue()
    queue.extend(jobs)
    return [index for index, _ in queue.drain()]
