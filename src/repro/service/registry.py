"""Router registry: build router instances from plain names and options.

Worker processes receive jobs as plain data (see :mod:`repro.service.jobs`),
so routers must be constructible from a *name* rather than a closure -- a
lambda cannot cross a process boundary.  This module is the single mapping
from registry names to router classes; the CLI, the portfolio, and the worker
pool all share it so ``"satmap"`` means the same thing everywhere.
"""

from __future__ import annotations

from typing import Callable

from repro.baselines import (
    AStarLayerRouter,
    BmtLikeRouter,
    NaiveShortestPathRouter,
    SabreRouter,
    TketLikeRouter,
)
from repro.core import HybridSatMapRouter, SatMapRouter


def _satmap(time_budget: float, **options) -> SatMapRouter:
    options.setdefault("slice_size", 25)
    return SatMapRouter(time_budget=time_budget, **options)


def _nl_satmap(time_budget: float, **options) -> SatMapRouter:
    options.setdefault("slice_size", None)
    return SatMapRouter(time_budget=time_budget, **options)


_REGISTRY: dict[str, Callable] = {
    "satmap": _satmap,
    "nl-satmap": _nl_satmap,
    "hybrid": lambda time_budget, **options: HybridSatMapRouter(
        time_budget=time_budget, **options),
    "sabre": lambda time_budget, **options: SabreRouter(
        time_budget=time_budget, **options),
    "tket": lambda time_budget, **options: TketLikeRouter(
        time_budget=time_budget, **options),
    "astar": lambda time_budget, **options: AStarLayerRouter(
        time_budget=time_budget, **options),
    "bmt": lambda time_budget, **options: BmtLikeRouter(
        time_budget=time_budget, **options),
    "naive": lambda time_budget, **options: NaiveShortestPathRouter(
        time_budget=time_budget, **options),
}

#: Default racing line-up: the anytime MaxSAT router plus two fast heuristics
#: with very different search styles, so at least one entrant finishes early
#: on every instance while SATMAP chases optimality.
DEFAULT_PORTFOLIO: tuple[str, ...] = ("satmap", "sabre", "tket")

#: The router used to guarantee a feasible best-so-far answer when the
#: primary router times out: single shortest-path SWAP chains, never fails on
#: a connected architecture and runs in milliseconds.
FALLBACK_ROUTER = "naive"


def router_names() -> list[str]:
    """All registry names, sorted for stable CLI choices."""
    return sorted(_REGISTRY)


def build_router(name: str, time_budget: float, options: dict | None = None):
    """Instantiate the router registered under ``name``.

    ``options`` are forwarded to the router constructor; unknown names raise
    ``KeyError`` early so misconfigured jobs fail at submission, not in a
    worker.
    """
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown router {name!r}; known routers: {', '.join(router_names())}"
        ) from None
    return factory(time_budget, **dict(options or {}))


def display_name(name: str, options: dict | None = None) -> str:
    """The router's self-reported display name (``'satmap'`` -> ``'SATMAP'``).

    Experiment records are keyed by the name routers stamp on their results;
    synthetic results (e.g. a hard-timeout record) must use the same name or
    they fragment the comparison tables.
    """
    try:
        return build_router(name, 1.0, options).name
    except Exception:
        return name
