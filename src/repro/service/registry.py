"""Deprecated shim over :mod:`repro.api`'s single router registry.

This module used to hold its own name->factory table, parallel to the CLI's
``available_routers``.  Both now delegate to :mod:`repro.api.registry`, so
``"satmap"`` (or any spec string such as ``"satmap:slice_size=10"``) means
the same thing everywhere: library, CLI, worker pool, portfolio, harness.

Only the service-policy constants live here: which routers race by default
and which one rescues timed-out jobs.  New code should import
:func:`repro.api.get_router` / :func:`repro.api.list_routers` directly.
"""

from __future__ import annotations

from repro.api.registry import display_name as _api_display_name
from repro.api.registry import get_router, list_routers
from repro.api.spec import RouterSpec

#: Default racing line-up: the anytime MaxSAT router plus two fast heuristics
#: with very different search styles, so at least one entrant finishes early
#: on every instance while SATMAP chases optimality.  Entries are router
#: *specs*, so configured entrants like ``"satmap:slice_size=10"`` are valid.
DEFAULT_PORTFOLIO: tuple[str, ...] = ("satmap", "sabre", "tket")

#: The router used to guarantee a feasible best-so-far answer when the
#: primary router times out: single shortest-path SWAP chains, never fails on
#: a connected architecture and runs in milliseconds.
FALLBACK_ROUTER = "naive"


def router_names() -> list[str]:
    """All registry names, sorted for stable CLI choices."""
    return list_routers()


def build_router(name: str, time_budget: float, options: dict | None = None):
    """Instantiate the router a name/spec string describes.

    ``options`` merge over the spec's own options; unknown names raise
    ``KeyError`` (and unknown options ``ValueError``) early so misconfigured
    jobs fail at submission, not in a worker.  Deprecated: call
    :func:`repro.api.get_router` with a :class:`~repro.api.RouterSpec`.
    """
    spec = RouterSpec.parse(name)
    if options:
        spec = spec.with_options(**options)
    return get_router(spec, time_budget=time_budget)


def display_name(name: str, options: dict | None = None) -> str:
    """Deprecated alias of :func:`repro.api.display_name`."""
    return _api_display_name(name, options)
