"""Portfolio racing: run several routers on one job, keep the best answer.

The MaxSAT search in :mod:`repro.maxsat.solver` is anytime and the heuristic
baselines finish in milliseconds, which makes a classic solver portfolio
natural: race SATMAP against two or more heuristics, return the cheapest
*verified* solution, and cancel whatever has not started once the race is
decided.  On multi-core machines the entrants run concurrently in the worker
pool; on a single core they run in sequence with early exit as soon as an
entrant proves optimality (the serial analogue of cancelling the losers).

For a whole batch, :func:`race_portfolio_batch` submits every job's entrants
to the pool up front -- so races overlap and the pool stays saturated -- and
judges each race as its entrants finish.

Every candidate is re-verified with the independent verifier before it may
win -- a portfolio must never let a fast-but-wrong entrant beat a correct
one.
"""

from __future__ import annotations

from concurrent.futures import FIRST_COMPLETED, wait

from repro.api.spec import RouterSpec
from repro.core.result import RoutingResult, RoutingStatus
from repro.service.cache import verify_cached_result
from repro.service.jobs import RoutingJob
from repro.service.pool import WorkerPool, execute_job, outcome_to_result
from repro.service.registry import DEFAULT_PORTFOLIO


def entrant_job(job: RoutingJob, router: str | RouterSpec) -> RoutingJob:
    """The same work item with a different router behind it.

    ``router`` is a spec (string form allowed), so portfolios can race
    *configured* entrants like ``"satmap:slice_size=10"``.  An entrant naming
    the job's own router inherits the job's options as defaults.
    """
    spec = RouterSpec.parse(router)
    if spec.name == job.router:
        spec = spec.with_defaults(**job.options)
    return job.with_spec(spec)


def pick_winner(job: RoutingJob, candidates: list[RoutingResult]) -> RoutingResult | None:
    """Cheapest verified candidate; proven-optimal results break cost ties."""
    best: RoutingResult | None = None
    for candidate in candidates:
        if candidate is None or not verify_cached_result(job, candidate):
            continue
        if best is None or (candidate.added_cnots, not candidate.optimal) < (
                best.added_cnots, not best.optimal):
            best = candidate
    return best


def _judged(job: RoutingJob, candidates: list[RoutingResult],
            entrants: tuple[str, ...]) -> RoutingResult:
    """Final verdict of one race: the annotated winner or a TIMEOUT result."""
    winner = pick_winner(job, candidates)
    if winner is None:
        return RoutingResult(status=RoutingStatus.TIMEOUT, router_name="portfolio",
                             circuit_name=job.name,
                             notes=f"no entrant of {list(entrants)} produced a "
                                   f"verified solution")
    finishers = sum(1 for c in candidates if c is not None and c.solved)
    winner.notes = ((winner.notes + "; ") if winner.notes else "") + (
        f"portfolio winner={winner.router_name} "
        f"({finishers}/{len(entrants)} entrants finished)")
    if winner.stage_timings:
        # Surface the winner's solve-path breakdown and session-reuse
        # counters so races make the incremental-solver win observable.
        stages = " ".join(f"{stage}={seconds:.3f}s"
                          for stage, seconds in sorted(winner.stage_timings.items()))
        winner.notes += f"; stages: {stages}"
        if winner.clauses_streamed:
            winner.notes += (f" streamed={winner.clauses_streamed}"
                             f" learnt_kept={winner.learnt_clauses_retained}")
    return winner


def _collect_race(job: RoutingJob, pending: dict, time_budget: float) -> list[RoutingResult]:
    """Drain one race's futures, cancelling losers once an optimum arrives."""
    candidates: list[RoutingResult] = []
    decided = False
    while pending and not decided:
        done, _ = wait(pending, timeout=time_budget + 60.0,
                       return_when=FIRST_COMPLETED)
        if not done:  # hard stall; stop waiting, judge what we have
            break
        for future in done:
            sub_job = pending.pop(future)
            try:
                candidates.append(outcome_to_result(sub_job, future.result()))
            except Exception:
                continue  # a crashed entrant simply loses the race
            winner_so_far = pick_winner(job, candidates)
            if winner_so_far is not None and winner_so_far.optimal:
                decided = True  # a proven optimum cannot be beaten, only tied
    for future in pending:  # cancel the losers
        future.cancel()
    return candidates


def race_portfolio(job: RoutingJob, time_budget: float,
                   entrants: tuple[str, ...] = DEFAULT_PORTFOLIO,
                   pool: WorkerPool | None = None) -> RoutingResult:
    """Race ``entrants`` on ``job`` and return the best verified result.

    With a pool, all entrants are submitted at once; as results arrive the
    race keeps the cheapest verified one and, once an entrant has proven
    optimality, cancels everything still pending.  Without a pool the
    entrants run serially with the same early-exit rule.
    """
    if not entrants:
        raise ValueError("a portfolio needs at least one entrant")
    sub_jobs = [entrant_job(job, router) for router in entrants]

    if pool is None or pool.mode == "serial":
        candidates: list[RoutingResult] = []
        for sub_job in sub_jobs:
            try:
                outcome = execute_job(sub_job, time_budget, fallback=False)
            except Exception:
                continue  # as in the pool path: a crashed entrant just loses
            candidates.append(outcome_to_result(sub_job, outcome))
            winner_so_far = pick_winner(job, candidates)
            if winner_so_far is not None and winner_so_far.optimal:
                break  # remaining entrants cannot beat a proven optimum
    else:
        pending = {pool.submit(sub_job, time_budget, fallback=False): sub_job
                   for sub_job in sub_jobs}
        candidates = _collect_race(job, pending, time_budget)
    return _judged(job, candidates, entrants)


def race_portfolio_batch(jobs: list[RoutingJob], time_budget: float,
                         entrants: tuple[str, ...] = DEFAULT_PORTFOLIO,
                         pool: WorkerPool | None = None) -> list[RoutingResult]:
    """Race a portfolio for every job, overlapping races across the pool.

    All entrants of all jobs are submitted before any race is judged, so a
    wide pool works on several races at once instead of finishing one job's
    race before starting the next.  Results come back in job order.
    """
    if not entrants:
        raise ValueError("a portfolio needs at least one entrant")
    if pool is None or pool.mode == "serial":
        return [race_portfolio(job, time_budget, entrants=entrants, pool=None)
                for job in jobs]
    races = []
    for job in jobs:
        pending = {}
        for router in entrants:
            sub_job = entrant_job(job, router)
            pending[pool.submit(sub_job, time_budget, fallback=False)] = sub_job
        races.append((job, pending))
    return [_judged(job, _collect_race(job, pending, time_budget), entrants)
            for job, pending in races]
