"""Routing job specifications and content-addressed job identity.

A :class:`RoutingJob` is the unit of work the batch service operates on.  It
is deliberately *self-contained and serialisable*: the circuit is stored as
canonical OpenQASM 2.0 text and the architecture as its edge list, so a job
can cross a process boundary (``pickle`` for the worker pool) or be hashed
into a stable cache key without depending on object identity.

The content hash covers what the job itself pins down -- circuit text,
architecture shape, router name, and router options -- and nothing that
does not matter (display names, submission order).  Execution-time
parameters that also shape the outcome, such as the per-job time budget of
the anytime routers, are folded into the cache key by the service
(``BatchRoutingService._key_job``), so cached results are only shared when
the full execution config matches.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.qasm import circuit_to_qasm, parse_qasm
from repro.hardware.architecture import Architecture

#: Bump when the payload layout changes so stale cache entries never alias.
JOB_HASH_VERSION = 1


@dataclass
class RoutingJob:
    """A self-contained, hashable description of one routing task.

    Parameters
    ----------
    qasm:
        The logical circuit as OpenQASM 2.0 text (canonical form: what
        :func:`repro.circuits.qasm.circuit_to_qasm` emits).
    arch_num_qubits / arch_edges / arch_name:
        The connectivity graph, flattened to plain data.
    router:
        Registry name of the routing algorithm (see
        :mod:`repro.service.registry`), e.g. ``"satmap"`` or ``"sabre"``.
    options:
        Extra keyword arguments for the router constructor.  Values must be
        JSON-serialisable scalars so the content hash is well defined.
    name:
        Display name for telemetry and result records; not hashed.
    """

    qasm: str
    arch_num_qubits: int
    arch_edges: tuple[tuple[int, int], ...]
    arch_name: str = "architecture"
    router: str = "satmap"
    options: dict = field(default_factory=dict)
    name: str = "job"
    _hash: str | None = field(default=None, repr=False, compare=False)
    _cost: float | None = field(default=None, repr=False, compare=False)

    # ------------------------------------------------------------- builders

    @classmethod
    def from_circuit(
        cls,
        circuit: QuantumCircuit,
        architecture: Architecture,
        router: str = "satmap",
        options: dict | None = None,
        name: str | None = None,
    ) -> "RoutingJob":
        """Build a job from in-memory circuit and architecture objects."""
        return cls(
            qasm=circuit_to_qasm(circuit),
            arch_num_qubits=architecture.num_qubits,
            arch_edges=tuple(architecture.edges),
            arch_name=architecture.name,
            router=router,
            options=dict(options or {}),
            name=name or circuit.name,
        )

    # ---------------------------------------------------------- reconstruct

    def circuit(self) -> QuantumCircuit:
        """Materialise the logical circuit (fresh object each call)."""
        return parse_qasm(self.qasm, name=self.name)

    def architecture(self) -> Architecture:
        """Materialise the connectivity graph (fresh object each call)."""
        return Architecture(self.arch_num_qubits, [tuple(e) for e in self.arch_edges],
                            name=self.arch_name)

    def with_router(self, router: str, options: dict | None = None) -> "RoutingJob":
        """The same work item keyed under a different router/options pair.

        Used by the portfolio (to spawn entrants) and by the service (to
        namespace cache entries by execution config, so e.g. a portfolio
        winner can never be served as the answer to a plain ``satmap`` job).
        """
        return RoutingJob(qasm=self.qasm, arch_num_qubits=self.arch_num_qubits,
                          arch_edges=self.arch_edges, arch_name=self.arch_name,
                          router=router, options=dict(options or {}),
                          name=self.name)

    # -------------------------------------------------------------- identity

    def content_payload(self) -> str:
        """The canonical JSON string the content hash is computed over."""
        payload = {
            "version": JOB_HASH_VERSION,
            "qasm": self.qasm,
            "arch": {
                "num_qubits": self.arch_num_qubits,
                "edges": sorted((min(a, b), max(a, b)) for a, b in self.arch_edges),
            },
            "router": self.router,
            "options": self.options,
        }
        return json.dumps(payload, sort_keys=True, separators=(",", ":"))

    def content_hash(self) -> str:
        """Stable SHA-256 over circuit, architecture, router, and options."""
        if self._hash is None:
            digest = hashlib.sha256(self.content_payload().encode("utf-8"))
            self._hash = digest.hexdigest()
        return self._hash

    @property
    def key(self) -> str:
        """Short form of the content hash, used in telemetry and filenames."""
        return self.content_hash()[:16]

    # -------------------------------------------------------------- planning

    def estimated_cost(self) -> float:
        """Cheap cost estimate used for queue priority (bigger = costlier).

        Counts two-qubit statements in the QASM text without a full parse:
        routing effort grows with the interaction count, and constraint-based
        routers also scale with the qubit count.
        """
        if self._cost is None:
            two_qubit = sum(1 for line in self.qasm.splitlines()
                            if line.count("[") >= 2 and not line.startswith(("qreg", "creg")))
            self._cost = float(two_qubit * max(self.arch_num_qubits, 1))
        return self._cost

    def describe(self) -> str:
        return (f"{self.name} [{self.router} on {self.arch_name}, "
                f"key={self.key}]")
