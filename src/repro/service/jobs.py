"""Routing job specifications and content-addressed job identity.

A :class:`RoutingJob` is the unit of work the batch service operates on.  It
is deliberately *self-contained and serialisable*: the circuit is stored as
canonical OpenQASM 2.0 text and the architecture as its edge list, so a job
can cross a process boundary (``pickle`` for the worker pool) or be hashed
into a stable cache key without depending on object identity.

The content hash covers what the job itself pins down -- circuit text,
architecture shape, router name, and router options -- and nothing that
does not matter (display names, submission order).  Execution-time
parameters that also shape the outcome, such as the per-job time budget of
the anytime routers, are folded into the cache key by the service
(``BatchRoutingService._key_job``), so cached results are only shared when
the full execution config matches.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field

from repro.api.spec import RouterSpec
from repro.circuits.circuit import QuantumCircuit
from repro.circuits.qasm import circuit_to_qasm, parse_qasm
from repro.hardware.architecture import Architecture

#: Bump when the payload layout changes so stale cache entries never alias.
#: v2: the router is hashed as its canonical ``RouterSpec.to_dict()`` form.
JOB_HASH_VERSION = 2


@dataclass
class RoutingJob:
    """A self-contained, hashable description of one routing task.

    Parameters
    ----------
    qasm:
        The logical circuit as OpenQASM 2.0 text (canonical form: what
        :func:`repro.circuits.qasm.circuit_to_qasm` emits).
    arch_num_qubits / arch_edges / arch_name:
        The connectivity graph, flattened to plain data.
    router:
        Registry name of the routing algorithm (see :mod:`repro.api`),
        e.g. ``"satmap"`` or ``"sabre"``.  Together with ``options`` this is
        exactly a :class:`~repro.api.RouterSpec`; use :meth:`spec` /
        :meth:`from_spec` to convert.
    options:
        Extra keyword arguments for the router constructor.  Values must be
        JSON-serialisable scalars so the content hash is well defined.
    name:
        Display name for telemetry and result records; not hashed.
    """

    qasm: str
    arch_num_qubits: int
    arch_edges: tuple[tuple[int, int], ...]
    arch_name: str = "architecture"
    router: str = "satmap"
    options: dict = field(default_factory=dict)
    name: str = "job"
    #: Span-propagation context (``trace_id`` / ``span_id`` / ``enqueued_at``)
    #: set by the dispatching service so pool workers can graft their spans
    #: under the submitter's trace.  Never hashed: tracing must not change a
    #: job's cache identity.
    trace_context: dict | None = field(default=None, repr=False, compare=False)
    _hash: str | None = field(default=None, repr=False, compare=False)
    _cost: float | None = field(default=None, repr=False, compare=False)

    # ------------------------------------------------------------- builders

    @classmethod
    def from_circuit(
        cls,
        circuit: QuantumCircuit,
        architecture: Architecture,
        router: str | RouterSpec = "satmap",
        options: dict | None = None,
        name: str | None = None,
    ) -> "RoutingJob":
        """Build a job from in-memory circuit and architecture objects.

        ``router`` accepts a registry name, a spec string such as
        ``"satmap:slice_size=10"``, or a :class:`~repro.api.RouterSpec`;
        ``options`` merge over the spec's own options.  The merged spec is
        validated against the registry schema, which both fails
        misconfigured jobs at submission and *canonicalises* option types
        (``"25"`` -> ``25``, ``1`` -> ``1.0`` for float options) so the
        content hash does not depend on which construction path or spelling
        produced the job.
        """
        spec = RouterSpec.parse(router)
        if options:
            spec = spec.with_options(**options)
        spec = spec.validated()
        return cls(
            qasm=circuit_to_qasm(circuit),
            arch_num_qubits=architecture.num_qubits,
            arch_edges=tuple(architecture.edges),
            arch_name=architecture.name,
            router=spec.name,
            options=dict(spec.options),
            name=name or circuit.name,
        )

    @classmethod
    def from_spec(
        cls,
        circuit: QuantumCircuit,
        architecture: Architecture,
        spec: str | dict | RouterSpec,
        name: str | None = None,
    ) -> "RoutingJob":
        """Build a job from a declarative router spec (validated up front)."""
        return cls.from_circuit(circuit, architecture,
                                router=RouterSpec.parse(spec), name=name)

    # ---------------------------------------------------------- reconstruct

    def circuit(self) -> QuantumCircuit:
        """Materialise the logical circuit (fresh object each call)."""
        return parse_qasm(self.qasm, name=self.name)

    def architecture(self) -> Architecture:
        """Materialise the connectivity graph (fresh object each call)."""
        return Architecture(self.arch_num_qubits, [tuple(e) for e in self.arch_edges],
                            name=self.arch_name)

    def spec(self) -> RouterSpec:
        """This job's router selection as a declarative spec."""
        return RouterSpec(self.router, dict(self.options))

    def with_router(self, router: str, options: dict | None = None) -> "RoutingJob":
        """The same work item keyed under a different router/options pair.

        Used by the portfolio (to spawn entrants) and by the service (to
        namespace cache entries by execution config, so e.g. a portfolio
        winner can never be served as the answer to a plain ``satmap`` job).
        The ``router`` string is kept verbatim -- the service uses synthetic
        tags like ``"portfolio:satmap+sabre"`` as cache namespaces -- so spec
        parsing happens only in :meth:`with_spec` and the builders.
        """
        return RoutingJob(qasm=self.qasm, arch_num_qubits=self.arch_num_qubits,
                          arch_edges=self.arch_edges, arch_name=self.arch_name,
                          router=router, options=dict(options or {}),
                          name=self.name, trace_context=self.trace_context)

    def with_spec(self, spec: str | dict | RouterSpec) -> "RoutingJob":
        """The same work item behind a different router spec."""
        parsed = RouterSpec.parse(spec)
        return self.with_router(parsed.name, options=dict(parsed.options))

    # -------------------------------------------------------------- identity

    def content_payload(self) -> str:
        """The canonical JSON string the content hash is computed over.

        The router/options pair enters as ``RouterSpec.to_dict()`` -- the
        same canonical form the CLI prints and telemetry records -- so a
        cache key can be reproduced from any surface that shows the spec.
        """
        payload = {
            "version": JOB_HASH_VERSION,
            "qasm": self.qasm,
            "arch": {
                "num_qubits": self.arch_num_qubits,
                "edges": sorted((min(a, b), max(a, b)) for a, b in self.arch_edges),
            },
            "spec": self.spec().to_dict(),
        }
        return json.dumps(payload, sort_keys=True, separators=(",", ":"))

    def content_hash(self) -> str:
        """Stable SHA-256 over circuit, architecture, router, and options."""
        if self._hash is None:
            digest = hashlib.sha256(self.content_payload().encode("utf-8"))
            self._hash = digest.hexdigest()
        return self._hash

    @property
    def key(self) -> str:
        """Short form of the content hash, used in telemetry and filenames."""
        return self.content_hash()[:16]

    # -------------------------------------------------------------- planning

    def estimated_cost(self) -> float:
        """Cheap cost estimate used for queue priority (bigger = costlier).

        Counts two-qubit statements in the QASM text without a full parse:
        routing effort grows with the interaction count, and constraint-based
        routers also scale with the qubit count.
        """
        if self._cost is None:
            two_qubit = sum(1 for line in self.qasm.splitlines()
                            if line.count("[") >= 2 and not line.startswith(("qreg", "creg")))
            self._cost = float(two_qubit * max(self.arch_num_qubits, 1))
        return self._cost

    def describe(self) -> str:
        return (f"{self.name} [{self.router} on {self.arch_name}, "
                f"key={self.key}]")
