"""The batch routing service facade.

:class:`BatchRoutingService` ties the subsystem together: jobs come in, the
content-addressed cache is consulted first, misses are ordered by estimated
cost and fanned out over the worker pool (optionally as portfolio races),
every produced result is re-checked by the independent verifier before it is
cached, and structured telemetry records each step.  Results always come
back in submission order, so a batch is deterministic regardless of worker
count or completion order.

Typical use::

    from repro import BatchRoutingService, RoutingJob

    service = BatchRoutingService(max_workers=4, time_budget=10.0,
                                  cache_dir=".repro-cache")
    jobs = [RoutingJob.from_circuit(circ, arch, router="satmap")
            for circ in circuits]
    results = service.route_batch(jobs)
    print(service.telemetry.summary())
"""

from __future__ import annotations

import time
from pathlib import Path

from repro.api.spec import RouterSpec
from repro.circuits.circuit import QuantumCircuit
from repro.core.result import RoutingResult
from repro.hardware.architecture import Architecture
from repro.obs import trace as obs_trace
from repro.obs.events import EventLog
from repro.obs.export import JsonlTraceWriter
from repro.service.cache import ResultCache
from repro.service.jobs import RoutingJob
from repro.service.pool import WorkerPool, is_fallback_result
from repro.service.portfolio import race_portfolio_batch
from repro.service.queue import BatchProgress, JobQueue, ProgressCallback
from repro.service.registry import DEFAULT_PORTFOLIO
from repro.service.telemetry import TelemetryLog


class BatchRoutingService:
    """Parallel, cached, verified routing of job batches.

    Parameters
    ----------
    max_workers:
        Worker processes for the pool (default: visible CPU count).
    mode:
        Pool mode: ``"auto"``, ``"process"``, ``"thread"``, or ``"serial"``.
    time_budget:
        Default per-job budget in seconds.
    cache_dir:
        Directory for the on-disk cache layer; ``None`` keeps results
        in memory only.  Pass ``cache=False`` to disable caching entirely.
    cache_max_bytes:
        Size bound for the result cache (LRU eviction past the limit);
        ``None`` leaves it unbounded.  Ignored when an explicit ``cache``
        instance is supplied.
    portfolio:
        ``True`` races :data:`~repro.service.registry.DEFAULT_PORTFOLIO`
        per job, a tuple of registry names races those, ``None``/``False``
        runs each job's own router only.
    fallback:
        Whether jobs whose router produces no solution are rescued with the
        fast fallback router (best-so-far semantics).  Disable for faithful
        per-router comparisons, where a timeout should stay a timeout.
    tracer:
        Span collector for per-job trace trees.  ``None`` (default) creates
        one -- tracing is cheap next to SAT solving -- ``False`` disables
        tracing, and an explicit :class:`~repro.obs.Tracer` shares the
        caller's (the HTTP gateway passes its own so job spans, pool
        subtrees, and admission spans land in one tree).
    trace_dir:
        When set, every finished trace tree the service owns is appended as
        JSONL under this directory (size-rotated files).
    event_log:
        An :class:`~repro.obs.events.EventLog` that receives structured
        operational events (job failures, fallbacks, cache evictions and
        rejections) forwarded from telemetry.  ``None`` disables
        forwarding; the gateway passes its own log so service-level events
        land next to admission and lifecycle events.
    """

    #: Telemetry kinds that become operational events, with their severity.
    _EVENT_SEVERITY = {
        "failed": ("job-failed", "error"),
        "fallback": ("solver-fallback", "warning"),
        "cache-evict": ("cache-evict", "warning"),
        "cache-reject": ("cache-reject", "warning"),
    }

    def __init__(
        self,
        max_workers: int | None = None,
        mode: str = "auto",
        time_budget: float = 30.0,
        cache_dir: str | Path | None = None,
        cache: ResultCache | bool | None = None,
        cache_max_bytes: int | None = None,
        portfolio: bool | tuple[str, ...] | None = None,
        telemetry: TelemetryLog | None = None,
        fallback: bool = True,
        tracer: obs_trace.Tracer | bool | None = None,
        trace_dir: str | Path | None = None,
        event_log: EventLog | None = None,
    ) -> None:
        if time_budget <= 0:
            raise ValueError("time_budget must be positive")
        self.time_budget = time_budget
        if cache is False:
            self.cache: ResultCache | None = None
        elif isinstance(cache, ResultCache):
            self.cache = cache
        else:
            self.cache = ResultCache(directory=cache_dir,
                                     max_bytes=cache_max_bytes)
        if portfolio is True:
            self.portfolio: tuple[str, ...] | None = DEFAULT_PORTFOLIO
        elif portfolio:
            # Entrants are router specs; normalise to canonical string form
            # (and validate them now) so equivalent spellings produce the
            # same cache namespace in _key_job.
            self.portfolio = tuple(
                RouterSpec.parse(entry).validated().to_string()
                for entry in portfolio)
        else:
            self.portfolio = None
        self.telemetry = telemetry if telemetry is not None else TelemetryLog()
        self.fallback = fallback
        if tracer is False:
            self.tracer: obs_trace.Tracer | None = None
        elif tracer is None or tracer is True:
            self.tracer = obs_trace.Tracer()
        else:
            self.tracer = tracer
        self._trace_writer = (JsonlTraceWriter(trace_dir)
                              if trace_dir is not None else None)
        self.event_log: EventLog | None = None
        self.attach_event_log(event_log)
        self._max_workers = max_workers
        self._mode = mode
        self._pool: WorkerPool | None = None

    def attach_event_log(self, event_log: EventLog | None) -> None:
        """Start forwarding notable telemetry kinds into ``event_log``.

        Idempotent-by-intent: the first attached log wins (the gateway
        attaches its own log to a service built without one).
        """
        if event_log is None or self.event_log is not None:
            return
        self.event_log = event_log
        self.telemetry.subscribe(self._forward_event)

    def _forward_event(self, event) -> None:
        """Telemetry subscriber: project notable kinds into the event log."""
        mapped = self._EVENT_SEVERITY.get(event.kind)
        if mapped is None or self.event_log is None:
            return
        name, level = mapped
        fields = {key: value for key, value in event.detail.items()
                  if key not in ("event", "level")}
        self.event_log.emit(name, level=level, job_key=event.job_key,
                            job_name=event.job_name, **fields)

    # ----------------------------------------------------------- lifecycle

    @property
    def pool(self) -> WorkerPool:
        """The worker pool, created lazily on first miss."""
        if self._pool is None:
            self._pool = WorkerPool(max_workers=self._max_workers, mode=self._mode,
                                    fallback=self.fallback)
        return self._pool

    def close(self) -> None:
        if self._pool is not None:
            self._pool.close()
            self._pool = None

    def __enter__(self) -> "BatchRoutingService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ----------------------------------------------------------------- API

    def route_batch(self, jobs: list[RoutingJob],
                    time_budget: float | None = None,
                    progress: ProgressCallback | None = None,
                    ) -> list[RoutingResult]:
        """Route a batch; the i-th result always answers the i-th job."""
        budget = time_budget if time_budget is not None else self.time_budget
        results: list[RoutingResult | None] = [None] * len(jobs)
        key_jobs = [self._key_job(job, budget) for job in jobs]
        completed = 0

        def report(index: int, result: RoutingResult) -> None:
            nonlocal completed
            completed += 1
            if progress is not None:
                progress(BatchProgress(completed=completed, total=len(jobs),
                                       job=jobs[index], solved=result.solved))

        # Phase 1: cache lookups, plus in-batch dedup -- a content hash is
        # computed at most once per batch no matter how often it appears.
        queue = JobQueue()
        queued_indices: list[int] = []
        first_occurrence: dict[str, int] = {}
        duplicates: list[tuple[int, int]] = []  # (index, index of first occurrence)
        for index, job in enumerate(jobs):
            key_job = key_jobs[index]
            self.telemetry.record("queued", job.key, job.name, router=job.router)
            cached = self.cache.get(key_job) if self.cache is not None else None
            if cached is not None:
                self.telemetry.record("cache-hit", job.key, job.name,
                                      swaps=cached.swap_count)
                results[index] = cached
                report(index, cached)
            elif key_job.content_hash() in first_occurrence:
                duplicates.append((index, first_occurrence[key_job.content_hash()]))
            else:
                first_occurrence[key_job.content_hash()] = index
                queue.push(job)
                queued_indices.append(index)

        # Phase 2: dispatch misses, costliest first.  Each dispatched job
        # carries a span context (parent ids + enqueue time) so the worker
        # can synthesise its queue-wait span and graft its subtree back.
        dispatch = queue.drain()
        ordered_jobs = [job for _, job in dispatch]
        original_index = [queued_indices[seq] for seq, _ in dispatch]
        owned_roots: dict[int, obs_trace.Span] = {}
        if self.tracer is not None:
            enqueued_at = time.time()
            for slot, job in enumerate(ordered_jobs):
                context = job.trace_context
                if context is None:
                    # Standalone use: the service owns the job's root span.
                    # Under the gateway the job arrives with the gateway
                    # root's context already attached.
                    root = self.tracer.start_trace(
                        "job", job=job.key, job_name=job.name,
                        router=job.router)
                    owned_roots[slot] = root
                    context = root.context()
                merged = dict(context)
                # An upstream enqueue time (the gateway's submission moment)
                # wins: queue-wait then covers its queue and ours.
                merged.setdefault("enqueued_at", enqueued_at)
                job.trace_context = merged

        def finish(slot: int, job: RoutingJob, result: RoutingResult) -> None:
            index = original_index[slot]
            if self.tracer is not None and result.trace is not None:
                context = job.trace_context or {}
                self.tracer.attach_tree(result.trace,
                                        trace_id=context.get("trace_id"),
                                        parent_span_id=context.get("span_id"))
            root = owned_roots.get(slot)
            if root is not None:
                root.finish(status=result.status.value,
                            swaps=result.swap_count)
                result.trace = root.to_dict()
                if self._trace_writer is not None:
                    self._trace_writer.write(result.trace)
            self._record_outcome(job, key_jobs[index], result)
            results[index] = result
            report(index, result)

        if self.portfolio is not None and ordered_jobs:
            for job in ordered_jobs:
                self.telemetry.record("started", job.key, job.name,
                                      entrants=len(self.portfolio))
            raced = race_portfolio_batch(ordered_jobs, budget,
                                         entrants=self.portfolio, pool=self.pool)
            for slot, (job, result) in enumerate(zip(ordered_jobs, raced)):
                finish(slot, job, result)
        elif ordered_jobs:
            for job in ordered_jobs:
                self.telemetry.record("started", job.key, job.name, router=job.router)
            self.pool.run(ordered_jobs, budget, on_done=finish)

        # Phase 3: duplicates of a computed job are served from the cache
        # (a verified hit) or, when caching is off, share the first result.
        for index, source in duplicates:
            job = jobs[index]
            served = self.cache.get(key_jobs[index]) if self.cache is not None else None
            if served is None:
                served = results[source]
            self.telemetry.record("cache-hit", job.key, job.name, dedup=True,
                                  swaps=served.swap_count if served.solved else -1)
            results[index] = served
            report(index, served)

        assert all(result is not None for result in results)
        return results  # type: ignore[return-value]

    def route_one(self, job: RoutingJob,
                  time_budget: float | None = None) -> RoutingResult:
        """Route a single job through the full cache/pool/verify path."""
        return self.route_batch([job], time_budget=time_budget)[0]

    def route_circuit(self, circuit: QuantumCircuit, architecture: Architecture,
                      router: str | RouterSpec = "satmap",
                      options: dict | None = None,
                      time_budget: float | None = None) -> RoutingResult:
        """Convenience wrapper building the job from in-memory objects.

        ``router`` accepts a registry name, a spec string like
        ``"satmap:slice_size=10"``, or a :class:`~repro.api.RouterSpec`.
        """
        job = RoutingJob.from_circuit(circuit, architecture, router=router,
                                      options=options)
        return self.route_one(job, time_budget=time_budget)

    def route_requests(self, requests: list,
                       time_budget: float | None = None,
                       progress=None) -> list[RoutingResult]:
        """Route a batch of :class:`repro.api.RouteRequest` objects."""
        jobs = [request.to_job() for request in requests]
        return self.route_batch(jobs, time_budget=time_budget,
                                progress=progress)

    def job_key(self, job: RoutingJob, time_budget: float | None = None) -> str:
        """The content hash a job is cached (and deduplicated) under.

        This is the job's own content hash refined with the execution config
        (effective budget, portfolio namespace) exactly as ``route_batch``
        keys the cache, so two submissions with equal ``job_key`` are
        guaranteed to share one solve.  The network gateway uses this for
        cross-client dedup.
        """
        budget = time_budget if time_budget is not None else self.time_budget
        return self._key_job(job, budget).content_hash()

    # ------------------------------------------------------------ internals

    def _key_job(self, job: RoutingJob, budget: float) -> RoutingJob:
        """The job as it is keyed in the cache: the full execution config.

        Two refinements over the job's own hash.  A portfolio winner may
        come from any entrant, so portfolio results live under a namespaced
        router tag and can never be served as the answer to a plain
        single-router job (or vice versa).  And the routers are anytime --
        a larger budget can buy a better solution -- so the *effective*
        budget is part of the key and a low-budget result is never served
        to a high-budget request.  A ``time_budget`` carried in the job's
        own spec wins at execution (the worker builds the router from the
        spec), so it must win in the key too; the service budget applies
        only when the spec leaves it unset.
        """
        options = dict(job.options)
        options.setdefault("time_budget", float(budget))
        router = job.router
        if self.portfolio is not None:
            router = "portfolio:" + "+".join(self.portfolio)
        return job.with_router(router, options=options)

    def _record_outcome(self, job: RoutingJob, key_job: RoutingJob,
                        result: RoutingResult) -> None:
        if not result.solved:
            self.telemetry.record("failed", job.key, job.name,
                                  status=result.status.value)
            return
        rescued = is_fallback_result(result)
        if rescued:
            self.telemetry.record("fallback", job.key, job.name,
                                  router=result.router_name)
        if self.cache is not None and not rescued:
            # Fallback substitutes are never cached: the key names the
            # requested router, and a rescued answer stored under it would
            # be served forever in place of the real router's result.
            # ``put`` re-runs the independent verifier; a result that fails
            # it is refused and surfaces as a cache-reject event.
            evicted_before = self.cache.evictions
            if self.cache.put(key_job, result):
                self.telemetry.record("cache-store", job.key, job.name)
            else:
                self.telemetry.record("cache-reject", job.key, job.name)
            evicted = self.cache.evictions - evicted_before
            if evicted:
                # Size-bound eviction triggered by this store: observable in
                # telemetry (and the server's /metrics) like any other event.
                self.telemetry.record("cache-evict", job.key, job.name,
                                      evicted=evicted,
                                      total_bytes=self.cache.total_bytes())
        detail = {"swaps": result.swap_count,
                  "solve_time": round(result.solve_time, 6)}
        # Per-stage solve-path timings (encode / solve / extract) and session
        # reuse counters, when the router reports them: this is what makes
        # incremental solving observable from the service.
        for stage, seconds in result.stage_timings.items():
            detail[f"stage_{stage}"] = round(seconds, 6)
        if result.clauses_streamed:
            detail["clauses_streamed"] = result.clauses_streamed
        if result.learnt_clauses_retained:
            detail["learnt_retained"] = result.learnt_clauses_retained
        # CDCL depth counters, so telemetry and /metrics see how hard the
        # SAT core worked, not just how long.
        for counter in ("conflicts", "propagations", "restarts",
                        "learnt_clauses"):
            if counter in result.solver_stats:
                detail[counter] = int(result.solver_stats[counter])
        if result.solver_stats.get("backend"):
            detail["solver_backend"] = str(result.solver_stats["backend"])
        if result.trace is not None:
            waited = obs_trace.find_span(result.trace, "queue-wait")
            if waited is not None and waited.get("duration") is not None:
                detail["queue_wait"] = round(float(waited["duration"]), 6)
        self.telemetry.record("finished", job.key, job.name, **detail)

    def stats(self) -> dict:
        """Joint cache + telemetry counters for dashboards and tests."""
        stats = {"throughput": self.telemetry.throughput(),
                 "jobs_finished": self.telemetry.jobs_finished,
                 "events": len(self.telemetry.events)}
        if self.cache is not None:
            stats["cache"] = self.cache.stats()
        if self._pool is not None:
            stats["pool_mode"] = self._pool.mode
            stats["max_workers"] = self._pool.max_workers
        return stats
