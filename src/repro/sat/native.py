"""Python driver for the compiled CDCL core.

:class:`NativeSatSolver` exposes the exact interface of
:class:`repro.sat.solver.SatSolver` — ``new_var`` / ``ensure_vars`` /
``add_clause`` / ``solve(assumptions, time_budget, conflict_budget)`` /
``stats`` / ``ok`` — over the C extension :mod:`repro.sat._native.core`.

The C side only runs one restart *window* at a time
(``core.search(max_conflicts, conflict_budget, time_budget)``); this
wrapper owns the Luby restart schedule, the per-call budget bookkeeping,
:class:`~repro.sat.solver.SolverStatistics`, and the per-solve ``sat-solve``
trace span, so everything the MaxSAT layer and the observability stack rely
on behaves identically to the pure-Python solver.  Returning to Python once
per restart costs nothing measurable (restarts are hundreds of conflicts
apart) and keeps anytime budgets honest even if the C core misbehaves.

Cross-checking (``REPRO_SAT_CROSSCHECK=1``) happens here rather than in
:class:`~repro.sat.session.SatSession` because MaxSAT strategies add
relaxation clauses directly through ``session.solver.add_clause``: the
wrapper records every ingested clause, evaluates each one under every SAT
model, and replays UNSAT verdicts through a fresh pure-Python solver.  A
disagreement raises :class:`CrossCheckError` — loudly, since it means one
of the cores is wrong.

Pickling (needed because pipelined slicing ships prebuilt
:class:`~repro.core.satmap.SliceContext` objects across process
boundaries) round-trips the *formula*, not the solver state: the C core
exports its live problem clauses and root-level units, and unpickling
replays them into a fresh core.  Learnt clauses and activity are dropped,
which is fine for the prebuild path (contexts cross the boundary unsolved);
if the extension is missing on the receiving side the replay lands in a
pure-Python solver instead.
"""

from __future__ import annotations

import time

from repro.obs import trace as obs_trace
from repro.sat import backends
from repro.sat._native import load_core
from repro.sat.solver import (
    SolverStatistics,
    SolverStatus,
    SolveResult,
    luby,
)


class CrossCheckError(RuntimeError):
    """The native core and the pure-Python core disagreed on an answer."""


def _rebuild_solver(kwargs: dict, flat_clauses: list[int], num_vars: int,
                    stats: dict):
    """Unpickle helper: replay an exported formula into a fresh solver.

    Falls back to the pure-Python solver when the extension is unavailable
    in the unpickling process, so a pickled context never becomes unusable.
    """
    if load_core() is not None:
        solver = NativeSatSolver(**kwargs)
    else:  # pragma: no cover - needs an env without the extension
        from repro.sat.solver import SatSolver

        solver = SatSolver(
            decay=kwargs.get("decay", 0.95),
            restart_base=kwargs.get("restart_base", 100),
            max_learnt_ratio=kwargs.get("max_learnt_ratio", 0.4),
        )
    clause: list[int] = []
    for literal in flat_clauses:
        if literal == 0:
            solver.add_clause(clause)
            clause = []
        else:
            clause.append(literal)
    solver.ensure_vars(num_vars)
    for key, value in stats.items():
        if key != "backend":
            setattr(solver.stats, key, value)
    return solver


class NativeSatSolver:
    """CDCL solver backed by the compiled core; see module docstring."""

    def __init__(
        self,
        decay: float = 0.95,
        restart_base: int = 100,
        max_learnt_ratio: float = 0.4,
    ) -> None:
        core_module = load_core()
        if core_module is None:
            raise RuntimeError(
                "repro.sat._native.core is not importable; build it with "
                "`python setup.py build_ext --inplace` or use the python "
                "backend"
            )
        self._core = core_module.Core(decay=decay,
                                      max_learnt_ratio=max_learnt_ratio)
        self._kwargs = {
            "decay": decay,
            "restart_base": restart_base,
            "max_learnt_ratio": max_learnt_ratio,
        }
        self.restart_base = restart_base
        self.max_learnt_ratio = max_learnt_ratio
        self.stats = SolverStatistics(backend="native")
        self._counter_base = self._core.counters()
        self._crosscheck = backends.crosscheck_enabled()
        #: Every clause ever ingested, kept only in cross-check mode.
        self._clause_log: list[list[int]] = []
        self._unsat_crosschecked = False

    # ------------------------------------------------------------------ setup

    @property
    def num_vars(self) -> int:
        return self._core.num_vars

    @property
    def ok(self) -> bool:
        """``False`` once the formula is unsatisfiable at the root."""
        return self._core.ok

    def new_var(self) -> int:
        """Allocate and return a fresh variable index."""
        return self._core.new_var()

    def ensure_vars(self, max_var: int) -> None:
        """Make sure all variables up to ``max_var`` exist (bulk growth)."""
        self._core.ensure_vars(max_var)

    def add_clause(self, literals: list[int]) -> bool:
        """Add a clause; return ``False`` if the formula became trivially UNSAT."""
        if not self._core.ok:
            return False
        if self._crosscheck:
            self._clause_log.append(list(literals))
        return self._core.add_clause(literals)

    def add_clauses(self, clauses: list[list[int]]) -> bool:
        """Add several clauses; return ``False`` if any made the formula UNSAT."""
        ok = True
        for clause in clauses:
            ok = self.add_clause(clause) and ok
        return ok

    def num_clauses(self) -> int:
        return self._core.num_problem

    def num_learnt(self) -> int:
        """Learnt clauses currently retained in the database."""
        return self._core.num_learnt

    # --------------------------------------------------------------- search

    def solve(
        self,
        assumptions: list[int] | None = None,
        time_budget: float | None = None,
        conflict_budget: int | None = None,
    ) -> SolveResult:
        """Solve the current formula under optional assumptions and budgets."""
        start = time.monotonic()
        wall_start = time.time()
        base = self._counter_base
        assumptions = list(assumptions or [])

        def finish(status: SolverStatus, model=None, core=None) -> SolveResult:
            counters = self._core.counters()
            deltas = [now - before for now, before in zip(counters, base)]
            self._counter_base = counters
            self.stats.conflicts += deltas[0]
            self.stats.decisions += deltas[1]
            self.stats.propagations += deltas[2]
            self.stats.learnt_clauses += deltas[3]
            self.stats.deleted_clauses += deltas[4]
            result = SolveResult(
                status=status,
                model=model or {},
                core=core or [],
                conflicts=deltas[0],
                decisions=deltas[1],
                propagations=deltas[2],
                solve_time=time.monotonic() - start,
            )
            obs_trace.record(
                "sat-solve", start=wall_start, duration=result.solve_time,
                status=status.value, conflicts=result.conflicts,
                decisions=result.decisions, propagations=result.propagations,
                restarts=restarts_this_call,
                assumptions=len(assumptions),
                backend="native",
            )
            if self._crosscheck:
                self._verify(result, assumptions, time_budget,
                             conflict_budget)
            return result

        restarts_this_call = 0
        if not self._core.ok:
            return finish(SolverStatus.UNSAT)
        if self._core.prepare_solve(assumptions) == -1:
            return finish(SolverStatus.UNSAT)

        restart_round = 0
        conflicts_this_call = 0
        while True:
            window = self.restart_base * luby(restart_round + 1)
            if time_budget is None:
                time_remaining = -1.0
            else:
                time_remaining = max(0.0, time_budget
                                     - (time.monotonic() - start))
            if conflict_budget is None:
                conflicts_remaining = -1
            else:
                conflicts_remaining = conflict_budget - conflicts_this_call
            before = self._core.counters()[0]
            status = self._core.search(window, conflicts_remaining,
                                       time_remaining)
            conflicts_this_call += self._core.counters()[0] - before
            if status == 2:
                restart_round += 1
                restarts_this_call += 1
                self.stats.restarts += 1
                continue
            if status == 1:
                model_bytes = self._core.get_model()
                model = {variable: bool(model_bytes[variable])
                         for variable in range(1, self._core.num_vars + 1)}
                return finish(SolverStatus.SAT, model=model)
            if status == -1:
                return finish(SolverStatus.UNSAT)
            if status == -2:
                return finish(SolverStatus.UNSAT,
                              core=self._core.get_core())
            return finish(SolverStatus.UNKNOWN)

    # --------------------------------------------------------- cross-check

    def _verify(self, result: SolveResult, assumptions: list[int],
                time_budget: float | None,
                conflict_budget: int | None) -> None:
        """Replay a native answer through the pure-Python reference core."""
        if result.is_sat:
            model = result.model
            for clause in self._clause_log:
                satisfied = any(
                    model.get(abs(literal), False) is (literal > 0)
                    for literal in clause
                )
                if not satisfied:
                    raise CrossCheckError(
                        f"native model does not satisfy clause {clause}"
                    )
            for literal in assumptions:
                if model.get(abs(literal), False) is not (literal > 0):
                    raise CrossCheckError(
                        f"native model violates assumption {literal}"
                    )
            return
        if result.is_unsat:
            if not assumptions and self._unsat_crosschecked:
                return  # the root verdict cannot change; checked once
            from repro.sat.solver import SatSolver

            reference = SatSolver()
            for clause in self._clause_log:
                reference.add_clause(clause)
            replay = reference.solve(assumptions=assumptions or None,
                                     time_budget=time_budget,
                                     conflict_budget=conflict_budget)
            # An UNKNOWN replay (budget ran out first) is inconclusive, not
            # a disagreement: the reference core is much slower.
            if replay.is_sat:
                raise CrossCheckError(
                    "native said UNSAT but the python core found a model "
                    f"(assumptions={assumptions})"
                )
            if not assumptions and replay.is_unsat:
                self._unsat_crosschecked = True

    # ------------------------------------------------------------- pickling

    def __reduce__(self):
        return (
            _rebuild_solver,
            (
                dict(self._kwargs),
                self._core.export_clauses(),
                self._core.num_vars,
                self.stats.as_dict(),
            ),
        )


__all__ = ["NativeSatSolver", "CrossCheckError"]
