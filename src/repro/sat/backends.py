"""Solver-backend registry: pure-Python reference vs. compiled core.

Two interchangeable CDCL implementations live behind
:class:`~repro.sat.session.SatSession`:

* ``"python"`` — :class:`repro.sat.solver.SatSolver`, the always-available
  reference implementation;
* ``"native"`` — :class:`repro.sat.native.NativeSatSolver`, a thin driver
  over the optional C extension :mod:`repro.sat._native.core`.

``"auto"`` (the default everywhere) resolves to native when the extension
imported, python otherwise — so a wheel built without a C toolchain, or an
environment with ``REPRO_SAT_DISABLE_NATIVE=1``, silently runs the
reference solver with identical results.

Selection precedence, highest first:

1. an explicit backend passed in code / ``RouterSpec`` option /
   ``--solver-backend`` CLI flag;
2. the ``REPRO_SAT_BACKEND`` environment variable;
3. ``"auto"``.

Both backends make the same verdicts, find the same optima through the
MaxSAT strategies, and produce the same routing results; only solver-depth
counters (conflicts/decisions/...) may differ because the two cores take
different search paths.  ``REPRO_SAT_CROSSCHECK=1`` additionally replays
every native UNSAT verdict and final model through the pure-Python core
(see :mod:`repro.sat.native`).
"""

from __future__ import annotations

import os

from repro.sat._native import load_core
from repro.sat.solver import SatSolver

#: Environment variable consulted when no explicit backend was requested.
BACKEND_ENV = "REPRO_SAT_BACKEND"
#: Set to a truthy value to verify native answers against the python core.
CROSSCHECK_ENV = "REPRO_SAT_CROSSCHECK"
#: Set to a truthy value to pretend the compiled core is not installed.
DISABLE_NATIVE_ENV = "REPRO_SAT_DISABLE_NATIVE"

#: Names accepted anywhere a backend can be chosen.
BACKEND_CHOICES = ("python", "native", "auto")


def native_available() -> bool:
    """Whether the compiled core can actually be imported right now."""
    return load_core() is not None


def available_backends() -> list[str]:
    """Concrete (non-``auto``) backends usable in this environment."""
    backends = ["python"]
    if native_available():
        backends.append("native")
    return backends


def resolve_backend(name: str | None = None) -> str:
    """Resolve a requested backend to a concrete one (python | native).

    ``name=None`` or ``"auto"`` (an explicit non-preference) falls back to
    ``$REPRO_SAT_BACKEND``, then ``"auto"``.  Requesting ``"native"``
    explicitly when the extension is unavailable is an error; ``"auto"``
    silently degrades to python.
    """
    if name is None or str(name).lower() == "auto":
        name = os.environ.get(BACKEND_ENV) or "auto"
    name = str(name).lower()
    if name not in BACKEND_CHOICES:
        raise ValueError(
            f"unknown solver backend {name!r}; expected one of "
            f"{', '.join(BACKEND_CHOICES)}"
        )
    if name == "auto":
        return "native" if native_available() else "python"
    if name == "native" and not native_available():
        raise RuntimeError(
            "solver backend 'native' was requested but the compiled core "
            "(repro.sat._native.core) is not importable; rebuild with "
            "`python setup.py build_ext --inplace` or use backend 'auto'"
        )
    return name


def crosscheck_enabled() -> bool:
    """Whether native answers should be replayed through the python core."""
    return bool(os.environ.get(CROSSCHECK_ENV))


def create_solver(backend: str | None = None, **solver_kwargs):
    """Build a solver for ``backend`` (resolved per the precedence rules).

    Returns a :class:`~repro.sat.solver.SatSolver` or a
    :class:`~repro.sat.native.NativeSatSolver`; both expose the same
    interface (``add_clause``/``solve``/``stats``/...).
    """
    resolved = resolve_backend(backend)
    if resolved == "native":
        from repro.sat.native import NativeSatSolver

        return NativeSatSolver(**solver_kwargs)
    return SatSolver(**solver_kwargs)


def describe_backends() -> dict:
    """Flat summary for ``repro info`` / ``repro routers``."""
    return {
        "available": available_backends(),
        "default": resolve_backend(None),
        "env": os.environ.get(BACKEND_ENV) or "",
        "crosscheck": crosscheck_enabled(),
    }


__all__ = [
    "BACKEND_ENV",
    "CROSSCHECK_ENV",
    "DISABLE_NATIVE_ENV",
    "BACKEND_CHOICES",
    "native_available",
    "available_backends",
    "resolve_backend",
    "crosscheck_enabled",
    "create_solver",
    "describe_backends",
]
