"""A self-contained CDCL SAT solver.

The paper's tool, SATMAP, delegates MaxSAT solving to Open-WBO-Inc-MCS, which
internally drives a CDCL SAT solver.  This package provides that substrate in
pure Python: a conflict-driven clause-learning solver with two-watched
literals, first-UIP clause learning, VSIDS branching, phase saving, Luby
restarts, assumption-based incremental solving, and DIMACS import/export.

The public entry points are:

* :class:`repro.sat.solver.SatSolver` -- the incremental CDCL solver.
* :class:`repro.sat.solver.SolveResult` -- SAT/UNSAT/UNKNOWN outcome.
* :class:`repro.sat.session.SatSession` -- a persistent solve session that
  keeps one solver (and its learnt clauses) alive across calls.
* :class:`repro.sat.session.ClauseSink` -- the streaming-ingestion protocol
  shared by sessions and the WCNF builder.
* :mod:`repro.sat.dimacs` -- reading and writing DIMACS CNF / WCNF files.
* :mod:`repro.sat.preprocessing` -- clause-level simplification.
* :mod:`repro.sat.enumeration` -- blocking-clause model enumeration.
* :mod:`repro.sat.backends` -- the solve-core registry: the pure-Python
  reference solver above, or :class:`repro.sat.native.NativeSatSolver`
  driving the optional C extension :mod:`repro.sat._native.core`
  (``resolve_backend`` / ``create_solver`` / ``native_available``).
"""

from repro.sat.literals import lit, neg, var_of, sign_of
from repro.sat.solver import SatSolver, SolveResult, SolverStatus
from repro.sat.backends import (
    available_backends,
    create_solver,
    describe_backends,
    native_available,
    resolve_backend,
)
from repro.sat.session import ClauseSink, SatSession, SessionStats
from repro.sat.preprocessing import Preprocessor, PreprocessResult, simplify_clauses
from repro.sat.enumeration import ModelEnumerator, all_models, count_models

__all__ = [
    "SatSolver",
    "SolveResult",
    "SolverStatus",
    "SatSession",
    "SessionStats",
    "ClauseSink",
    "available_backends",
    "create_solver",
    "describe_backends",
    "native_available",
    "resolve_backend",
    "lit",
    "neg",
    "var_of",
    "sign_of",
    "Preprocessor",
    "PreprocessResult",
    "simplify_clauses",
    "ModelEnumerator",
    "all_models",
    "count_models",
]
