/* Native CDCL core: the inner loops of repro.sat.solver.SatSolver in C.
 *
 * This is a faithful port of the pure-Python solver's hot machinery --
 * two-watched-literal unit propagation over a flat literal-indexed watch
 * table, first-UIP conflict analysis with recursive clause minimisation,
 * VSIDS branching with phase saving, and activity-based learnt-clause
 * reduction -- over a single int32 clause arena (the layout Snippet 3's
 * hardware port uses: clauses are [size, flags, activity, lit...] records
 * addressed by arena offset, so propagation touches contiguous memory).
 *
 * The module is deliberately *not* a full solver: restarts, Luby
 * scheduling, wall-clock/conflict budgets, statistics, and cross-checking
 * stay in Python (repro.sat.native.NativeSatSolver), which drives the
 * search one restart window at a time through ``search()``.  That keeps
 * every observable behaviour of the Python solver -- anytime budgets,
 * assumption-based incremental solving with unsat cores, SolverStatistics
 * -- working unchanged while the per-conflict work runs at native speed.
 *
 * Semantics intentionally mirror repro/sat/solver.py line for line where
 * it matters (clause simplification on add, analysis seen/touched
 * bookkeeping, assumption handling, final-core extraction); where the two
 * cores may legitimately diverge (decision order, learnt-clause content)
 * only the *verdict* and the *optimum* are contractual, which is what
 * tests/sat/test_backend_equivalence.py pins down.
 *
 * Deleted learnt clauses are unlinked from the watch lists but their arena
 * words are not reclaimed; the arena grows with the total number of learnt
 * clauses ever created, which is bounded and small for the session
 * lifetimes this package creates (the Python core holds comparable state
 * as live Clause objects).
 */

#define PY_SSIZE_T_CLEAN
#include <Python.h>

#include <limits.h>
#include <stdlib.h>
#include <string.h>
#include <time.h>

#define CREF_UNDEF (-1)

/* Clause flag bits (arena word 1). */
#define FLAG_LEARNT 1
#define FLAG_DELETED 2
#define FLAG_LOCKED 4
#define LBD_SHIFT 3

typedef struct {
    int *data;
    int size;
    int cap;
} veci;

static void veci_init(veci *v) { v->data = NULL; v->size = 0; v->cap = 0; }
static void veci_free(veci *v) { free(v->data); veci_init(v); }

typedef struct {
    PyObject_HEAD
    int num_vars;
    int var_cap;          /* per-variable array capacity (indices 0..var_cap-1) */
    int ok;
    int oom;
    /* Clause arena: [size][flags|lbd<<3][activity bits][lit0 lit1 ...] */
    int *arena;
    Py_ssize_t arena_size, arena_cap;
    veci learnts;          /* arena refs of live learnt clauses */
    long n_problem;        /* stored (non-unit) problem clauses */
    /* Flat watch table indexed by windex(lit) = 2v / 2v+1. */
    veci *watches;
    signed char *values;   /* 0 unassigned, 1 true, -1 false */
    signed char *phases;   /* saved polarity */
    int *levels;
    long *reasons;         /* arena ref or CREF_UNDEF */
    unsigned char *seen;   /* conflict-analysis scratch */
    unsigned char *mark;   /* minimisation keep-set */
    unsigned char *visited;/* minimisation visited-set */
    int *lbd_stamp;
    int lbd_epoch;
    int *lit_stamp;        /* add_clause dedup, indexed by windex */
    int lit_epoch;
    double *activity;
    int *heap;
    int heap_size;
    int *heap_pos;
    int *trail;
    int trail_size;
    int *trail_lim;
    int trail_lim_size;
    int qhead;
    double var_inc, var_decay, cla_inc, cla_decay, max_learnt_ratio;
    long long conflicts, decisions, propagations, learnt_total, deleted_total;
    int *assumptions;
    int n_assumptions, assump_cap;
    signed char *model;
    int have_model;
    veci core_out;
    /* scratch */
    veci learnt_clause;
    veci touched;
    veci minstack;
    veci visited_list;
    veci final_stack;
} Core;

/* ------------------------------------------------------------------ utils */

static int veci_push(Core *s, veci *v, int x)
{
    if (v->size == v->cap) {
        int ncap = v->cap ? v->cap * 2 : 4;
        int *nd = (int *)realloc(v->data, (size_t)ncap * sizeof(int));
        if (nd == NULL) { s->oom = 1; return -1; }
        v->data = nd;
        v->cap = ncap;
    }
    v->data[v->size++] = x;
    return 0;
}

static inline int windex(int lit)
{
    return lit > 0 ? (lit << 1) : (((-lit) << 1) | 1);
}

static inline signed char val_lit(const Core *s, int lit)
{
    return lit > 0 ? s->values[lit] : (signed char)(-s->values[-lit]);
}

static inline int cl_size(const Core *s, long cr) { return s->arena[cr]; }
static inline int *cl_lits(Core *s, long cr) { return &s->arena[cr + 3]; }
static inline int cl_flags(const Core *s, long cr) { return s->arena[cr + 1]; }

static inline float cl_activity(const Core *s, long cr)
{
    float f;
    memcpy(&f, &s->arena[cr + 2], sizeof(float));
    return f;
}

static inline void cl_set_activity(Core *s, long cr, float f)
{
    memcpy(&s->arena[cr + 2], &f, sizeof(float));
}

/* ------------------------------------------------------------------ VSIDS */

static void heap_sift_up(Core *s, int index)
{
    int *heap = s->heap, *pos = s->heap_pos;
    double *act = s->activity;
    int item = heap[index];
    while (index > 0) {
        int parent = (index - 1) >> 1;
        if (act[heap[parent]] >= act[item])
            break;
        heap[index] = heap[parent];
        pos[heap[parent]] = index;
        index = parent;
    }
    heap[index] = item;
    pos[item] = index;
}

static void heap_sift_down(Core *s, int index)
{
    int *heap = s->heap, *pos = s->heap_pos;
    double *act = s->activity;
    int size = s->heap_size;
    int item = heap[index];
    for (;;) {
        int left = 2 * index + 1;
        int best, right;
        if (left >= size)
            break;
        best = left;
        right = left + 1;
        if (right < size && act[heap[right]] > act[heap[left]])
            best = right;
        if (act[heap[best]] <= act[item])
            break;
        heap[index] = heap[best];
        pos[heap[best]] = index;
        index = best;
    }
    heap[index] = item;
    pos[item] = index;
}

static void heap_push(Core *s, int variable)
{
    if (s->heap_pos[variable] >= 0)
        return;
    s->heap[s->heap_size] = variable;
    s->heap_pos[variable] = s->heap_size;
    s->heap_size += 1;
    heap_sift_up(s, s->heap_size - 1);
}

static int heap_pop_max(Core *s)
{
    int top, last;
    if (s->heap_size == 0)
        return 0;
    top = s->heap[0];
    last = s->heap[--s->heap_size];
    s->heap_pos[top] = -1;
    if (s->heap_size > 0) {
        s->heap[0] = last;
        s->heap_pos[last] = 0;
        heap_sift_down(s, 0);
    }
    return top;
}

static void var_bump(Core *s, int variable)
{
    s->activity[variable] += s->var_inc;
    if (s->activity[variable] > 1e100) {
        int v;
        for (v = 1; v <= s->num_vars; v++)
            s->activity[v] *= 1e-100;
        s->var_inc *= 1e-100;
    }
    if (s->heap_pos[variable] >= 0)
        heap_sift_up(s, s->heap_pos[variable]);
}

/* ------------------------------------------------------------ var growth */

static int ensure_var_cap(Core *s, int max_var)
{
    int v;
    if (max_var <= s->num_vars)
        return 0;
    if (max_var + 1 > s->var_cap) {
        int ncap = s->var_cap ? s->var_cap : 16;
        size_t wslots;
        while (ncap < max_var + 1)
            ncap *= 2;
        wslots = 2 * (size_t)ncap;
#define GROW(ptr, type) do { \
        void *nd = realloc(s->ptr, (size_t)ncap * sizeof(type)); \
        if (nd == NULL) return -1; \
        s->ptr = (type *)nd; \
    } while (0)
        GROW(values, signed char);
        GROW(phases, signed char);
        GROW(levels, int);
        GROW(reasons, long);
        GROW(seen, unsigned char);
        GROW(mark, unsigned char);
        GROW(visited, unsigned char);
        GROW(lbd_stamp, int);
        GROW(activity, double);
        GROW(heap, int);
        GROW(heap_pos, int);
        GROW(trail, int);
        GROW(trail_lim, int);
        GROW(model, signed char);
#undef GROW
        {
            veci *nw = (veci *)realloc(s->watches, wslots * sizeof(veci));
            int *ns;
            size_t i;
            if (nw == NULL)
                return -1;
            s->watches = nw;
            ns = (int *)realloc(s->lit_stamp, wslots * sizeof(int));
            if (ns == NULL)
                return -1;
            s->lit_stamp = ns;
            for (i = 2 * (size_t)s->var_cap; i < wslots; i++) {
                veci_init(&s->watches[i]);
                s->lit_stamp[i] = 0;
            }
        }
        memset(s->values + s->var_cap, 0, (size_t)(ncap - s->var_cap));
        memset(s->phases + s->var_cap, 0, (size_t)(ncap - s->var_cap));
        memset(s->seen + s->var_cap, 0, (size_t)(ncap - s->var_cap));
        memset(s->mark + s->var_cap, 0, (size_t)(ncap - s->var_cap));
        memset(s->visited + s->var_cap, 0, (size_t)(ncap - s->var_cap));
        memset(s->model + s->var_cap, 0, (size_t)(ncap - s->var_cap));
        for (v = s->var_cap; v < ncap; v++) {
            s->levels[v] = 0;
            s->reasons[v] = CREF_UNDEF;
            s->lbd_stamp[v] = 0;
            s->activity[v] = 0.0;
            s->heap_pos[v] = -1;
        }
        s->var_cap = ncap;
    }
    for (v = s->num_vars + 1; v <= max_var; v++)
        heap_push(s, v);
    s->num_vars = max_var;
    return 0;
}

/* ------------------------------------------------------------ clause ops */

static long alloc_clause(Core *s, const int *lits, int n, int learnt)
{
    Py_ssize_t need = (Py_ssize_t)n + 3;
    long cr;
    if (s->arena_size + need > s->arena_cap) {
        Py_ssize_t ncap = s->arena_cap ? s->arena_cap : 1024;
        int *na;
        while (ncap < s->arena_size + need)
            ncap *= 2;
        na = (int *)realloc(s->arena, (size_t)ncap * sizeof(int));
        if (na == NULL) { s->oom = 1; return CREF_UNDEF; }
        s->arena = na;
        s->arena_cap = ncap;
    }
    cr = (long)s->arena_size;
    s->arena[cr] = n;
    s->arena[cr + 1] = learnt ? FLAG_LEARNT : 0;
    s->arena[cr + 2] = 0; /* activity 0.0f */
    memcpy(&s->arena[cr + 3], lits, (size_t)n * sizeof(int));
    s->arena_size += need;
    return cr;
}

static int watch_clause(Core *s, long cr)
{
    int *lits = cl_lits(s, cr);
    if (veci_push(s, &s->watches[windex(-lits[0])], (int)cr) < 0)
        return -1;
    if (veci_push(s, &s->watches[windex(-lits[1])], (int)cr) < 0)
        return -1;
    return 0;
}

static inline void assign(Core *s, int lit, long reason)
{
    int variable = lit > 0 ? lit : -lit;
    s->values[variable] = lit > 0 ? 1 : -1;
    s->levels[variable] = s->trail_lim_size;
    s->reasons[variable] = reason;
    s->phases[variable] = lit > 0;
    s->trail[s->trail_size++] = lit;
}

static void backtrack(Core *s, int level)
{
    int start, i;
    if (level >= s->trail_lim_size)
        return;
    start = s->trail_lim[level];
    for (i = s->trail_size - 1; i >= start; i--) {
        int lit = s->trail[i];
        int variable = lit > 0 ? lit : -lit;
        s->values[variable] = 0;
        s->reasons[variable] = CREF_UNDEF;
        heap_push(s, variable);
    }
    s->trail_size = start;
    s->trail_lim_size = level;
    if (s->qhead > s->trail_size)
        s->qhead = s->trail_size;
}

/* Unit propagation; returns conflicting arena ref or CREF_UNDEF. */
static long propagate(Core *s)
{
    while (s->qhead < s->trail_size) {
        int lit = s->trail[s->qhead++];
        int widx = windex(lit);
        int false_lit = -lit;
        veci *ws = &s->watches[widx];
        int i = 0, j = 0, total = ws->size;
        long conflict = CREF_UNDEF;
        s->propagations++;
        while (i < total) {
            long cr = ws->data[i++];
            int *lits = cl_lits(s, cr);
            int first, k, size, found;
            signed char first_value;
            if (lits[0] == false_lit) {
                lits[0] = lits[1];
                lits[1] = false_lit;
            }
            first = lits[0];
            first_value = val_lit(s, first);
            if (first_value == 1) {
                ws->data[j++] = (int)cr;
                continue;
            }
            size = cl_size(s, cr);
            found = 0;
            for (k = 2; k < size; k++) {
                int cand = lits[k];
                if (val_lit(s, cand) >= 0) {
                    lits[k] = lits[1];
                    lits[1] = cand;
                    if (veci_push(s, &s->watches[windex(-cand)], (int)cr) < 0)
                        return CREF_UNDEF; /* oom flagged */
                    found = 1;
                    break;
                }
            }
            if (found)
                continue;
            ws->data[j++] = (int)cr;
            if (first_value == -1) {
                while (i < total)
                    ws->data[j++] = ws->data[i++];
                conflict = cr;
                break;
            }
            assign(s, first, cr);
        }
        ws->size = j;
        if (conflict != CREF_UNDEF)
            return conflict;
    }
    return CREF_UNDEF;
}

/* ------------------------------------------------------------- analysis */

static void bump_clause_activity(Core *s, long cr)
{
    float act;
    if (!(cl_flags(s, cr) & FLAG_LEARNT))
        return;
    act = cl_activity(s, cr) + (float)s->cla_inc;
    cl_set_activity(s, cr, act);
    if (act > 1e20f) {
        int i;
        for (i = 0; i < s->learnts.size; i++) {
            long lr = s->learnts.data[i];
            cl_set_activity(s, lr, cl_activity(s, lr) * 1e-20f);
        }
        s->cla_inc *= 1e-20;
    }
}

/* Check whether ``lit``'s reason chain lies entirely inside the mark set. */
static int lit_redundant(Core *s, int lit)
{
    int result = 1, i;
    s->minstack.size = 0;
    s->visited_list.size = 0;
    if (s->reasons[lit > 0 ? lit : -lit] == CREF_UNDEF)
        return 0;
    veci_push(s, &s->minstack, lit);
    while (s->minstack.size > 0 && result) {
        int current = s->minstack.data[--s->minstack.size];
        int current_var = current > 0 ? current : -current;
        long cr = s->reasons[current_var];
        int size, *lits, k;
        if (cr == CREF_UNDEF) {
            result = 0;
            break;
        }
        size = cl_size(s, cr);
        lits = cl_lits(s, cr);
        for (k = 0; k < size; k++) {
            int other = lits[k];
            int ov = other > 0 ? other : -other;
            if (ov == current_var || s->visited[ov])
                continue;
            if (s->levels[ov] == 0 || s->mark[ov])
                continue;
            if (s->reasons[ov] == CREF_UNDEF) {
                result = 0;
                break;
            }
            s->visited[ov] = 1;
            veci_push(s, &s->visited_list, ov);
            veci_push(s, &s->minstack, other);
        }
    }
    for (i = 0; i < s->visited_list.size; i++)
        s->visited[s->visited_list.data[i]] = 0;
    return result;
}

/* First-UIP analysis; fills s->learnt_clause, returns the backtrack level. */
static int analyze(Core *s, long conflict)
{
    veci *learnt = &s->learnt_clause;
    int counter = 0, lit = 0, trail_index = s->trail_size - 1;
    int current_level = s->trail_lim_size;
    long reason = conflict;
    int i, write, backtrack_level;

    learnt->size = 0;
    veci_push(s, learnt, 0); /* placeholder for the asserting literal */
    s->touched.size = 0;

    for (;;) {
        int size = cl_size(s, reason);
        int *lits = cl_lits(s, reason);
        int k, variable;
        bump_clause_activity(s, reason);
        for (k = 0; k < size; k++) {
            int other = lits[k];
            if (lit != 0 && other == lit)
                continue;
            variable = other > 0 ? other : -other;
            if (s->seen[variable] || s->levels[variable] == 0)
                continue;
            s->seen[variable] = 1;
            veci_push(s, &s->touched, variable);
            var_bump(s, variable);
            if (s->levels[variable] >= current_level)
                counter++;
            else
                veci_push(s, learnt, other);
        }
        for (;;) {
            int tl = s->trail[trail_index];
            if (s->seen[tl > 0 ? tl : -tl])
                break;
            trail_index--;
        }
        lit = s->trail[trail_index];
        trail_index--;
        variable = lit > 0 ? lit : -lit;
        s->seen[variable] = 0;
        counter--;
        if (counter == 0)
            break;
        reason = s->reasons[variable];
    }
    learnt->data[0] = -lit;

    /* Minimisation: drop literals implied by the rest of the clause. */
    for (i = 0; i < learnt->size; i++) {
        int v = learnt->data[i] > 0 ? learnt->data[i] : -learnt->data[i];
        s->mark[v] = 1;
    }
    write = 1;
    for (i = 1; i < learnt->size; i++) {
        if (!lit_redundant(s, learnt->data[i]))
            learnt->data[write++] = learnt->data[i];
    }
    for (i = 0; i < learnt->size; i++) {
        int v = learnt->data[i] > 0 ? learnt->data[i] : -learnt->data[i];
        s->mark[v] = 0;
    }
    learnt->size = write;

    for (i = 0; i < s->touched.size; i++)
        s->seen[s->touched.data[i]] = 0;

    if (learnt->size == 1) {
        backtrack_level = 0;
    } else {
        int max_index = 1, position, tmp;
        int v1 = learnt->data[1] > 0 ? learnt->data[1] : -learnt->data[1];
        int max_level = s->levels[v1];
        for (position = 2; position < learnt->size; position++) {
            int lv = learnt->data[position];
            int var2 = lv > 0 ? lv : -lv;
            if (s->levels[var2] > max_level) {
                max_level = s->levels[var2];
                max_index = position;
            }
        }
        tmp = learnt->data[1];
        learnt->data[1] = learnt->data[max_index];
        learnt->data[max_index] = tmp;
        backtrack_level = max_level;
    }
    return backtrack_level;
}

static void add_learnt(Core *s)
{
    veci *learnt = &s->learnt_clause;
    int n = learnt->size;
    long cr;
    int i, lbd;
    if (n == 1) {
        assign(s, learnt->data[0], CREF_UNDEF);
        return;
    }
    cr = alloc_clause(s, learnt->data, n, 1);
    if (cr == CREF_UNDEF)
        return; /* oom */
    s->lbd_epoch++;
    lbd = 0;
    for (i = 0; i < n; i++) {
        int v = learnt->data[i] > 0 ? learnt->data[i] : -learnt->data[i];
        int level = s->levels[v];
        if (s->lbd_stamp[level] != s->lbd_epoch) {
            s->lbd_stamp[level] = s->lbd_epoch;
            lbd++;
        }
    }
    s->arena[cr + 1] = FLAG_LEARNT | (lbd << LBD_SHIFT);
    veci_push(s, &s->learnts, (int)cr);
    s->learnt_total++;
    watch_clause(s, cr);
    assign(s, learnt->data[0], cr);
}

/* --------------------------------------------------- learnt-DB reduction */

typedef struct {
    int lbd;
    float activity;
    int ref;
} ReduceEntry;

static int reduce_compare(const void *a, const void *b)
{
    const ReduceEntry *ea = (const ReduceEntry *)a;
    const ReduceEntry *eb = (const ReduceEntry *)b;
    if (ea->lbd != eb->lbd)
        return ea->lbd < eb->lbd ? -1 : 1;
    if (ea->activity != eb->activity)
        return ea->activity > eb->activity ? -1 : 1;
    return 0;
}

static int should_reduce(const Core *s)
{
    long limit;
    if (s->n_problem == 0)
        return 0;
    limit = (long)(s->max_learnt_ratio * (double)s->n_problem + 2000.0);
    if (limit < 1000)
        limit = 1000;
    return s->learnts.size > limit;
}

static void reduce_learnts(Core *s)
{
    int i, keep_count, removed = 0, write;
    ReduceEntry *entries;
    /* Lock reason clauses of the current trail. */
    for (i = 0; i < s->trail_size; i++) {
        int lit = s->trail[i];
        long cr = s->reasons[lit > 0 ? lit : -lit];
        if (cr != CREF_UNDEF)
            s->arena[cr + 1] |= FLAG_LOCKED;
    }
    entries = (ReduceEntry *)malloc((size_t)s->learnts.size * sizeof(ReduceEntry));
    if (entries == NULL) {
        s->oom = 1;
        goto unlock;
    }
    for (i = 0; i < s->learnts.size; i++) {
        long cr = s->learnts.data[i];
        entries[i].lbd = cl_flags(s, cr) >> LBD_SHIFT;
        entries[i].activity = cl_activity(s, cr);
        entries[i].ref = (int)cr;
    }
    qsort(entries, (size_t)s->learnts.size, sizeof(ReduceEntry), reduce_compare);
    keep_count = s->learnts.size / 2;
    write = 0;
    for (i = 0; i < s->learnts.size; i++) {
        long cr = entries[i].ref;
        if (i < keep_count || (cl_flags(s, cr) & FLAG_LOCKED)
                || cl_size(s, cr) == 2) {
            s->learnts.data[write++] = (int)cr;
        } else {
            s->arena[cr + 1] |= FLAG_DELETED;
            removed++;
        }
    }
    free(entries);
    if (removed > 0) {
        Py_ssize_t slot;
        s->learnts.size = write;
        s->deleted_total += removed;
        for (slot = 2; slot < 2 * (Py_ssize_t)(s->num_vars + 1); slot++) {
            veci *ws = &s->watches[slot];
            int r, w = 0;
            for (r = 0; r < ws->size; r++) {
                if (!(cl_flags(s, ws->data[r]) & FLAG_DELETED))
                    ws->data[w++] = ws->data[r];
            }
            ws->size = w;
        }
    }
unlock:
    for (i = 0; i < s->trail_size; i++) {
        int lit = s->trail[i];
        long cr = s->reasons[lit > 0 ? lit : -lit];
        if (cr != CREF_UNDEF)
            s->arena[cr + 1] &= ~FLAG_LOCKED;
    }
}

/* ------------------------------------------------------------ final core */

static int in_veci(const veci *v, int x)
{
    int i;
    for (i = 0; i < v->size; i++)
        if (v->data[i] == x)
            return 1;
    return 0;
}

static void analyze_final(Core *s, int failed_assumption)
{
    int i;
    s->core_out.size = 0;
    veci_push(s, &s->core_out, failed_assumption);
    s->touched.size = 0;
    s->final_stack.size = 0;
    {
        int fv = failed_assumption > 0 ? failed_assumption : -failed_assumption;
        s->seen[fv] = 1;
        veci_push(s, &s->touched, fv);
    }
    veci_push(s, &s->final_stack, -failed_assumption);
    while (s->final_stack.size > 0) {
        int lit = s->final_stack.data[--s->final_stack.size];
        int variable = lit > 0 ? lit : -lit;
        long cr = s->reasons[variable];
        if (cr == CREF_UNDEF) {
            /* A decision: it must be one of the assumptions. */
            int truthy = (val_lit(s, lit) == 1) ? lit : -lit;
            int k, found = 0;
            for (k = 0; k < s->n_assumptions; k++)
                if (s->assumptions[k] == truthy) { found = 1; break; }
            if (found && !in_veci(&s->core_out, truthy))
                veci_push(s, &s->core_out, truthy);
            continue;
        }
        {
            int size = cl_size(s, cr);
            int *lits = cl_lits(s, cr);
            int k;
            for (k = 0; k < size; k++) {
                int other = lits[k];
                int ov = other > 0 ? other : -other;
                if (s->seen[ov] || s->levels[ov] == 0)
                    continue;
                s->seen[ov] = 1;
                veci_push(s, &s->touched, ov);
                veci_push(s, &s->final_stack, other);
            }
        }
    }
    for (i = 0; i < s->touched.size; i++)
        s->seen[s->touched.data[i]] = 0;
}

/* ----------------------------------------------------------------- search */

static void save_model(Core *s)
{
    int v;
    for (v = 1; v <= s->num_vars; v++) {
        signed char value = s->values[v];
        s->model[v] = value != 0 ? (value == 1) : s->phases[v];
    }
    s->have_model = 1;
}

static double elapsed_since(const struct timespec *t0)
{
    struct timespec t;
    clock_gettime(CLOCK_MONOTONIC, &t);
    return (double)(t.tv_sec - t0->tv_sec)
        + 1e-9 * (double)(t.tv_nsec - t0->tv_nsec);
}

/* One restart window.  Returns:
 *   1  SAT (model saved)            -1  UNSAT at the root
 *  -2  UNSAT under assumptions      0   budget exhausted (UNKNOWN)
 *   2  restart window exhausted    -3   out of memory
 * All exits except -1 leave the solver backtracked to level 0. */
static int search(Core *s, long long max_conflicts, long long conflict_budget,
                  double time_budget)
{
    long long local_conflicts = 0;
    struct timespec t0;
    clock_gettime(CLOCK_MONOTONIC, &t0);

    for (;;) {
        long conflict = propagate(s);
        if (s->oom)
            return -3;
        if (conflict != CREF_UNDEF) {
            int bt;
            s->conflicts++;
            local_conflicts++;
            if (s->trail_lim_size == 0) {
                s->ok = 0;
                return -1;
            }
            bt = analyze(s, conflict);
            backtrack(s, bt);
            add_learnt(s);
            if (s->oom)
                return -3;
            s->var_inc /= s->var_decay;
            s->cla_inc /= s->cla_decay;
            continue;
        }

        /* Budgets are only checked at a stable (non-conflicting) point. */
        if (time_budget >= 0.0 && elapsed_since(&t0) > time_budget) {
            backtrack(s, 0);
            return 0;
        }
        if (conflict_budget >= 0 && local_conflicts > conflict_budget) {
            backtrack(s, 0);
            return 0;
        }
        if (max_conflicts >= 0 && local_conflicts >= max_conflicts) {
            backtrack(s, 0);
            return 2;
        }

        if (should_reduce(s))
            reduce_learnts(s);
        if (s->oom)
            return -3;

        {
            int next = 0;
            if (s->trail_lim_size < s->n_assumptions) {
                int assumption = s->assumptions[s->trail_lim_size];
                signed char value = val_lit(s, assumption);
                if (value == 1) {
                    s->trail_lim[s->trail_lim_size++] = s->trail_size;
                    continue;
                }
                if (value == -1) {
                    analyze_final(s, assumption);
                    backtrack(s, 0);
                    return -2;
                }
                next = assumption;
            } else {
                for (;;) {
                    int variable = heap_pop_max(s);
                    if (variable == 0) {
                        next = 0;
                        break;
                    }
                    if (s->values[variable] == 0) {
                        next = s->phases[variable] ? variable : -variable;
                        break;
                    }
                }
                if (next == 0) {
                    save_model(s);
                    backtrack(s, 0);
                    return 1;
                }
            }
            s->decisions++;
            s->trail_lim[s->trail_lim_size++] = s->trail_size;
            assign(s, next, CREF_UNDEF);
        }
    }
}

/* ============================================================ Python type */

static PyObject *Core_new(PyTypeObject *type, PyObject *args, PyObject *kwds)
{
    Core *s = (Core *)type->tp_alloc(type, 0);
    if (s == NULL)
        return NULL;
    s->num_vars = 0;
    s->var_cap = 0;
    s->ok = 1;
    s->oom = 0;
    s->arena = NULL;
    s->arena_size = s->arena_cap = 0;
    veci_init(&s->learnts);
    s->n_problem = 0;
    s->watches = NULL;
    s->values = NULL;
    s->phases = NULL;
    s->levels = NULL;
    s->reasons = NULL;
    s->seen = NULL;
    s->mark = NULL;
    s->visited = NULL;
    s->lbd_stamp = NULL;
    s->lbd_epoch = 0;
    s->lit_stamp = NULL;
    s->lit_epoch = 0;
    s->activity = NULL;
    s->heap = NULL;
    s->heap_size = 0;
    s->heap_pos = NULL;
    s->trail = NULL;
    s->trail_size = 0;
    s->trail_lim = NULL;
    s->trail_lim_size = 0;
    s->qhead = 0;
    s->var_inc = 1.0;
    s->var_decay = 0.95;
    s->cla_inc = 1.0;
    s->cla_decay = 0.999;
    s->max_learnt_ratio = 0.4;
    s->conflicts = s->decisions = s->propagations = 0;
    s->learnt_total = s->deleted_total = 0;
    s->assumptions = NULL;
    s->n_assumptions = 0;
    s->assump_cap = 0;
    s->model = NULL;
    s->have_model = 0;
    veci_init(&s->core_out);
    veci_init(&s->learnt_clause);
    veci_init(&s->touched);
    veci_init(&s->minstack);
    veci_init(&s->visited_list);
    veci_init(&s->final_stack);
    return (PyObject *)s;
}

static int Core_init(Core *s, PyObject *args, PyObject *kwds)
{
    static char *kwlist[] = {"decay", "clause_decay", "max_learnt_ratio", NULL};
    double decay = 0.95, clause_decay = 0.999, ratio = 0.4;
    if (!PyArg_ParseTupleAndKeywords(args, kwds, "|ddd", kwlist,
                                     &decay, &clause_decay, &ratio))
        return -1;
    if (!(decay > 0.0 && decay <= 1.0)) {
        PyErr_SetString(PyExc_ValueError, "decay must be in (0, 1]");
        return -1;
    }
    s->var_decay = decay;
    s->cla_decay = clause_decay;
    s->max_learnt_ratio = ratio;
    return 0;
}

static void Core_dealloc(Core *s)
{
    Py_ssize_t i;
    free(s->arena);
    veci_free(&s->learnts);
    if (s->watches != NULL) {
        for (i = 0; i < 2 * (Py_ssize_t)s->var_cap; i++)
            veci_free(&s->watches[i]);
        free(s->watches);
    }
    free(s->values);
    free(s->phases);
    free(s->levels);
    free(s->reasons);
    free(s->seen);
    free(s->mark);
    free(s->visited);
    free(s->lbd_stamp);
    free(s->lit_stamp);
    free(s->activity);
    free(s->heap);
    free(s->heap_pos);
    free(s->trail);
    free(s->trail_lim);
    free(s->model);
    free(s->assumptions);
    veci_free(&s->core_out);
    veci_free(&s->learnt_clause);
    veci_free(&s->touched);
    veci_free(&s->minstack);
    veci_free(&s->visited_list);
    veci_free(&s->final_stack);
    Py_TYPE(s)->tp_free((PyObject *)s);
}

static PyObject *oom_check(Core *s)
{
    if (s->oom) {
        s->oom = 0;
        return PyErr_NoMemory();
    }
    return NULL;
}

static PyObject *Core_new_var(Core *s, PyObject *noargs)
{
    if (ensure_var_cap(s, s->num_vars + 1) < 0)
        return PyErr_NoMemory();
    return PyLong_FromLong(s->num_vars);
}

static PyObject *Core_ensure_vars(Core *s, PyObject *arg)
{
    long max_var = PyLong_AsLong(arg);
    if (max_var == -1 && PyErr_Occurred())
        return NULL;
    if (max_var > s->num_vars && ensure_var_cap(s, (int)max_var) < 0)
        return PyErr_NoMemory();
    Py_RETURN_NONE;
}

/* Root-level unit enqueue + propagate; mirrors _enqueue_root_unit. */
static int enqueue_root_unit(Core *s, int literal)
{
    signed char value = val_lit(s, literal);
    if (value == 1)
        return 1;
    if (value == -1) {
        s->ok = 0;
        return 0;
    }
    assign(s, literal, CREF_UNDEF);
    if (propagate(s) != CREF_UNDEF) {
        s->ok = 0;
        return 0;
    }
    return 1;
}

static PyObject *Core_add_clause(Core *s, PyObject *arg)
{
    PyObject *seq;
    Py_ssize_t n, i;
    int result = 1;

    if (!s->ok)
        return PyBool_FromLong(0);
    seq = PySequence_Fast(arg, "add_clause expects a sequence of literals");
    if (seq == NULL)
        return NULL;
    n = PySequence_Fast_GET_SIZE(seq);

    s->learnt_clause.size = 0; /* reuse as the simplified-clause scratch */
    if (s->lit_epoch == INT_MAX) {
        memset(s->lit_stamp, 0, 2 * (size_t)s->var_cap * sizeof(int));
        s->lit_epoch = 0;
    }
    s->lit_epoch++;

    for (i = 0; i < n; i++) {
        long literal = PyLong_AsLong(PySequence_Fast_GET_ITEM(seq, i));
        int lit, variable;
        if (literal == -1 && PyErr_Occurred()) {
            Py_DECREF(seq);
            return NULL;
        }
        if (literal == 0) {
            Py_DECREF(seq);
            PyErr_SetString(PyExc_ValueError, "0 is not a valid literal");
            return NULL;
        }
        if (literal > INT_MAX / 2 || literal < -(INT_MAX / 2)) {
            Py_DECREF(seq);
            PyErr_SetString(PyExc_OverflowError, "literal out of range");
            return NULL;
        }
        lit = (int)literal;
        variable = lit > 0 ? lit : -lit;
        if (ensure_var_cap(s, variable) < 0) {
            Py_DECREF(seq);
            return PyErr_NoMemory();
        }
        if (s->lit_stamp[windex(-lit)] == s->lit_epoch) {
            Py_DECREF(seq); /* tautology, trivially satisfied */
            return PyBool_FromLong(1);
        }
        if (s->lit_stamp[windex(lit)] == s->lit_epoch)
            continue;
        if (s->trail_lim_size == 0) {
            signed char value = val_lit(s, lit);
            if (value == 1) {
                Py_DECREF(seq);
                return PyBool_FromLong(1);
            }
            if (value == -1)
                continue;
        }
        s->lit_stamp[windex(lit)] = s->lit_epoch;
        veci_push(s, &s->learnt_clause, lit);
    }
    Py_DECREF(seq);
    if (oom_check(s))
        return NULL;

    if (s->learnt_clause.size == 0) {
        s->ok = 0;
        result = 0;
    } else if (s->learnt_clause.size == 1) {
        result = enqueue_root_unit(s, s->learnt_clause.data[0]);
    } else {
        long cr = alloc_clause(s, s->learnt_clause.data,
                               s->learnt_clause.size, 0);
        if (cr == CREF_UNDEF || watch_clause(s, cr) < 0)
            return PyErr_NoMemory();
        s->n_problem++;
    }
    if (oom_check(s))
        return NULL;
    return PyBool_FromLong(result);
}

static PyObject *Core_prepare_solve(Core *s, PyObject *arg)
{
    Py_ssize_t n, i;
    PyObject *seq;
    long conflict;

    if (arg == Py_None) {
        s->n_assumptions = 0;
    } else {
        seq = PySequence_Fast(arg, "assumptions must be a sequence");
        if (seq == NULL)
            return NULL;
        n = PySequence_Fast_GET_SIZE(seq);
        if ((Py_ssize_t)s->assump_cap < n) {
            int *na = (int *)realloc(s->assumptions, (size_t)n * sizeof(int));
            if (na == NULL) {
                Py_DECREF(seq);
                return PyErr_NoMemory();
            }
            s->assumptions = na;
            s->assump_cap = (int)n;
        }
        for (i = 0; i < n; i++) {
            long literal = PyLong_AsLong(PySequence_Fast_GET_ITEM(seq, i));
            if (literal == -1 && PyErr_Occurred()) {
                Py_DECREF(seq);
                return NULL;
            }
            if (literal == 0 || literal > INT_MAX / 2
                    || literal < -(INT_MAX / 2)) {
                Py_DECREF(seq);
                PyErr_SetString(PyExc_ValueError, "invalid assumption literal");
                return NULL;
            }
            if (ensure_var_cap(s, literal > 0 ? (int)literal
                                              : (int)-literal) < 0) {
                Py_DECREF(seq);
                return PyErr_NoMemory();
            }
            s->assumptions[i] = (int)literal;
        }
        s->n_assumptions = (int)n;
        Py_DECREF(seq);
    }
    s->have_model = 0;
    backtrack(s, 0);
    Py_BEGIN_ALLOW_THREADS
    conflict = propagate(s);
    Py_END_ALLOW_THREADS
    if (oom_check(s))
        return NULL;
    if (conflict != CREF_UNDEF) {
        s->ok = 0;
        return PyLong_FromLong(-1);
    }
    return PyLong_FromLong(0);
}

static PyObject *Core_search(Core *s, PyObject *args)
{
    long long max_conflicts, conflict_budget;
    double time_budget;
    int status;
    if (!PyArg_ParseTuple(args, "LLd", &max_conflicts, &conflict_budget,
                          &time_budget))
        return NULL;
    Py_BEGIN_ALLOW_THREADS
    status = search(s, max_conflicts, conflict_budget, time_budget);
    Py_END_ALLOW_THREADS
    if (status == -3) {
        s->oom = 0;
        return PyErr_NoMemory();
    }
    return PyLong_FromLong(status);
}

static PyObject *Core_get_model(Core *s, PyObject *noargs)
{
    if (!s->have_model) {
        PyErr_SetString(PyExc_RuntimeError, "no model available");
        return NULL;
    }
    return PyBytes_FromStringAndSize((const char *)s->model,
                                     (Py_ssize_t)s->num_vars + 1);
}

static PyObject *Core_get_core(Core *s, PyObject *noargs)
{
    PyObject *list = PyList_New(s->core_out.size);
    int i;
    if (list == NULL)
        return NULL;
    for (i = 0; i < s->core_out.size; i++) {
        PyObject *value = PyLong_FromLong(s->core_out.data[i]);
        if (value == NULL) {
            Py_DECREF(list);
            return NULL;
        }
        PyList_SET_ITEM(list, i, value);
    }
    return list;
}

static PyObject *Core_counters(Core *s, PyObject *noargs)
{
    return Py_BuildValue("(LLLLL)", s->conflicts, s->decisions,
                         s->propagations, s->learnt_total, s->deleted_total);
}

/* Flat export of the formula: every live problem clause then every root
 * (level-0) trail literal as a unit clause, 0-terminated.  Used to pickle
 * a solver across process boundaries by replay; learnt state is dropped. */
static PyObject *Core_export_clauses(Core *s, PyObject *noargs)
{
    veci flat;
    Py_ssize_t ref = 0;
    int i;
    PyObject *list;

    if (s->trail_lim_size != 0) {
        PyErr_SetString(PyExc_RuntimeError,
                        "export_clauses requires decision level 0");
        return NULL;
    }
    veci_init(&flat);
    while (ref < s->arena_size) {
        int size = s->arena[ref];
        int flags = s->arena[ref + 1];
        if (!(flags & (FLAG_LEARNT | FLAG_DELETED))) {
            int k;
            for (k = 0; k < size; k++)
                veci_push(s, &flat, s->arena[ref + 3 + k]);
            veci_push(s, &flat, 0);
        }
        ref += (Py_ssize_t)size + 3;
    }
    for (i = 0; i < s->trail_size; i++) {
        veci_push(s, &flat, s->trail[i]);
        veci_push(s, &flat, 0);
    }
    if (s->oom) {
        veci_free(&flat);
        s->oom = 0;
        return PyErr_NoMemory();
    }
    list = PyList_New(flat.size);
    if (list == NULL) {
        veci_free(&flat);
        return NULL;
    }
    for (i = 0; i < flat.size; i++) {
        PyObject *value = PyLong_FromLong(flat.data[i]);
        if (value == NULL) {
            Py_DECREF(list);
            veci_free(&flat);
            return NULL;
        }
        PyList_SET_ITEM(list, i, value);
    }
    veci_free(&flat);
    return list;
}

static PyObject *Core_get_num_vars(Core *s, void *closure)
{
    return PyLong_FromLong(s->num_vars);
}

static PyObject *Core_get_ok(Core *s, void *closure)
{
    return PyBool_FromLong(s->ok);
}

static PyObject *Core_get_num_problem(Core *s, void *closure)
{
    return PyLong_FromLong(s->n_problem);
}

static PyObject *Core_get_num_learnt(Core *s, void *closure)
{
    return PyLong_FromLong(s->learnts.size);
}

static PyMethodDef Core_methods[] = {
    {"new_var", (PyCFunction)Core_new_var, METH_NOARGS,
     "Allocate and return a fresh variable index."},
    {"ensure_vars", (PyCFunction)Core_ensure_vars, METH_O,
     "Make sure all variables up to max_var exist."},
    {"add_clause", (PyCFunction)Core_add_clause, METH_O,
     "Add a clause; returns False if the formula became trivially UNSAT."},
    {"prepare_solve", (PyCFunction)Core_prepare_solve, METH_O,
     "Set assumptions, backtrack to root, propagate; -1 on root conflict."},
    {"search", (PyCFunction)Core_search, METH_VARARGS,
     "Run one restart window: search(max_conflicts, conflict_budget, "
     "time_budget) -> 1 SAT | -1 UNSAT | -2 assumption UNSAT | 0 budget | "
     "2 restart."},
    {"get_model", (PyCFunction)Core_get_model, METH_NOARGS,
     "Model bytes (index = variable, value = 0/1) after a SAT search."},
    {"get_core", (PyCFunction)Core_get_core, METH_NOARGS,
     "Failed-assumption core after a -2 search."},
    {"counters", (PyCFunction)Core_counters, METH_NOARGS,
     "(conflicts, decisions, propagations, learnt, deleted) totals."},
    {"export_clauses", (PyCFunction)Core_export_clauses, METH_NOARGS,
     "Flat 0-terminated dump of problem clauses and root units."},
    {NULL, NULL, 0, NULL},
};

static PyGetSetDef Core_getset[] = {
    {"num_vars", (getter)Core_get_num_vars, NULL, "variable count", NULL},
    {"ok", (getter)Core_get_ok, NULL,
     "False once the formula is root-level unsatisfiable", NULL},
    {"num_problem", (getter)Core_get_num_problem, NULL,
     "stored problem clauses", NULL},
    {"num_learnt", (getter)Core_get_num_learnt, NULL,
     "live learnt clauses", NULL},
    {NULL, NULL, NULL, NULL, NULL},
};

static PyTypeObject CoreType = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro.sat._native.core.Core",
    .tp_doc = "Compiled CDCL inner core (propagate/analyze/decide).",
    .tp_basicsize = sizeof(Core),
    .tp_itemsize = 0,
    .tp_flags = Py_TPFLAGS_DEFAULT,
    .tp_new = Core_new,
    .tp_init = (initproc)Core_init,
    .tp_dealloc = (destructor)Core_dealloc,
    .tp_methods = Core_methods,
    .tp_getset = Core_getset,
};

static PyModuleDef core_module = {
    PyModuleDef_HEAD_INIT,
    .m_name = "repro.sat._native.core",
    .m_doc = "Native CDCL inner loops behind repro.sat.native.NativeSatSolver.",
    .m_size = -1,
};

PyMODINIT_FUNC PyInit_core(void)
{
    PyObject *module;
    if (PyType_Ready(&CoreType) < 0)
        return NULL;
    module = PyModule_Create(&core_module);
    if (module == NULL)
        return NULL;
    Py_INCREF(&CoreType);
    if (PyModule_AddObject(module, "Core", (PyObject *)&CoreType) < 0) {
        Py_DECREF(&CoreType);
        Py_DECREF(module);
        return NULL;
    }
    PyModule_AddStringConstant(module, "BACKEND", "native");
    return module;
}
