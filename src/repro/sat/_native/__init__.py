"""Optional compiled CDCL core.

The single-file C extension :mod:`repro.sat._native.core` holds the solver
inner loops (propagate / analyze / backjump / VSIDS-decide) over a clause
arena and a flat literal-indexed watch table.  It is built by ``setup.py``
on a best-effort basis: when no C toolchain is available the build step
warns and skips, and everything in :mod:`repro.sat` falls back to the pure
Python reference solver.

:func:`load_core` is the only supported way in — it returns the extension
module or ``None``, and never raises on a missing/unbuildable extension.
Set ``REPRO_SAT_DISABLE_NATIVE=1`` to pretend the extension is absent
(used by the CI python lane and the fallback tests).
"""

from __future__ import annotations

import os

_CORE = None
_CORE_CHECKED = False


def load_core():
    """Return the compiled ``core`` module, or ``None`` if unavailable."""
    global _CORE, _CORE_CHECKED
    if os.environ.get("REPRO_SAT_DISABLE_NATIVE"):
        return None
    if not _CORE_CHECKED:
        _CORE_CHECKED = True
        try:
            from repro.sat._native import core as _core_module
        except ImportError:
            _CORE = None
        else:
            _CORE = _core_module
    return _CORE


__all__ = ["load_core"]
