"""Clause representation and clause database for the CDCL solver.

Clauses store literals as signed DIMACS integers.  Learnt clauses carry an
activity score used for clause-database reduction, mirroring MiniSat's design.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(slots=True)
class Clause:
    """A disjunction of literals.

    The first two positions are the watched literals; the solver maintains the
    invariant that they are unassigned or satisfied whenever possible.
    ``slots`` keeps the per-clause footprint flat: a clause is four fixed
    fields, not a dict, which matters when a long-lived session accumulates
    tens of thousands of learnt clauses.
    """

    literals: list[int]
    learnt: bool = False
    activity: float = 0.0
    lbd: int = 0

    def __len__(self) -> int:
        return len(self.literals)

    def __iter__(self):
        return iter(self.literals)

    def __getitem__(self, index: int) -> int:
        return self.literals[index]

    def __setitem__(self, index: int, value: int) -> None:
        self.literals[index] = value


@dataclass
class ClauseDatabase:
    """Container separating original (problem) clauses from learnt clauses."""

    problem_clauses: list[Clause] = field(default_factory=list)
    learnt_clauses: list[Clause] = field(default_factory=list)

    def add_problem_clause(self, clause: Clause) -> None:
        self.problem_clauses.append(clause)

    def add_learnt_clause(self, clause: Clause) -> None:
        self.learnt_clauses.append(clause)

    @property
    def num_problem(self) -> int:
        return len(self.problem_clauses)

    @property
    def num_learnt(self) -> int:
        return len(self.learnt_clauses)
