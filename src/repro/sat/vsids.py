"""VSIDS (Variable State Independent Decaying Sum) branching heuristic.

Implemented as an activity-ordered binary max-heap with lazy deletion, the
standard MiniSat structure.  Activities are bumped on conflict participation
and decayed multiplicatively; overflow is handled by rescaling.
"""

from __future__ import annotations


class VsidsHeap:
    """Max-heap over variables keyed by activity, with lazy membership."""

    RESCALE_LIMIT = 1e100
    RESCALE_FACTOR = 1e-100

    def __init__(self, decay: float = 0.95) -> None:
        if not 0.0 < decay <= 1.0:
            raise ValueError("decay must be in (0, 1]")
        self.activity: list[float] = [0.0]
        self.heap: list[int] = []
        self.positions: list[int] = [-1]
        self.increment = 1.0
        self.decay = decay

    def grow_to(self, num_vars: int) -> None:
        while len(self.activity) <= num_vars:
            variable = len(self.activity)
            self.activity.append(0.0)
            self.positions.append(-1)
            self.push(variable)

    def __contains__(self, variable: int) -> bool:
        return self.positions[variable] >= 0

    def push(self, variable: int) -> None:
        if variable in self:
            return
        self.heap.append(variable)
        self.positions[variable] = len(self.heap) - 1
        self._sift_up(len(self.heap) - 1)

    def pop_max(self) -> int | None:
        if not self.heap:
            return None
        top = self.heap[0]
        last = self.heap.pop()
        self.positions[top] = -1
        if self.heap:
            self.heap[0] = last
            self.positions[last] = 0
            self._sift_down(0)
        return top

    def bump(self, variable: int) -> None:
        self.activity[variable] += self.increment
        if self.activity[variable] > self.RESCALE_LIMIT:
            self._rescale()
        if variable in self:
            self._sift_up(self.positions[variable])

    def decay_activities(self) -> None:
        self.increment /= self.decay

    def _rescale(self) -> None:
        for variable in range(1, len(self.activity)):
            self.activity[variable] *= self.RESCALE_FACTOR
        self.increment *= self.RESCALE_FACTOR

    def _sift_up(self, index: int) -> None:
        heap, act, pos = self.heap, self.activity, self.positions
        item = heap[index]
        while index > 0:
            parent = (index - 1) >> 1
            if act[heap[parent]] >= act[item]:
                break
            heap[index] = heap[parent]
            pos[heap[parent]] = index
            index = parent
        heap[index] = item
        pos[item] = index

    def _sift_down(self, index: int) -> None:
        heap, act, pos = self.heap, self.activity, self.positions
        size = len(heap)
        item = heap[index]
        while True:
            left = 2 * index + 1
            if left >= size:
                break
            best = left
            right = left + 1
            if right < size and act[heap[right]] > act[heap[left]]:
                best = right
            if act[heap[best]] <= act[item]:
                break
            heap[index] = heap[best]
            pos[heap[best]] = index
            index = best
        heap[index] = item
        pos[item] = index
