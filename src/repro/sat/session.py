"""Persistent solve sessions and streaming clause ingestion.

The MaxSAT stack used to pay a rebuild tax on every SAT call: each strategy
constructed a fresh :class:`~repro.sat.solver.SatSolver` and replayed every
hard clause into it.  A :class:`SatSession` removes that tax by keeping one
CDCL solver alive across an arbitrary number of ``solve()`` calls: hard
clauses are streamed in exactly once, and everything the solver learns --
learnt clauses, VSIDS activity, saved phases -- survives between calls, so
related solves (the MaxSAT refinement loop, slicing backtrack re-solves) get
faster as the session warms up.

:class:`ClauseSink` is the structural protocol for "something clauses can be
streamed into": both :class:`SatSession` and
:class:`repro.maxsat.wcnf.WcnfBuilder` satisfy it, which lets the QMR encoder
emit clauses directly into a live solver while it encodes instead of
materialising a list that a strategy later copies back in.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Protocol, runtime_checkable

from repro.obs.metrics import DEFAULT_SECONDS_BUCKETS, default_registry
from repro.sat.backends import create_solver, resolve_backend
from repro.sat.solver import SolveResult


@runtime_checkable
class ClauseSink(Protocol):
    """Anything that can allocate variables and ingest streamed hard clauses."""

    def new_var(self) -> int:
        """Allocate and return a fresh variable index."""

    def ensure_vars(self, max_var: int) -> None:
        """Make sure all variables up to ``max_var`` exist."""

    def add_hard(self, clause: list[int]) -> None:
        """Ingest one hard clause."""


@dataclass
class SessionStats:
    """Counters describing what a session has ingested and solved."""

    clauses_streamed: int = 0
    solve_calls: int = 0
    solve_time: float = 0.0


class SatSession:
    """A persistent, reusable CDCL solving session.

    The session is a thin stateful wrapper over one long-lived
    :class:`SatSolver`.  It satisfies :class:`ClauseSink`, so encoders and
    builders can stream clauses straight into it, and it tracks how many
    clauses were streamed, how many solve calls ran, and how much learnt
    knowledge is being retained -- the numbers the service telemetry surfaces
    to make incremental reuse observable.
    """

    def __init__(self, backend: str | None = None, **solver_kwargs) -> None:
        self._solver_kwargs = dict(solver_kwargs)
        #: The concrete solve core in use ("python" or "native"), resolved
        #: once at construction: explicit arg > $REPRO_SAT_BACKEND > auto.
        self.backend = resolve_backend(backend)
        self.solver = create_solver(self.backend, **solver_kwargs)
        self.stats = SessionStats()
        #: Bumped by :meth:`reset`.  Attached builders compare it on sync so a
        #: reset session is re-fed the full formula instead of staying empty.
        self.generation = 0

    # ----------------------------------------------------------- ClauseSink

    @property
    def num_vars(self) -> int:
        return self.solver.num_vars

    def new_var(self) -> int:
        """Allocate and return a fresh variable index."""
        return self.solver.new_var()

    def ensure_vars(self, max_var: int) -> None:
        """Make sure all variables up to ``max_var`` exist."""
        self.solver.ensure_vars(max_var)

    def add_hard(self, clause: list[int]) -> bool:
        """Stream one hard clause into the live solver."""
        self.stats.clauses_streamed += 1
        return self.solver.add_clause(clause)

    # Alias so the session can stand in wherever a raw solver was expected.
    add_clause = add_hard

    # -------------------------------------------------------------- solving

    def solve(
        self,
        assumptions: list[int] | None = None,
        time_budget: float | None = None,
        conflict_budget: int | None = None,
    ) -> SolveResult:
        """Solve the streamed formula under optional assumptions and budgets."""
        start = time.monotonic()
        result = self.solver.solve(assumptions=assumptions,
                                   time_budget=time_budget,
                                   conflict_budget=conflict_budget)
        elapsed = time.monotonic() - start
        self.stats.solve_calls += 1
        self.stats.solve_time += elapsed
        default_registry().histogram(
            "repro_sat_solve_seconds",
            "Per-call SAT solve latency by solve core.",
            buckets=DEFAULT_SECONDS_BUCKETS,
        ).observe(elapsed, backend=self.backend)
        return result

    # -------------------------------------------------------------- queries

    @property
    def ok(self) -> bool:
        """``False`` once the streamed formula is root-level unsatisfiable."""
        return self.solver.ok

    @property
    def learnt_clauses_retained(self) -> int:
        """Learnt clauses currently alive in the session's solver."""
        return self.solver.num_learnt()

    def describe(self) -> dict:
        """Flat summary used by telemetry and benchmark reports."""
        return {
            "backend": self.backend,
            "clauses_streamed": self.stats.clauses_streamed,
            "solve_calls": self.stats.solve_calls,
            "solve_time": self.stats.solve_time,
            "learnt_retained": self.learnt_clauses_retained,
            "num_vars": self.num_vars,
            "conflicts": self.solver.stats.conflicts,
            "propagations": self.solver.stats.propagations,
        }

    def solver_stats(self) -> dict:
        """The underlying solver's cumulative depth counters, as a dict."""
        return self.solver.stats.as_dict()

    def reset(self) -> None:
        """Discard all solver state and start an empty session.

        Streaming counters reset too: a reset session reports what the fresh
        solver has actually seen.  The generation bump makes any attached
        :class:`~repro.maxsat.wcnf.WcnfBuilder` restream its formula on the
        next sync, so the fresh solver never silently answers for an empty
        one.
        """
        self.solver = create_solver(self.backend, **self._solver_kwargs)
        self.stats = SessionStats()
        self.generation += 1
