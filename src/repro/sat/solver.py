"""A CDCL SAT solver with incremental (assumption-based) solving.

The design follows MiniSat: two-watched-literal propagation, first-UIP
conflict analysis with recursive clause minimisation, VSIDS branching with
phase saving, Luby restarts, and activity-based learnt-clause reduction.  The
solver accepts per-call budgets (time and conflicts), which the MaxSAT layer
uses to implement the anytime behaviour of Open-WBO-Inc-MCS: if the budget is
exhausted the call returns ``UNKNOWN`` and the caller keeps the best model it
has seen so far.

All per-variable and per-literal state is held in flat arrays indexed by
variable (assignment, reason, level, activity, phase) or by a dense literal
index (watch lists), mirroring the layout of hardware and C solvers: variable
``v`` owns slots ``2v`` (positive literal) and ``2v + 1`` (negative literal)
of the watch table.  The solver is designed to stay alive across ``solve()``
calls -- learnt clauses, VSIDS activity, and saved phases all persist -- which
is what :class:`repro.sat.session.SatSession` builds on.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from enum import Enum

from repro.obs import trace as obs_trace
from repro.sat.assignment import Trail
from repro.sat.clause import Clause, ClauseDatabase
from repro.sat.literals import neg, var_of
from repro.sat.vsids import VsidsHeap


def watch_index(literal: int) -> int:
    """Dense index of ``literal`` in the flat watch table (2v / 2v+1)."""
    return (literal << 1) if literal > 0 else ((-literal << 1) | 1)


class SolverStatus(Enum):
    """Outcome of a :meth:`SatSolver.solve` call."""

    SAT = "sat"
    UNSAT = "unsat"
    UNKNOWN = "unknown"


@dataclass
class SolveResult:
    """Result of a solve call.

    ``model`` maps variable index to Boolean value when ``status`` is SAT.
    ``core`` contains the subset of assumption literals responsible for
    unsatisfiability when ``status`` is UNSAT and assumptions were given.
    """

    status: SolverStatus
    model: dict[int, bool] = field(default_factory=dict)
    core: list[int] = field(default_factory=list)
    conflicts: int = 0
    decisions: int = 0
    propagations: int = 0
    solve_time: float = 0.0

    @property
    def is_sat(self) -> bool:
        return self.status is SolverStatus.SAT

    @property
    def is_unsat(self) -> bool:
        return self.status is SolverStatus.UNSAT

    @property
    def is_unknown(self) -> bool:
        return self.status is SolverStatus.UNKNOWN


@dataclass
class SolverStatistics:
    """Cumulative counters across all solve calls."""

    conflicts: int = 0
    decisions: int = 0
    propagations: int = 0
    restarts: int = 0
    learnt_clauses: int = 0
    deleted_clauses: int = 0
    #: Which solve core produced these numbers ("python" or "native").
    backend: str = "python"

    def as_dict(self) -> dict[str, int | str]:
        """Plain-dict form for telemetry details and span attributes."""
        return {
            "conflicts": self.conflicts,
            "decisions": self.decisions,
            "propagations": self.propagations,
            "restarts": self.restarts,
            "learnt_clauses": self.learnt_clauses,
            "deleted_clauses": self.deleted_clauses,
            "backend": self.backend,
        }


def luby(index: int) -> int:
    """Return the ``index``-th term (1-based) of the Luby restart sequence.

    The sequence is 1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8, ...  (MiniSat
    uses it to schedule restart intervals).
    """
    if index <= 0:
        raise ValueError("Luby sequence is 1-based")
    position = index - 1
    # Find the finite subsequence containing `position` and its size.
    subsequence = 0
    size = 1
    while size < position + 1:
        subsequence += 1
        size = 2 * size + 1
    while size - 1 != position:
        size = (size - 1) >> 1
        subsequence -= 1
        position %= size
    return 1 << subsequence


class SatSolver:
    """Conflict-driven clause-learning SAT solver.

    Typical use::

        solver = SatSolver()
        solver.add_clause([1, 2])
        solver.add_clause([-1, 2])
        result = solver.solve()
        assert result.is_sat and result.model[2] is True

    The solver is incremental: clauses can be added between solve calls, and
    ``solve(assumptions=[...])`` temporarily forces literals true, returning an
    unsat core over the assumptions when the instance is unsatisfiable.
    Learnt clauses and branching activity survive between calls, so a sequence
    of related solves (the MaxSAT refinement loop, slicing re-solves) gets
    faster as the session warms up.
    """

    def __init__(
        self,
        decay: float = 0.95,
        restart_base: int = 100,
        max_learnt_ratio: float = 0.4,
    ) -> None:
        self.num_vars = 0
        self.database = ClauseDatabase()
        self.trail = Trail()
        self.vsids = VsidsHeap(decay=decay)
        #: Flat watch table: ``_watches[watch_index(l)]`` holds the clauses to
        #: revisit when literal ``l`` becomes true.  Slots 0/1 are unused so
        #: variable ``v`` owns slots ``2v`` and ``2v + 1``.
        self._watches: list[list[Clause]] = [[], []]
        #: Scratch "seen" flags for conflict analysis, indexed by variable.
        self._seen = bytearray(1)
        self.stats = SolverStatistics()
        self.restart_base = restart_base
        self.max_learnt_ratio = max_learnt_ratio
        self.clause_activity_increment = 1.0
        self.clause_decay = 0.999
        self._ok = True  # False once an empty clause / root conflict is derived
        self._propagation_head = 0

    # ------------------------------------------------------------------ setup

    def new_var(self) -> int:
        """Allocate and return a fresh variable index."""
        self.num_vars += 1
        self.trail.grow_to(self.num_vars)
        self.vsids.grow_to(self.num_vars)
        self._watches.append([])
        self._watches.append([])
        self._seen.append(0)
        return self.num_vars

    def ensure_vars(self, max_var: int) -> None:
        """Make sure all variables up to ``max_var`` exist (bulk growth)."""
        grow = max_var - self.num_vars
        if grow <= 0:
            return
        self.trail.grow_to(max_var)
        self.vsids.grow_to(max_var)
        self._watches.extend([] for _ in range(2 * grow))
        self._seen.extend(b"\x00" * grow)
        self.num_vars = max_var

    def add_clause(self, literals: list[int]) -> bool:
        """Add a clause; return ``False`` if the formula became trivially UNSAT.

        The clause is simplified: duplicate literals are removed, tautologies
        are dropped, and literals already false at the root level are removed.
        """
        if not self._ok:
            return False
        seen: set[int] = set()
        simplified: list[int] = []
        for literal in literals:
            if literal == 0:
                raise ValueError("0 is not a valid literal")
            self.ensure_vars(var_of(literal))
            if -literal in seen:
                return True  # tautology, trivially satisfied
            if literal in seen:
                continue
            if self.trail.decision_level == 0:
                value = self.trail.value_of_literal(literal)
                if value is True:
                    return True
                if value is False:
                    continue
            seen.add(literal)
            simplified.append(literal)

        if not simplified:
            self._ok = False
            return False
        if len(simplified) == 1:
            return self._enqueue_root_unit(simplified[0])

        clause = Clause(simplified)
        self.database.add_problem_clause(clause)
        self._watch_clause(clause)
        return True

    def add_clauses(self, clauses: list[list[int]]) -> bool:
        """Add several clauses; return ``False`` if any made the formula UNSAT."""
        ok = True
        for clause in clauses:
            ok = self.add_clause(clause) and ok
        return ok

    def _enqueue_root_unit(self, literal: int) -> bool:
        value = self.trail.value_of_literal(literal)
        if value is True:
            return True
        if value is False:
            self._ok = False
            return False
        self.trail.assign(literal, None)
        conflict = self._propagate()
        if conflict is not None:
            self._ok = False
            return False
        return True

    def _watch_clause(self, clause: Clause) -> None:
        lits = clause.literals
        self._watches[watch_index(-lits[0])].append(clause)
        self._watches[watch_index(-lits[1])].append(clause)

    # ------------------------------------------------------------ propagation

    def _propagate(self) -> Clause | None:
        """Unit propagation; return the conflicting clause or ``None``."""
        trail = self.trail
        trail_list = trail.trail
        values = trail.values
        watches = self._watches
        while self._propagation_head < len(trail_list):
            literal = trail_list[self._propagation_head]
            self._propagation_head += 1
            self.stats.propagations += 1
            # watch_index(literal), inlined for the propagation hot loop.
            windex = (literal << 1) if literal > 0 else ((-literal << 1) | 1)
            watchers = watches[windex]
            new_watchers: list[Clause] = []
            conflict: Clause | None = None
            false_literal = -literal
            index = 0
            total = len(watchers)
            while index < total:
                clause = watchers[index]
                index += 1
                lits = clause.literals
                # Make sure the false literal is in position 1.
                if lits[0] == false_literal:
                    lits[0], lits[1] = lits[1], lits[0]
                first = lits[0]
                value = values[first] if first > 0 else values[-first]
                first_value = (value if value is None
                               else (value if first > 0 else not value))
                if first_value is True:
                    new_watchers.append(clause)
                    continue
                # Look for a new literal to watch.
                found = False
                for position in range(2, len(lits)):
                    candidate = lits[position]
                    cvalue = values[candidate] if candidate > 0 else values[-candidate]
                    if cvalue is None or cvalue is (candidate > 0):
                        lits[1], lits[position] = lits[position], lits[1]
                        # watch_index(-lits[1]), inlined: this and the outer
                        # lookup are the two hottest index computations.
                        moved = -lits[1]
                        watches[(moved << 1) if moved > 0
                                else ((-moved << 1) | 1)].append(clause)
                        found = True
                        break
                if found:
                    continue
                new_watchers.append(clause)
                if first_value is False:
                    # Conflict: copy the remaining watchers back and stop.
                    new_watchers.extend(watchers[index:])
                    conflict = clause
                    break
                trail.assign(first, clause)
            watches[windex] = new_watchers
            if conflict is not None:
                return conflict
        return None

    # ------------------------------------------------------------- analysis

    def _analyze(self, conflict: Clause) -> tuple[list[int], int]:
        """First-UIP conflict analysis.

        Returns the learnt clause (asserting literal first) and the backtrack
        level.  The "seen" set is a flat byte array indexed by variable,
        cleared via the touched list on the way out.
        """
        trail = self.trail
        trail_list = trail.trail
        levels = trail.levels
        seen = self._seen
        learnt: list[int] = [0]  # placeholder for the asserting literal
        touched: list[int] = []
        counter = 0
        literal: int | None = None
        reason: Clause | None = conflict
        trail_index = len(trail_list) - 1
        current_level = trail.decision_level

        while True:
            assert reason is not None
            self._bump_clause(reason)
            for other in reason.literals:
                if literal is not None and other == literal:
                    continue
                variable = other if other > 0 else -other
                if seen[variable] or levels[variable] == 0:
                    continue
                seen[variable] = 1
                touched.append(variable)
                self.vsids.bump(variable)
                if levels[variable] >= current_level:
                    counter += 1
                else:
                    learnt.append(other)
            # Find the next literal on the trail to resolve on.
            while not seen[abs(trail_list[trail_index])]:
                trail_index -= 1
            literal = trail_list[trail_index]
            trail_index -= 1
            variable = abs(literal)
            seen[variable] = 0
            counter -= 1
            if counter == 0:
                break
            reason = trail.reason_of_var(variable)

        learnt[0] = -literal
        learnt = self._minimize_learnt(learnt)
        for variable in touched:
            seen[variable] = 0

        if len(learnt) == 1:
            backtrack_level = 0
        else:
            # Second-highest decision level in the clause.
            max_index = 1
            max_level = levels[abs(learnt[1])]
            for position in range(2, len(learnt)):
                level = levels[abs(learnt[position])]
                if level > max_level:
                    max_level = level
                    max_index = position
            learnt[1], learnt[max_index] = learnt[max_index], learnt[1]
            backtrack_level = max_level
        return learnt, backtrack_level

    def _minimize_learnt(self, learnt: list[int]) -> list[int]:
        """Remove literals implied by the rest of the learnt clause."""
        keep = {var_of(literal) for literal in learnt}
        minimized = [learnt[0]]
        for literal in learnt[1:]:
            if not self._is_redundant(literal, keep):
                minimized.append(literal)
        return minimized

    def _is_redundant(self, literal: int, keep: set[int]) -> bool:
        """Check whether ``literal``'s reason chain lies entirely inside ``keep``."""
        reason = self.trail.reason_of_var(var_of(literal))
        if reason is None:
            return False
        stack = [literal]
        visited: set[int] = set()
        while stack:
            current = stack.pop()
            current_reason = self.trail.reason_of_var(var_of(current))
            if current_reason is None:
                return False
            for other in current_reason.literals:
                variable = var_of(other)
                if variable == var_of(current) or variable in visited:
                    continue
                if self.trail.level_of_var(variable) == 0:
                    continue
                if variable in keep:
                    continue
                if self.trail.reason_of_var(variable) is None:
                    return False
                visited.add(variable)
                stack.append(other)
        return True

    def _bump_clause(self, clause: Clause) -> None:
        if not clause.learnt:
            return
        clause.activity += self.clause_activity_increment
        if clause.activity > 1e20:
            for learnt in self.database.learnt_clauses:
                learnt.activity *= 1e-20
            self.clause_activity_increment *= 1e-20

    # --------------------------------------------------------------- search

    def solve(
        self,
        assumptions: list[int] | None = None,
        time_budget: float | None = None,
        conflict_budget: int | None = None,
    ) -> SolveResult:
        """Solve the current formula under optional assumptions and budgets."""
        start = time.monotonic()
        wall_start = time.time()
        start_conflicts = self.stats.conflicts
        start_decisions = self.stats.decisions
        start_propagations = self.stats.propagations
        start_restarts = self.stats.restarts

        def make_result(status: SolverStatus, model=None, core=None) -> SolveResult:
            result = SolveResult(
                status=status,
                model=model or {},
                core=core or [],
                conflicts=self.stats.conflicts - start_conflicts,
                decisions=self.stats.decisions - start_decisions,
                propagations=self.stats.propagations - start_propagations,
                solve_time=time.monotonic() - start,
            )
            # Every exit funnels through here, so this one call gives a
            # per-solve span (with its counter deltas) to any active tracer;
            # when tracing is off it is a single context-variable read.
            obs_trace.record(
                "sat-solve", start=wall_start, duration=result.solve_time,
                status=status.value, conflicts=result.conflicts,
                decisions=result.decisions, propagations=result.propagations,
                restarts=self.stats.restarts - start_restarts,
                assumptions=len(assumptions) if assumptions else 0,
                backend="python",
            )
            return result

        if not self._ok:
            return make_result(SolverStatus.UNSAT)

        assumptions = list(assumptions or [])
        for literal in assumptions:
            self.ensure_vars(var_of(literal))

        self._backtrack(0)
        conflict = self._propagate()
        if conflict is not None:
            self._ok = False
            return make_result(SolverStatus.UNSAT)

        restart_round = 0
        conflicts_until_restart = self.restart_base * luby(1)
        conflicts_this_call = 0

        while True:
            conflict = self._propagate()
            if conflict is not None:
                self.stats.conflicts += 1
                conflicts_this_call += 1
                conflicts_until_restart -= 1
                if self.trail.decision_level == 0:
                    self._ok = False
                    return make_result(SolverStatus.UNSAT)
                learnt, backtrack_level = self._analyze(conflict)
                self._backtrack(backtrack_level)
                self._add_learnt_clause(learnt)
                self.vsids.decay_activities()
                self.clause_activity_increment /= self.clause_decay
                continue

            # Budgets are only checked at a stable (non-conflicting) point.
            if time_budget is not None and time.monotonic() - start > time_budget:
                self._backtrack(0)
                return make_result(SolverStatus.UNKNOWN)
            if conflict_budget is not None and conflicts_this_call > conflict_budget:
                self._backtrack(0)
                return make_result(SolverStatus.UNKNOWN)

            if conflicts_until_restart <= 0:
                restart_round += 1
                self.stats.restarts += 1
                conflicts_until_restart = self.restart_base * luby(restart_round + 1)
                self._backtrack(0)
                continue

            if self._should_reduce_learnt():
                self._reduce_learnt_clauses()

            # Assumption handling (MiniSat style): redo assumptions after any
            # backtrack before making free decisions.
            next_literal = None
            if self.trail.decision_level < len(assumptions):
                assumption = assumptions[self.trail.decision_level]
                value = self.trail.value_of_literal(assumption)
                if value is True:
                    self.trail.new_decision_level()
                    continue
                if value is False:
                    core = self._analyze_final(assumption, assumptions)
                    self._backtrack(0)
                    return make_result(SolverStatus.UNSAT, core=core)
                next_literal = assumption
            else:
                next_literal = self._pick_branch_literal()
                if next_literal is None:
                    model = self._extract_model()
                    self._backtrack(0)
                    return make_result(SolverStatus.SAT, model=model)

            self.stats.decisions += 1
            self.trail.new_decision_level()
            self.trail.assign(next_literal, None)

    def _pick_branch_literal(self) -> int | None:
        while True:
            variable = self.vsids.pop_max()
            if variable is None:
                return None
            if self.trail.value_of_var(variable) is None:
                polarity = self.trail.saved_phases[variable]
                return variable if polarity else -variable

    def _backtrack(self, level: int) -> None:
        undone = self.trail.backtrack_to(level)
        for literal in undone:
            self.vsids.push(var_of(literal))
        self._propagation_head = min(self._propagation_head, len(self.trail.trail))

    def _add_learnt_clause(self, learnt: list[int]) -> None:
        asserting = learnt[0]
        if len(learnt) == 1:
            self.trail.assign(asserting, None)
            return
        clause = Clause(list(learnt), learnt=True)
        levels = {self.trail.level_of_var(var_of(lit)) for lit in learnt}
        clause.lbd = len(levels)
        self.database.add_learnt_clause(clause)
        self.stats.learnt_clauses += 1
        self._watch_clause(clause)
        self.trail.assign(asserting, clause)

    def _analyze_final(self, failed_assumption: int, assumptions: list[int]) -> list[int]:
        """Compute the subset of assumptions implying ``failed_assumption`` false."""
        core = [failed_assumption]
        assumption_set = set(assumptions)
        seen: set[int] = {var_of(failed_assumption)}
        stack = [neg(failed_assumption)]
        while stack:
            literal = stack.pop()
            variable = var_of(literal)
            reason = self.trail.reason_of_var(variable)
            if reason is None:
                # A decision: it must be one of the assumptions.
                truthy = literal if self.trail.value_of_literal(literal) else neg(literal)
                if truthy in assumption_set and truthy not in core:
                    core.append(truthy)
                continue
            for other in reason.literals:
                other_var = var_of(other)
                if other_var in seen or self.trail.level_of_var(other_var) == 0:
                    continue
                seen.add(other_var)
                stack.append(other)
        return core

    def _extract_model(self) -> dict[int, bool]:
        model: dict[int, bool] = {}
        values = self.trail.values
        phases = self.trail.saved_phases
        for variable in range(1, self.num_vars + 1):
            value = values[variable]
            model[variable] = phases[variable] if value is None else value
        return model

    # ----------------------------------------------------- clause reduction

    def _should_reduce_learnt(self) -> bool:
        if not self.database.problem_clauses:
            return False
        limit = max(1000, int(self.max_learnt_ratio * len(self.database.problem_clauses) + 2000))
        return len(self.database.learnt_clauses) > limit

    def _reduce_learnt_clauses(self) -> None:
        """Drop the half of learnt clauses with the lowest activity."""
        locked = {
            id(self.trail.reason_of_var(var_of(literal)))
            for literal in self.trail.trail
            if self.trail.reason_of_var(var_of(literal)) is not None
        }
        learnt = self.database.learnt_clauses
        learnt.sort(key=lambda clause: (clause.lbd, -clause.activity))
        keep_count = len(learnt) // 2
        kept: list[Clause] = []
        removed: list[Clause] = []
        for index, clause in enumerate(learnt):
            if index < keep_count or id(clause) in locked or len(clause) == 2:
                kept.append(clause)
            else:
                removed.append(clause)
        if not removed:
            return
        removed_ids = {id(clause) for clause in removed}
        watches = self._watches
        for windex in range(2, len(watches)):
            watchers = watches[windex]
            if watchers:
                watches[windex] = [c for c in watchers if id(c) not in removed_ids]
        self.database.learnt_clauses = kept
        self.stats.deleted_clauses += len(removed)

    # -------------------------------------------------------------- helpers

    @property
    def ok(self) -> bool:
        """``False`` once the formula is known to be unsatisfiable at the root."""
        return self._ok

    def num_clauses(self) -> int:
        return self.database.num_problem

    def num_learnt(self) -> int:
        """Learnt clauses currently retained in the database."""
        return self.database.num_learnt
