"""CNF preprocessing (simplification before handing a formula to the solver).

The QMR encoding is regular and highly structured, which makes it a good
target for cheap clause-level simplification: the injectivity constraints
produce many binary clauses, the slicing relaxation pins whole map layers with
unit clauses, and the cyclic relaxation adds equivalences that propagate far.
:class:`Preprocessor` applies the standard inexpensive techniques in a loop
until a fixpoint is reached:

* top-level unit propagation,
* tautology and duplicate-literal removal,
* pure literal elimination,
* clause subsumption, and
* self-subsuming resolution (clause strengthening).

Preprocessing preserves satisfiability and, because no variables are
eliminated by resolution, every model of the simplified formula extends to a
model of the original by fixing the propagated units and pure literals, which
:meth:`Preprocessor.extend_model` does.
"""

from __future__ import annotations

from dataclasses import dataclass, field


class PreprocessingError(Exception):
    """Raised when the formula is found unsatisfiable during preprocessing."""


@dataclass
class PreprocessResult:
    """Outcome of a preprocessing run."""

    clauses: list[list[int]]
    fixed_literals: list[int] = field(default_factory=list)
    unsatisfiable: bool = False
    removed_tautologies: int = 0
    removed_subsumed: int = 0
    strengthened: int = 0
    propagated_units: int = 0
    pure_literals: int = 0

    @property
    def num_clauses(self) -> int:
        return len(self.clauses)


class Preprocessor:
    """Fixpoint CNF simplifier.

    Typical use::

        result = Preprocessor().simplify(clauses)
        if result.unsatisfiable:
            ...  # formula refuted without search
        solver.add_clauses(result.clauses)
        model = Preprocessor.extend_model(model, result.fixed_literals)
    """

    def __init__(self, max_rounds: int = 10) -> None:
        if max_rounds <= 0:
            raise ValueError("max_rounds must be positive")
        self.max_rounds = max_rounds

    # ------------------------------------------------------------------ public

    def simplify(self, clauses: list[list[int]]) -> PreprocessResult:
        """Simplify ``clauses`` and report what was fixed or removed."""
        result = PreprocessResult(clauses=[])
        working = self._normalise(clauses, result)
        if working is None:
            result.unsatisfiable = True
            return result

        fixed: dict[int, int] = {}
        for _ in range(self.max_rounds):
            changed = False
            working, units_changed = self._propagate_units(working, fixed, result)
            if working is None:
                result.unsatisfiable = True
                result.fixed_literals = sorted(fixed.values(), key=abs)
                return result
            changed |= units_changed

            working, pure_changed = self._eliminate_pure_literals(working, fixed, result)
            changed |= pure_changed

            working, subsumption_changed = self._subsume(working, result)
            changed |= subsumption_changed

            working, strengthening_changed = self._self_subsume(working, result)
            changed |= strengthening_changed

            if not changed:
                break

        result.clauses = [list(clause) for clause in working]
        result.fixed_literals = sorted(fixed.values(), key=abs)
        return result

    @staticmethod
    def extend_model(model: dict[int, bool], fixed_literals: list[int]) -> dict[int, bool]:
        """Extend a model of the simplified formula with the fixed literals."""
        extended = dict(model)
        for literal in fixed_literals:
            extended[abs(literal)] = literal > 0
        return extended

    # --------------------------------------------------------------- internals

    def _normalise(self, clauses: list[list[int]],
                   result: PreprocessResult) -> list[list[int]] | None:
        """Drop tautologies and duplicate literals; reject empty clauses."""
        normalised: list[list[int]] = []
        for clause in clauses:
            if not clause:
                return None
            literals = sorted(set(clause), key=abs)
            if any(-literal in literals for literal in literals):
                result.removed_tautologies += 1
                continue
            normalised.append(literals)
        return normalised

    def _propagate_units(self, clauses: list[list[int]], fixed: dict[int, int],
                         result: PreprocessResult):
        """Propagate top-level unit clauses to a fixpoint."""
        changed = False
        while True:
            units = {clause[0] for clause in clauses if len(clause) == 1}
            if any(-literal in units for literal in units):
                return None, changed  # conflicting units in the same batch
            for literal in units:
                if fixed.get(abs(literal), literal) != literal:
                    return None, changed  # conflicts with an earlier fix
            new_units = {literal for literal in units if abs(literal) not in fixed}
            if not new_units:
                return clauses, changed
            changed = True
            result.propagated_units += len(new_units)
            for literal in new_units:
                fixed[abs(literal)] = literal
            reduced: list[list[int]] = []
            for clause in clauses:
                if any(literal in new_units for literal in clause):
                    continue
                remaining = [literal for literal in clause if -literal not in new_units]
                if not remaining:
                    return None, changed
                reduced.append(remaining)
            clauses = reduced

    def _eliminate_pure_literals(self, clauses: list[list[int]], fixed: dict[int, int],
                                 result: PreprocessResult):
        """Fix literals whose negation never occurs and drop their clauses."""
        polarity: dict[int, set[int]] = {}
        for clause in clauses:
            for literal in clause:
                polarity.setdefault(abs(literal), set()).add(literal)
        pure = {next(iter(signs)) for variable, signs in polarity.items()
                if len(signs) == 1 and variable not in fixed}
        if not pure:
            return clauses, False
        result.pure_literals += len(pure)
        for literal in pure:
            fixed[abs(literal)] = literal
        kept = [clause for clause in clauses
                if not any(literal in pure for literal in clause)]
        return kept, True

    def _subsume(self, clauses: list[list[int]], result: PreprocessResult):
        """Remove clauses that are supersets of another clause."""
        ordered = sorted(clauses, key=len)
        kept: list[list[int]] = []
        kept_sets: list[frozenset[int]] = []
        removed = 0
        for clause in ordered:
            clause_set = frozenset(clause)
            if any(existing <= clause_set for existing in kept_sets
                   if len(existing) <= len(clause_set)):
                removed += 1
                continue
            kept.append(clause)
            kept_sets.append(clause_set)
        result.removed_subsumed += removed
        return kept, removed > 0

    def _self_subsume(self, clauses: list[list[int]], result: PreprocessResult):
        """Self-subsuming resolution: strengthen C ∨ l when (C' ⊆ C) ∨ ¬l exists."""
        clause_sets = [frozenset(clause) for clause in clauses]
        by_literal: dict[int, list[int]] = {}
        for index, clause in enumerate(clauses):
            for literal in clause:
                by_literal.setdefault(literal, []).append(index)

        strengthened = 0
        output = [list(clause) for clause in clauses]
        for index, clause in enumerate(clauses):
            for literal in clause:
                candidates = by_literal.get(-literal, [])
                target = (clause_sets[index] - {literal}) | {-literal}
                for other in candidates:
                    if other == index:
                        continue
                    if clause_sets[other] <= target:
                        output[index] = [lit for lit in output[index] if lit != literal]
                        strengthened += 1
                        break
                else:
                    continue
                break
        result.strengthened += strengthened
        if strengthened == 0:
            return clauses, False
        return [clause for clause in output if clause], True


def simplify_clauses(clauses: list[list[int]]) -> PreprocessResult:
    """Convenience wrapper: run :class:`Preprocessor` with default settings."""
    return Preprocessor().simplify(clauses)
