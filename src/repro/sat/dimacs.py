"""Reading and writing DIMACS CNF and (old-style) WCNF files.

These are the interchange formats used by SAT and MaxSAT competitions and by
Open-WBO.  The MaxSAT layer uses them for debugging and for exporting the
constraints SATMAP generates, which makes the encoder output inspectable with
any off-the-shelf solver.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path


@dataclass
class CnfFormula:
    """A plain CNF formula: a clause list plus the number of variables."""

    num_vars: int = 0
    clauses: list[list[int]] = field(default_factory=list)

    def add_clause(self, clause: list[int]) -> None:
        for literal in clause:
            if literal == 0:
                raise ValueError("0 is not a valid literal")
            self.num_vars = max(self.num_vars, abs(literal))
        self.clauses.append(list(clause))


@dataclass
class WcnfFormula:
    """A weighted partial CNF formula (hard clauses plus weighted soft clauses)."""

    num_vars: int = 0
    hard: list[list[int]] = field(default_factory=list)
    soft: list[tuple[int, list[int]]] = field(default_factory=list)

    def add_hard(self, clause: list[int]) -> None:
        self._register(clause)
        self.hard.append(list(clause))

    def add_soft(self, clause: list[int], weight: int = 1) -> None:
        if weight <= 0:
            raise ValueError("soft clause weight must be positive")
        self._register(clause)
        self.soft.append((weight, list(clause)))

    def _register(self, clause: list[int]) -> None:
        for literal in clause:
            if literal == 0:
                raise ValueError("0 is not a valid literal")
            self.num_vars = max(self.num_vars, abs(literal))

    @property
    def top_weight(self) -> int:
        return sum(weight for weight, _ in self.soft) + 1


def parse_cnf(text: str) -> CnfFormula:
    """Parse DIMACS CNF text into a :class:`CnfFormula`."""
    formula = CnfFormula()
    declared_vars = 0
    current: list[int] = []
    for raw_line in text.splitlines():
        line = raw_line.strip()
        if not line or line.startswith("c"):
            continue
        if line.startswith("p"):
            parts = line.split()
            if len(parts) < 4 or parts[1] != "cnf":
                raise ValueError(f"malformed problem line: {line!r}")
            declared_vars = int(parts[2])
            continue
        for token in line.split():
            literal = int(token)
            if literal == 0:
                formula.add_clause(current)
                current = []
            else:
                current.append(literal)
    if current:
        formula.add_clause(current)
    formula.num_vars = max(formula.num_vars, declared_vars)
    return formula


def parse_wcnf(text: str) -> WcnfFormula:
    """Parse old-style DIMACS WCNF text (``p wcnf VARS CLAUSES TOP``)."""
    formula = WcnfFormula()
    top = None
    declared_vars = 0
    for raw_line in text.splitlines():
        line = raw_line.strip()
        if not line or line.startswith("c"):
            continue
        if line.startswith("p"):
            parts = line.split()
            if len(parts) < 4 or parts[1] != "wcnf":
                raise ValueError(f"malformed problem line: {line!r}")
            declared_vars = int(parts[2])
            top = int(parts[4]) if len(parts) > 4 else None
            continue
        tokens = [int(token) for token in line.split()]
        if not tokens or tokens[-1] != 0:
            raise ValueError(f"clause line must end with 0: {line!r}")
        weight = tokens[0]
        clause = tokens[1:-1]
        if top is not None and weight >= top:
            formula.add_hard(clause)
        else:
            formula.add_soft(clause, weight)
    formula.num_vars = max(formula.num_vars, declared_vars)
    return formula


def write_cnf(formula: CnfFormula) -> str:
    """Render a :class:`CnfFormula` as DIMACS CNF text."""
    lines = [f"p cnf {formula.num_vars} {len(formula.clauses)}"]
    for clause in formula.clauses:
        lines.append(" ".join(str(literal) for literal in clause) + " 0")
    return "\n".join(lines) + "\n"


def write_wcnf(formula: WcnfFormula) -> str:
    """Render a :class:`WcnfFormula` as old-style DIMACS WCNF text."""
    top = formula.top_weight
    total = len(formula.hard) + len(formula.soft)
    lines = [f"p wcnf {formula.num_vars} {total} {top}"]
    for clause in formula.hard:
        lines.append(f"{top} " + " ".join(str(literal) for literal in clause) + " 0")
    for weight, clause in formula.soft:
        lines.append(f"{weight} " + " ".join(str(literal) for literal in clause) + " 0")
    return "\n".join(lines) + "\n"


def load_cnf(path: str | Path) -> CnfFormula:
    """Read a DIMACS CNF file from disk."""
    return parse_cnf(Path(path).read_text())


def load_wcnf(path: str | Path) -> WcnfFormula:
    """Read a DIMACS WCNF file from disk."""
    return parse_wcnf(Path(path).read_text())


def save_cnf(formula: CnfFormula, path: str | Path) -> None:
    """Write a DIMACS CNF file to disk."""
    Path(path).write_text(write_cnf(formula))


def save_wcnf(formula: WcnfFormula, path: str | Path) -> None:
    """Write a DIMACS WCNF file to disk."""
    Path(path).write_text(write_wcnf(formula))
