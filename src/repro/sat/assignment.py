"""Assignment trail for the CDCL solver.

The trail records the order in which literals were assigned, together with the
decision level and the clause that implied each assignment (``None`` for
decisions).  Values are stored per-variable as ``True``/``False``/``None``.
"""

from __future__ import annotations

from repro.sat.literals import sign_of, var_of


class Trail:
    """Chronological assignment stack with per-variable metadata."""

    def __init__(self) -> None:
        self.values: list[bool | None] = [None]  # index 0 unused
        self.levels: list[int] = [0]
        self.reasons: list[object | None] = [None]
        self.trail: list[int] = []
        self.trail_limits: list[int] = []
        # Phase saving: last polarity assigned to each variable.
        self.saved_phases: list[bool] = [False]

    def grow_to(self, num_vars: int) -> None:
        """Ensure capacity for variables ``1..num_vars``."""
        while len(self.values) <= num_vars:
            self.values.append(None)
            self.levels.append(0)
            self.reasons.append(None)
            self.saved_phases.append(False)

    @property
    def decision_level(self) -> int:
        return len(self.trail_limits)

    def value_of_literal(self, literal: int) -> bool | None:
        """Return the truth value of ``literal`` under the current assignment."""
        value = self.values[var_of(literal)]
        if value is None:
            return None
        return value if sign_of(literal) else not value

    def value_of_var(self, variable: int) -> bool | None:
        return self.values[variable]

    def assign(self, literal: int, reason: object | None) -> None:
        """Push ``literal`` as true onto the trail."""
        variable = var_of(literal)
        self.values[variable] = sign_of(literal)
        self.levels[variable] = self.decision_level
        self.reasons[variable] = reason
        self.saved_phases[variable] = sign_of(literal)
        self.trail.append(literal)

    def new_decision_level(self) -> None:
        self.trail_limits.append(len(self.trail))

    def backtrack_to(self, level: int) -> list[int]:
        """Undo all assignments above ``level``; return the unassigned literals."""
        if level >= self.decision_level:
            return []
        start = self.trail_limits[level]
        undone = self.trail[start:]
        for literal in undone:
            variable = var_of(literal)
            self.values[variable] = None
            self.reasons[variable] = None
        del self.trail[start:]
        del self.trail_limits[level:]
        return undone

    def level_of_var(self, variable: int) -> int:
        return self.levels[variable]

    def reason_of_var(self, variable: int) -> object | None:
        return self.reasons[variable]

    def __len__(self) -> int:
        return len(self.trail)
