"""Model enumeration on top of the CDCL solver.

Two users inside the repository need more than a single model:

* the slicing relaxation's *backtracking* step (Section V) excludes a final
  mapping by blocking its assignment and re-solving -- exactly one iteration
  of blocking-clause enumeration;
* the optimality tests enumerate *all* optimal routings of tiny instances to
  cross-check the MaxSAT optimum against brute force.

:class:`ModelEnumerator` packages the blocking-clause loop with projection
onto a variable subset, so callers can enumerate distinct assignments of just
the variables they care about (e.g. only the ``map(q, p, k)`` variables).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Iterator

from repro.sat.solver import SatSolver, SolverStatus


@dataclass
class EnumerationStats:
    """Counters describing an enumeration run."""

    models: int = 0
    sat_calls: int = 0
    exhausted: bool = False
    elapsed: float = 0.0
    blocking_clauses: list[list[int]] = field(default_factory=list)


class ModelEnumerator:
    """Enumerate models of a CNF formula via blocking clauses.

    Parameters
    ----------
    clauses:
        The CNF formula as a list of integer clauses.
    projection:
        Optional list of variables to project onto.  When given, two models
        that agree on the projected variables are considered identical and
        only one of them is produced.
    """

    def __init__(self, clauses: list[list[int]],
                 projection: list[int] | None = None) -> None:
        self.clauses = [list(clause) for clause in clauses]
        self.projection = sorted(set(projection)) if projection else None
        self.stats = EnumerationStats()

    def __iter__(self) -> Iterator[dict[int, bool]]:
        return self.enumerate()

    def enumerate(self, limit: int | None = None,
                  time_budget: float | None = None) -> Iterator[dict[int, bool]]:
        """Yield models until exhaustion, ``limit`` models, or the budget expires."""
        start = time.monotonic()
        from repro.sat.backends import create_solver

        solver = create_solver()
        max_var = 0
        for clause in self.clauses:
            max_var = max(max_var, *(abs(literal) for literal in clause))
        solver.ensure_vars(max_var)
        for clause in self.clauses:
            solver.add_clause(clause)

        produced = 0
        while True:
            if limit is not None and produced >= limit:
                break
            remaining = None
            if time_budget is not None:
                remaining = time_budget - (time.monotonic() - start)
                if remaining <= 0:
                    break
            result = solver.solve(time_budget=remaining)
            self.stats.sat_calls += 1
            if result.status is SolverStatus.UNSAT:
                self.stats.exhausted = True
                break
            if result.status is SolverStatus.UNKNOWN:
                break
            model = dict(result.model)
            self.stats.models += 1
            produced += 1
            yield model

            blocking = self._blocking_clause(model, max_var)
            if not blocking:
                # Projection is empty or the model fixes nothing: only one
                # projected model exists.
                self.stats.exhausted = True
                break
            self.stats.blocking_clauses.append(blocking)
            solver.add_clause(blocking)
        self.stats.elapsed = time.monotonic() - start

    def count(self, limit: int | None = None,
              time_budget: float | None = None) -> int:
        """Count (projected) models, stopping at ``limit`` if given."""
        return sum(1 for _ in self.enumerate(limit=limit, time_budget=time_budget))

    def _blocking_clause(self, model: dict[int, bool], max_var: int) -> list[int]:
        variables = self.projection if self.projection is not None else range(1, max_var + 1)
        clause = []
        for variable in variables:
            value = model.get(variable, False)
            clause.append(-variable if value else variable)
        return clause


def all_models(clauses: list[list[int]], projection: list[int] | None = None,
               limit: int | None = None) -> list[dict[int, bool]]:
    """Collect every (projected) model of ``clauses`` into a list."""
    return list(ModelEnumerator(clauses, projection).enumerate(limit=limit))


def count_models(clauses: list[list[int]], projection: list[int] | None = None,
                 limit: int | None = None) -> int:
    """Count (projected) models of ``clauses``."""
    return ModelEnumerator(clauses, projection).count(limit=limit)
