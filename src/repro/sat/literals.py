"""Literal and variable conventions used throughout the SAT stack.

We follow the DIMACS convention externally (non-zero signed integers, where
``-v`` is the negation of variable ``v``) because it is what users see in CNF
files and what the MaxSAT layer manipulates.  The solver internals also work
directly on signed integers; these helpers centralise the arithmetic so the
rest of the code never hand-rolls sign manipulation.
"""

from __future__ import annotations


def lit(variable: int, positive: bool = True) -> int:
    """Return the literal for ``variable`` with the requested polarity.

    ``variable`` must be a positive integer (DIMACS variable index).
    """
    if variable <= 0:
        raise ValueError(f"variable index must be positive, got {variable}")
    return variable if positive else -variable


def neg(literal: int) -> int:
    """Return the negation of ``literal``."""
    if literal == 0:
        raise ValueError("0 is not a valid literal")
    return -literal


def var_of(literal: int) -> int:
    """Return the variable index of ``literal`` (always positive)."""
    if literal == 0:
        raise ValueError("0 is not a valid literal")
    return abs(literal)


def sign_of(literal: int) -> bool:
    """Return ``True`` for a positive literal, ``False`` for a negative one."""
    if literal == 0:
        raise ValueError("0 is not a valid literal")
    return literal > 0
