"""Boolean variable bookkeeping for the QMR encoding.

The encoding of Fig. 5 uses two families of variables:

* ``map(q, p, k)`` -- logical qubit ``q`` sits on physical qubit ``p`` right
  before the ``k``-th two-qubit gate (0-based step index here);
* ``swap(p, p', k, i)`` -- the ``i``-th SWAP slot before step ``k`` swaps the
  physical qubits ``p`` and ``p'``, with the synthetic "no-op edge"
  ``(p, p) = NOOP`` meaning no SWAP is performed in that slot.

:class:`VariableRegistry` hands out SAT variable indices for these on demand
and supports reverse lookup, which the extraction step uses to read a model
back into maps and SWAP lists.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.maxsat.wcnf import WcnfBuilder

#: Marker used as the "edge" of a no-op SWAP (the paper's synthetic edge (p0, p0)).
NOOP: tuple[int, int] = (-1, -1)


@dataclass
class VariableRegistry:
    """Allocates and indexes ``map`` and ``swap`` variables in a WCNF builder."""

    builder: WcnfBuilder
    map_vars: dict[tuple[int, int, int], int] = field(default_factory=dict)
    swap_vars: dict[tuple[tuple[int, int], int, int], int] = field(default_factory=dict)
    _reverse_map: dict[int, tuple[int, int, int]] = field(default_factory=dict)
    _reverse_swap: dict[int, tuple[tuple[int, int], int, int]] = field(default_factory=dict)

    def map_var(self, logical: int, physical: int, step: int) -> int:
        """Variable for ``map(logical, physical, step)``, creating it if needed."""
        key = (logical, physical, step)
        if key not in self.map_vars:
            variable = self.builder.new_var()
            self.map_vars[key] = variable
            self._reverse_map[variable] = key
        return self.map_vars[key]

    def swap_var(self, edge: tuple[int, int], step: int, slot: int = 0) -> int:
        """Variable for ``swap(edge, step, slot)``; ``edge`` may be :data:`NOOP`."""
        if edge != NOOP:
            edge = (min(edge), max(edge))
        key = (edge, step, slot)
        if key not in self.swap_vars:
            variable = self.builder.new_var()
            self.swap_vars[key] = variable
            self._reverse_swap[variable] = key
        return self.swap_vars[key]

    def lookup_map(self, variable: int) -> tuple[int, int, int] | None:
        """Reverse lookup: which (logical, physical, step) a variable encodes."""
        return self._reverse_map.get(variable)

    def lookup_swap(self, variable: int) -> tuple[tuple[int, int], int, int] | None:
        """Reverse lookup: which (edge, step, slot) a variable encodes."""
        return self._reverse_swap.get(variable)

    @property
    def num_map_vars(self) -> int:
        return len(self.map_vars)

    @property
    def num_swap_vars(self) -> int:
        return len(self.swap_vars)
