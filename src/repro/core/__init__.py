"""SATMAP: qubit mapping and routing via MaxSAT (the paper's contribution).

The package exposes:

* :class:`repro.core.satmap.SatMapRouter` -- the main entry point.  With
  ``slice_size=None`` it is NL-SATMAP (one monolithic MaxSAT instance); with a
  slice size it applies the locally optimal relaxation of Section V; with
  ``cyclic=True`` (via :func:`repro.core.cyclic.route_cyclic`) it applies the
  cyclic relaxation of Section VI.
* :class:`repro.core.encoder.QmrEncoder` -- the MaxSAT encoding of Fig. 5.
* :class:`repro.core.result.RoutingResult` -- mapping sequence, routed
  circuit, and cost/optimality metadata.
* :func:`repro.core.verifier.verify_routing` -- the independent verifier the
  paper uses to validate every solution.
"""

from repro.core.encoder import QmrEncoder, EncodingOptions
from repro.core.result import RoutingResult, RoutingStatus
from repro.core.satmap import SatMapRouter
from repro.core.cyclic import CyclicRouter, route_cyclic
from repro.core.noise_aware import NoiseAwareSatMapRouter
from repro.core.hybrid import HybridSatMapRouter, placement_adjacency_score
from repro.core.verifier import VerificationError, verify_routing

__all__ = [
    "SatMapRouter",
    "CyclicRouter",
    "NoiseAwareSatMapRouter",
    "HybridSatMapRouter",
    "placement_adjacency_score",
    "QmrEncoder",
    "EncodingOptions",
    "RoutingResult",
    "RoutingStatus",
    "route_cyclic",
    "verify_routing",
    "VerificationError",
]
