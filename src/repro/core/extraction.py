"""Turning a MaxSAT model back into maps, SWAPs, and a routed circuit.

Given a model of the Fig. 5 constraints, this module reads off the map
sequence and the selected SWAP per slot, completes the initial map over unused
logical/physical qubits, and rewrites the original circuit into a *physical*
circuit: every gate operates on physical qubit indices and explicit ``swap``
gates are inserted where the model placed them.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.gates import Gate
from repro.core.encoder import QmrEncoding
from repro.core.variables import NOOP


@dataclass
class ExtractedSolution:
    """Model contents in routing terms."""

    #: Map at each real step: step index -> {logical: physical}.
    step_mappings: dict[int, dict[int, int]]
    #: Selected swap per slot, in slot order: (step, slot, edge-or-None).
    slot_swaps: list[tuple[int, int, tuple[int, int] | None]]
    #: Total initial map including qubits the solver left unplaced.
    initial_mapping: dict[int, int] = field(default_factory=dict)
    final_mapping: dict[int, int] = field(default_factory=dict)

    @property
    def swap_count(self) -> int:
        return sum(1 for _, _, edge in self.slot_swaps if edge is not None)


def extract_solution(encoding: QmrEncoding, model: dict[int, bool]) -> ExtractedSolution:
    """Read maps and SWAP selections out of a satisfying model."""
    registry = encoding.registry
    step_mappings: dict[int, dict[int, int]] = {}
    for (logical, physical, step), variable in registry.map_vars.items():
        if model.get(variable, False):
            step_mappings.setdefault(step, {})[logical] = physical

    slot_swaps: list[tuple[int, int, tuple[int, int] | None]] = []
    for step, slot in encoding.swap_slots:
        chosen: tuple[int, int] | None = None
        for edge in encoding.architecture.edges:
            variable = registry.swap_vars.get((edge, step, slot))
            if variable is not None and model.get(variable, False):
                chosen = edge
                break
        if chosen is None:
            noop_variable = registry.swap_vars.get((NOOP, step, slot))
            if noop_variable is not None and not model.get(noop_variable, False):
                # Neither an edge nor the no-op is set; treat as no-op but this
                # indicates a hole in the model and the verifier will catch any
                # resulting invalid gate.
                chosen = None
        slot_swaps.append((step, slot, chosen))

    # With a leading SWAP slot, the map before any gate lives at virtual step -1.
    initial_step = -1 if -1 in step_mappings else 0
    initial = dict(step_mappings.get(initial_step, {}))
    initial = complete_mapping(initial, encoding.num_logical,
                               encoding.architecture.num_qubits)
    # The final real step is the trailing step (== len(steps)) when a cyclic /
    # trailing slot was encoded, otherwise the last gate step.  Pseudo-steps
    # used for multi-SWAP slots have indices >= 10_000 and are ignored here.
    if encoding.steps:
        last_gate_step = len(encoding.steps) - 1
        trailing = len(encoding.steps)
        final_step = trailing if trailing in step_mappings else last_gate_step
    else:
        final_step = 0
    final = dict(step_mappings.get(final_step, {}))
    final = complete_mapping(final, encoding.num_logical,
                             encoding.architecture.num_qubits)
    return ExtractedSolution(step_mappings, slot_swaps, initial, final)


def complete_mapping(partial: dict[int, int], num_logical: int,
                     num_physical: int) -> dict[int, int]:
    """Extend a partial injective map to all logical qubits deterministically."""
    mapping = dict(partial)
    used_physical = set(mapping.values())
    if len(used_physical) != len(mapping):
        raise ValueError(f"mapping is not injective: {mapping}")
    free_physical = [p for p in range(num_physical) if p not in used_physical]
    for logical in range(num_logical):
        if logical not in mapping:
            if not free_physical:
                raise ValueError("not enough physical qubits to complete the mapping")
            mapping[logical] = free_physical.pop(0)
    return mapping


def build_routed_circuit(circuit: QuantumCircuit, encoding: QmrEncoding,
                         solution: ExtractedSolution) -> QuantumCircuit:
    """Rewrite ``circuit`` onto physical qubits, inserting the selected SWAPs.

    The result acts on ``architecture.num_qubits`` physical qubits.  SWAPs for
    a step are inserted immediately before the first original gate of that
    step; the trailing slot of a cyclic encoding (if any) is appended at the
    end.
    """
    architecture = encoding.architecture
    routed = QuantumCircuit(architecture.num_qubits, name=f"{circuit.name}@{architecture.name}")
    current = dict(solution.initial_mapping)

    swaps_by_step: dict[int, list[tuple[int, int]]] = {}
    for step, slot, edge in solution.slot_swaps:
        if edge is not None:
            swaps_by_step.setdefault(step, []).append(edge)

    def apply_swap(edge: tuple[int, int]) -> None:
        physical_a, physical_b = edge
        logical_on_a = _logical_at(current, physical_a)
        logical_on_b = _logical_at(current, physical_b)
        if logical_on_a is not None:
            current[logical_on_a] = physical_b
        if logical_on_b is not None:
            current[logical_on_b] = physical_a
        routed.append(Gate("swap", (physical_a, physical_b)))

    emitted_steps: set[int] = set()
    two_qubit_index = 0
    for gate in circuit.gates:
        if gate.is_two_qubit:
            step = encoding.step_of_gate[two_qubit_index]
            two_qubit_index += 1
            if step not in emitted_steps:
                emitted_steps.add(step)
                for edge in swaps_by_step.get(step, []):
                    apply_swap(edge)
        routed.append(Gate(gate.name, tuple(current[q] for q in gate.qubits), gate.params))

    # Trailing slot (cyclic closure) uses step index == len(steps).
    trailing_step = len(encoding.steps)
    for edge in swaps_by_step.get(trailing_step, []):
        apply_swap(edge)

    solution.final_mapping = dict(current)
    return routed


def _logical_at(mapping: dict[int, int], physical: int) -> int | None:
    for logical, position in mapping.items():
        if position == physical:
            return logical
    return None
