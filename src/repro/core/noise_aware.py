"""Noise-aware SATMAP (the Q6 experiment).

Weighted MaxSAT generalises the objective from "fewest SWAPs" to "highest
estimated fidelity": each soft clause is weighted by the log-infidelity of the
operation it disables, so maximising the total satisfied weight maximises the
product of gate fidelities.  :class:`NoiseAwareSatMapRouter` is a thin wrapper
around :class:`~repro.core.satmap.SatMapRouter` that installs a noise model
and reports the estimated fidelity of the routed circuit in
``RoutingResult.objective_value``.

The noise model can be given two ways:

* an explicit :class:`~repro.hardware.noise.NoiseModel` (the historical
  constructor signature), or
* a named *profile* (``noise="uniform"`` or ``"synthetic"``) with scalar
  parameters, materialised lazily against whatever architecture each
  ``route`` call targets.  Profiles are what make the router constructible
  from a declarative :class:`~repro.api.RouterSpec` -- plain scalars cross
  process boundaries and hash into cache keys; a ``NoiseModel`` object does
  not.
"""

from __future__ import annotations

from repro.circuits.circuit import QuantumCircuit
from repro.core.result import RoutingResult
from repro.core.satmap import SatMapRouter
from repro.hardware.architecture import Architecture
from repro.hardware.noise import NoiseModel

#: Profiles materialisable per architecture from scalar options alone.
NOISE_PROFILES = ("uniform", "synthetic")


class NoiseAwareSatMapRouter(SatMapRouter):
    """SATMAP with the weighted (fidelity-maximising) objective."""

    def __init__(self, noise_model: NoiseModel | None = None,
                 slice_size: int | None = None, time_budget: float = 60.0,
                 noise: str = "uniform", two_qubit_error: float = 0.02,
                 single_qubit_error: float = 0.001, seed: int = 2019,
                 **kwargs) -> None:
        if noise_model is None and noise not in NOISE_PROFILES:
            raise ValueError(f"unknown noise profile {noise!r}; "
                             f"expected one of {NOISE_PROFILES}")
        super().__init__(
            slice_size=slice_size,
            time_budget=time_budget,
            noise_model=noise_model,
            name=kwargs.pop("name", "SATMAP-noise"),
            **kwargs,
        )
        self.noise_profile = None if noise_model is not None else noise
        self.two_qubit_error = two_qubit_error
        self.single_qubit_error = single_qubit_error
        self.noise_seed = seed

    def _route(self, circuit: QuantumCircuit, architecture: Architecture,
               deadline: float) -> RoutingResult:
        if self.noise_profile is not None:
            # Lazily (re)build the profile against the call's architecture so
            # one router instance serves any device.
            if (self.noise_model is None
                    or self.noise_model.architecture is not architecture):
                self.noise_model = self._materialise(architecture)
        return super()._route(circuit, architecture, deadline)

    def _materialise(self, architecture: Architecture) -> NoiseModel:
        if self.noise_profile == "synthetic":
            return NoiseModel.synthetic(architecture, seed=self.noise_seed)
        return NoiseModel.uniform(architecture,
                                  two_qubit_error=self.two_qubit_error,
                                  single_qubit_error=self.single_qubit_error)
