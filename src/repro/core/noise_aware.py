"""Noise-aware SATMAP (the Q6 experiment).

Weighted MaxSAT generalises the objective from "fewest SWAPs" to "highest
estimated fidelity": each soft clause is weighted by the log-infidelity of the
operation it disables, so maximising the total satisfied weight maximises the
product of gate fidelities.  :class:`NoiseAwareSatMapRouter` is a thin wrapper
around :class:`~repro.core.satmap.SatMapRouter` that installs a noise model
and reports the estimated fidelity of the routed circuit in
``RoutingResult.objective_value``.
"""

from __future__ import annotations

from repro.core.satmap import SatMapRouter
from repro.hardware.noise import NoiseModel


class NoiseAwareSatMapRouter(SatMapRouter):
    """SATMAP with the weighted (fidelity-maximising) objective."""

    def __init__(self, noise_model: NoiseModel, slice_size: int | None = None,
                 time_budget: float = 60.0, **kwargs) -> None:
        super().__init__(
            slice_size=slice_size,
            time_budget=time_budget,
            noise_model=noise_model,
            name=kwargs.pop("name", "SATMAP-noise"),
            **kwargs,
        )
