"""The locally optimal relaxation (Section V): circuit slicing with backtracking.

The circuit is cut into consecutive slices of ``slice_size`` two-qubit gates.
Slice 0 is solved exactly as in the monolithic encoding.  Every later slice is
solved with its initial map pinned to the previous slice's final map (the
paper's step 2), and with a SWAP slot before its first gate so it can still
move qubits if the inherited map does not suit its first gate.  If a slice's
constraints are unsatisfiable -- possible whenever ``swaps_per_gate`` is below
the graph diameter -- we *backtrack*: the previous slice's final mapping is
excluded by a new hard clause (the negation of its assignment) and the
previous slice is re-solved, exactly as described in Section V.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.circuits.circuit import QuantumCircuit
from repro.core.result import RoutingResult, RoutingStatus
from repro.core.satmap import MonolithicOutcome, SliceContext
from repro.hardware.architecture import Architecture
from repro.obs import trace as obs_trace

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers only
    from repro.core.satmap import SatMapRouter


@dataclass
class SliceState:
    """Bookkeeping for one slice during the iterative solve."""

    index: int
    circuit: QuantumCircuit
    outcome: MonolithicOutcome | None = None
    #: Final mappings excluded by backtracking (the negation of each becomes a
    #: hard clause when the slice is re-solved).
    excluded_final_mappings: list[dict[int, int]] = field(default_factory=list)
    #: SWAP slots granted to the leading transition (escalated on failure).
    leading_slots: int = 1
    #: SWAP slots per gate inside the slice (escalated as a last resort).
    swaps_per_gate: int | None = None
    #: Persistent solve context (incremental mode): one live session per
    #: slice, so backtracking re-solves stream only the new exclusion clause
    #: and swap the initial-map assumptions instead of re-encoding.
    context: SliceContext | None = None


def route_sliced(circuit: QuantumCircuit, architecture: Architecture,
                 router: "SatMapRouter") -> RoutingResult:
    """Apply the locally optimal relaxation with the router's configuration.

    The solve order follows Section V: solve slices left to right, pinning
    each slice's initial map to its predecessor's final map, and backtrack
    (exclude the predecessor's mapping and re-solve it) when a slice is
    unsatisfiable.  Once the backtracking budget is spent we escalate instead
    of failing: first the unsatisfiable slice's leading transition is granted
    more SWAP slots (up to the graph diameter, which always suffices to repair
    its first gate), then its per-gate slot count is raised.  Escalation keeps
    the relaxation complete without changing its locally-optimal character.
    """
    start = time.monotonic()
    diameter = max(1, architecture.diameter())
    slices = [SliceState(index, sub, leading_slots=router.swaps_per_gate,
                         swaps_per_gate=None)
              for index, sub
              in enumerate(circuit.sliced_by_two_qubit_gates(router.slice_size))]
    pipeline = None
    if router.pipeline_slices and router.incremental and len(slices) > 1:
        from repro.parallel.pipeline import SlicePipeline

        pipeline = SlicePipeline(router, architecture)
    try:
        backtracks = 0
        index = 0
        while index < len(slices):
            remaining = router.time_budget - (time.monotonic() - start)
            if remaining <= 0:
                return _timeout_result(router, circuit, slices, backtracks)
            state = slices[index]
            if pipeline is not None and index + 1 < len(slices):
                # Overlap: the successor's encoding streams in a worker while
                # this slice runs its SAT search.
                pipeline.prefetch(slices[index + 1])
            if pipeline is not None and index > 0 and state.context is None:
                state.context = pipeline.take(
                    state, timeout=min(remaining, SlicePipeline.TAKE_TIMEOUT))
            fixed = None
            if index > 0:
                previous = slices[index - 1].outcome
                assert previous is not None and previous.result.solved
                fixed = previous.result.final_mapping
            cubed = (index == 0 and router.cube_workers
                     and state.circuit.num_two_qubit_gates > 0)
            with obs_trace.span("slice", slice=state.index,
                                backtracks=backtracks) as slice_span:
                if cubed:
                    from repro.parallel.cubes import solve_cubed

                    outcome = solve_cubed(
                        router, state.circuit, architecture, remaining,
                        excluded_final_mappings=state.excluded_final_mappings,
                        swaps_per_gate=state.swaps_per_gate,
                    )
                else:
                    outcome = router.solve_monolithic(
                        state.circuit, architecture, remaining,
                        fixed_initial_mapping=fixed,
                        excluded_final_mappings=state.excluded_final_mappings,
                        leading_slots=state.leading_slots if index > 0 else None,
                        swaps_per_gate=state.swaps_per_gate,
                        context=state.context,
                    )
                slice_span.set(status=outcome.result.status.value,
                               swaps=outcome.result.swap_count)
            state.context = outcome.context
            if outcome.result.solved:
                state.outcome = outcome
                index += 1
                continue
            if outcome.result.status is RoutingStatus.TIMEOUT:
                return _timeout_result(router, circuit, slices, backtracks)

            # UNSAT.  Prefer the paper's backtracking; escalate once spent.
            # Backtracking leaves pre-built successor encodings valid (they
            # are map-independent); only the escalations below change a
            # slice's encoding shape and must invalidate its prefetch.
            if index > 0 and backtracks < router.backtrack_limit:
                backtracks += 1
                previous_state = slices[index - 1]
                previous_outcome = previous_state.outcome
                assert previous_outcome is not None
                previous_state.excluded_final_mappings.append(
                    dict(previous_outcome.result.final_mapping))
                previous_state.outcome = None
                state.outcome = None
                index -= 1
                continue
            if index > 0 and state.leading_slots < diameter:
                state.leading_slots = min(diameter, state.leading_slots * 2)
                if pipeline is not None:
                    pipeline.invalidate(state.index)
                continue
            current_swaps = state.swaps_per_gate or router.swaps_per_gate
            if current_swaps < diameter:
                state.swaps_per_gate = min(diameter, current_swaps + 1)
                if pipeline is not None:
                    pipeline.invalidate(state.index)
                continue
            result = outcome.result
            result.backtracks = backtracks
            result.num_slices = len(slices)
            return result

        result = _stitch(router, circuit, architecture, slices, backtracks,
                         time.monotonic() - start)
        if pipeline is not None:
            result.solver_stats = dict(result.solver_stats)
            result.solver_stats["pipeline_prebuilt"] = pipeline.prebuilt_used
            result.solver_stats["pipeline_invalidated"] = pipeline.invalidated
            result.notes += (
                f"; pipeline: {pipeline.prebuilt_used} slices pre-encoded, "
                f"{pipeline.invalidated} invalidated"
                if pipeline.enabled else "; pipeline unavailable (no process pool)")
        return result
    finally:
        if pipeline is not None:
            pipeline.close()


def _stitch(router: "SatMapRouter", circuit: QuantumCircuit,
            architecture: Architecture, slices: list[SliceState],
            backtracks: int, elapsed: float) -> RoutingResult:
    """Concatenate per-slice routed circuits into the full solution."""
    routed = QuantumCircuit(architecture.num_qubits,
                            name=f"{circuit.name}@{architecture.name}")
    total_swaps = 0
    total_sat_calls = 0
    total_vars = 0
    total_hard = 0
    total_soft = 0
    all_optimal = True
    stage_timings: dict[str, float] = {}
    clauses_streamed = 0
    learnt_retained = 0
    solver_stats: dict[str, int] = {}
    for state in slices:
        outcome = state.outcome
        assert outcome is not None and outcome.result.routed_circuit is not None
        routed.extend(outcome.result.routed_circuit)  # array-level bulk copy
        total_swaps += outcome.result.swap_count
        total_sat_calls += outcome.result.sat_calls
        total_vars += outcome.result.num_variables
        total_hard += outcome.result.num_hard_clauses
        total_soft += outcome.result.num_soft_clauses
        all_optimal = all_optimal and outcome.result.optimal
        for stage, seconds in outcome.result.stage_timings.items():
            stage_timings[stage] = stage_timings.get(stage, 0.0) + seconds
        clauses_streamed += outcome.result.clauses_streamed
        learnt_retained += outcome.result.learnt_clauses_retained
        for counter, value in outcome.result.solver_stats.items():
            if counter == "backend":
                previous = solver_stats.get("backend")
                solver_stats["backend"] = (value if previous in (None, value)
                                           else "mixed")
            else:
                solver_stats[counter] = solver_stats.get(counter, 0) + int(value)

    first = slices[0].outcome
    last = slices[-1].outcome
    assert first is not None and last is not None
    objective_value = None
    if router.noise_model is not None:
        from repro.core.satmap import _routed_fidelity

        objective_value = _routed_fidelity(routed, router.noise_model)
    return RoutingResult(
        objective_value=objective_value,
        status=RoutingStatus.FEASIBLE,
        router_name=router.name,
        circuit_name=circuit.name,
        initial_mapping=first.result.initial_mapping,
        final_mapping=last.result.final_mapping,
        routed_circuit=routed,
        swap_count=total_swaps,
        solve_time=elapsed,
        sat_calls=total_sat_calls,
        optimal=False,  # local optimality only; never claim global optimality
        num_variables=total_vars,
        num_hard_clauses=total_hard,
        num_soft_clauses=total_soft,
        num_slices=len(slices),
        backtracks=backtracks,
        notes="locally optimal (sliced)" if all_optimal else "sliced, some slices anytime",
        stage_timings=stage_timings,
        clauses_streamed=clauses_streamed,
        learnt_clauses_retained=learnt_retained,
        solver_stats=solver_stats,
    )


def _timeout_result(router: "SatMapRouter", circuit: QuantumCircuit,
                    slices: list[SliceState], backtracks: int) -> RoutingResult:
    return RoutingResult(
        status=RoutingStatus.TIMEOUT,
        router_name=router.name,
        circuit_name=circuit.name,
        num_slices=len(slices),
        backtracks=backtracks,
        notes="time budget exhausted before all slices were solved",
    )
