"""The cyclic-circuit relaxation (Section VI).

For circuits made of a repeated block (QAOA being the canonical example), the
relaxation solves the QMR constraints only for one block, with the additional
hard constraint that the final map equals the initial map.  The routed block
can then be stitched end-to-end any number of times: because the map returns
to its starting point, the copies compose without any extra routing.

:func:`route_cyclic` implements that recipe and returns a result for the full
repeated circuit.  When the block itself is too large for a monolithic solve,
``fallback_reset=True`` (default) routes the block with the locally optimal
relaxation instead and appends an explicitly computed SWAP sequence that
restores the initial mapping (a greedy token-swapping pass over the coupling
graph), preserving the "final map == initial map" property the stitching step
relies on.
"""

from __future__ import annotations

import time

from repro.api.protocol import BaseRouter
from repro.circuits.circuit import QuantumCircuit
from repro.core.result import RoutingResult
from repro.core.satmap import SatMapRouter
from repro.core.verifier import verify_routing
from repro.hardware.architecture import Architecture


def route_cyclic(
    block: QuantumCircuit,
    cycles: int,
    architecture: Architecture,
    router: SatMapRouter | None = None,
    prelude: QuantumCircuit | None = None,
    fallback_reset: bool = True,
    verify: bool = True,
) -> RoutingResult:
    """Route ``prelude + block * cycles`` using the cyclic relaxation.

    Parameters
    ----------
    block:
        The repeating subcircuit (one QAOA cycle, for instance).
    cycles:
        How many times the block repeats.
    router:
        The SATMAP configuration to use for the block; a default router with a
        60 s budget is created when omitted.
    prelude:
        Optional gates executed once before the first block (the Hadamard
        layer of QAOA).  Only single-qubit gates are allowed there, as they
        are irrelevant to routing.
    fallback_reset:
        If the cyclic MaxSAT solve fails within the budget, route the block
        without the closure constraint and restore the initial map with
        explicit SWAPs computed by token swapping.
    """
    if cycles <= 0:
        raise ValueError("cycles must be positive")
    if prelude is not None and prelude.num_two_qubit_gates:
        raise ValueError("the prelude may only contain single-qubit gates")
    router = router or SatMapRouter(name="CYC-SATMAP")
    start = time.monotonic()

    outcome = router.solve_monolithic(block, architecture, router.time_budget,
                                      cyclic=True)
    block_result = outcome.result
    used_fallback = False
    if not block_result.solved and fallback_reset:
        used_fallback = True
        # The cyclic attempt already consumed part of the budget; the
        # fallback solve gets only what is left, so the whole call stays
        # within router.time_budget instead of up to twice it.
        remaining = max(0.001, router.time_budget - (time.monotonic() - start))
        block_result = _route_block_with_reset(block, architecture, router,
                                               time_budget=remaining)

    if not block_result.solved:
        block_result.router_name = "CYC-" + router.name.removeprefix("CYC-")
        block_result.circuit_name = f"{block.name}x{cycles}"
        block_result.solve_time = time.monotonic() - start
        return block_result

    full_original = _compose_original(block, cycles, prelude)
    routed = QuantumCircuit(architecture.num_qubits,
                            name=f"{full_original.name}@{architecture.name}")
    initial_mapping = block_result.initial_mapping
    if prelude is not None:
        for name, qubits, params in prelude.iter_ops():
            routed.append_op(name, tuple(initial_mapping[q] for q in qubits),
                             params)
    assert block_result.routed_circuit is not None
    for _ in range(cycles):
        routed.extend(block_result.routed_circuit)  # array-level bulk copy

    result = RoutingResult(
        status=block_result.status,
        router_name="CYC-" + router.name.removeprefix("CYC-"),
        circuit_name=full_original.name,
        initial_mapping=initial_mapping,
        final_mapping=dict(initial_mapping),
        routed_circuit=routed,
        swap_count=block_result.swap_count * cycles,
        solve_time=time.monotonic() - start,
        sat_calls=block_result.sat_calls,
        optimal=False,  # optimal for the block, not for the repeated circuit
        num_variables=block_result.num_variables,
        num_hard_clauses=block_result.num_hard_clauses,
        num_soft_clauses=block_result.num_soft_clauses,
        num_slices=block_result.num_slices,
        backtracks=block_result.backtracks,
        notes=("cyclic relaxation with token-swap reset" if used_fallback
               else "cyclic relaxation"),
        stage_timings=dict(block_result.stage_timings),
        clauses_streamed=block_result.clauses_streamed,
        learnt_clauses_retained=block_result.learnt_clauses_retained,
    )
    if verify:
        verify_routing(full_original, routed, initial_mapping, architecture)
    return result


class CyclicRouter(BaseRouter):
    """The cyclic relaxation as a spec-constructible :class:`Router`.

    Treats the input circuit as the repeating block: ``route`` returns the
    routed ``block * cycles`` (with the final map equal to the initial map,
    so the copies compose swap-free).  With the default ``cycles=1`` this is
    simply routing under the closure constraint, which makes the router a
    drop-in portfolio entrant.  All options are scalars, so the registry can
    build it from ``"cyclic:cycles=4"`` and jobs hash deterministically.
    """

    name = "CYC-SATMAP"

    def __init__(self, cycles: int = 1, time_budget: float = 60.0,
                 slice_size: int | None = None, swaps_per_gate: int = 1,
                 fallback_reset: bool = True, strategy: str = "linear",
                 incremental: bool = True, verify: bool = True,
                 solver_backend: str | None = None) -> None:
        if cycles <= 0:
            raise ValueError("cycles must be positive")
        super().__init__(time_budget=time_budget, verify=verify)
        self.cycles = cycles
        self.slice_size = slice_size
        self.swaps_per_gate = swaps_per_gate
        self.fallback_reset = fallback_reset
        self.strategy = strategy
        self.incremental = incremental
        self.solver_backend = solver_backend

    def _route(self, circuit: QuantumCircuit, architecture: Architecture,
               deadline: float) -> RoutingResult:
        inner = SatMapRouter(slice_size=self.slice_size,
                             swaps_per_gate=self.swaps_per_gate,
                             time_budget=self.time_budget,
                             strategy=self.strategy,
                             incremental=self.incremental,
                             solver_backend=self.solver_backend,
                             verify=False, name=self.name)
        # route_cyclic verifies against the *composed* circuit when asked;
        # BaseRouter._verify is overridden below to do the same.
        return route_cyclic(circuit, self.cycles, architecture, router=inner,
                            fallback_reset=self.fallback_reset, verify=False)

    def _circuit_label(self, circuit: QuantumCircuit) -> str:
        return (circuit.name if self.cycles == 1
                else f"{circuit.name}_x{self.cycles}")

    def _verify(self, circuit: QuantumCircuit, architecture: Architecture,
                result: RoutingResult) -> None:
        reference = _compose_original(circuit, self.cycles, None)
        verify_routing(reference, result.routed_circuit, result.initial_mapping,
                       architecture)


def _compose_original(block: QuantumCircuit, cycles: int,
                      prelude: QuantumCircuit | None) -> QuantumCircuit:
    name = f"{block.name}_x{cycles}"
    full = QuantumCircuit(block.num_qubits, name=name)
    if prelude is not None:
        full.extend(prelude)
    for _ in range(cycles):
        full.extend(block)
    return full


def _route_block_with_reset(block: QuantumCircuit, architecture: Architecture,
                            router: SatMapRouter,
                            time_budget: float | None = None) -> RoutingResult:
    """Route the block normally, then append SWAPs restoring the initial map.

    ``time_budget`` caps this solve (the caller passes its remaining time);
    the router's own budget is restored afterwards.
    """
    original_budget = router.time_budget
    if time_budget is not None:
        router.time_budget = time_budget
    try:
        base = router.route(block, architecture)
    finally:
        router.time_budget = original_budget
    if not base.solved or base.routed_circuit is None:
        return base
    reset_edges = reset_swap_sequence(base.initial_mapping, base.final_mapping,
                                      architecture)
    routed = base.routed_circuit.copy()
    for edge in reset_edges:
        routed.append_op("swap", edge)
    base.routed_circuit = routed
    base.swap_count += len(reset_edges)
    base.final_mapping = dict(base.initial_mapping)
    base.notes = "block routed with reset swaps"
    return base


def reset_swap_sequence(initial_mapping: dict[int, int],
                        final_mapping: dict[int, int],
                        architecture: Architecture) -> list[tuple[int, int]]:
    """SWAPs (as physical edges) that turn ``final_mapping`` back into ``initial_mapping``.

    Greedy token swapping: repeatedly pick a logical qubit that is not yet at
    its target physical position and move it one step along a shortest path,
    preferring swaps that also help the qubit currently occupying that step.
    """
    current = dict(final_mapping)
    target = dict(initial_mapping)
    physical_of = dict(current)
    swaps: list[tuple[int, int]] = []
    guard = 0
    limit = 4 * architecture.num_qubits ** 2
    while physical_of != target:
        guard += 1
        if guard > limit:
            raise RuntimeError("token swapping failed to converge")
        progressed = False
        for logical in sorted(target):
            if physical_of.get(logical) == target[logical]:
                continue
            source = physical_of[logical]
            destination = target[logical]
            path = architecture.shortest_path(source, destination)
            next_position = path[1]
            swaps.append((min(source, next_position), max(source, next_position)))
            occupant = _logical_at(physical_of, next_position)
            physical_of[logical] = next_position
            if occupant is not None:
                physical_of[occupant] = source
            progressed = True
            break
        if not progressed:
            break
    return swaps


def _logical_at(mapping: dict[int, int], physical: int) -> int | None:
    for logical, position in mapping.items():
        if position == physical:
            return logical
    return None
