"""The SATMAP router.

:class:`SatMapRouter` is the main entry point of the library, mirroring the
paper's tool of the same name:

* with ``slice_size=None`` it encodes the whole circuit as one MaxSAT instance
  (the paper's NL-SATMAP configuration);
* with a ``slice_size`` it applies the locally optimal relaxation of Section V
  (implemented in :mod:`repro.core.slicing`);
* :func:`repro.core.cyclic.route_cyclic` layers the cyclic relaxation of
  Section VI on top.

The ``time_budget`` plays the role of the paper's 30-minute compilation
budget: the MaxSAT search is anytime, so when the budget expires the best
model found so far is extracted and reported as a feasible (non-optimal)
solution.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.circuits.circuit import QuantumCircuit
from repro.core.encoder import EncodingOptions, QmrEncoder, QmrEncoding
from repro.core.extraction import build_routed_circuit, extract_solution
from repro.core.result import RoutingResult, RoutingStatus
from repro.core.verifier import verify_routing
from repro.hardware.architecture import Architecture
from repro.hardware.noise import NoiseModel
from repro.maxsat.solver import MaxSatSolver, MaxSatStatus


@dataclass
class MonolithicOutcome:
    """Result of solving one (sub)circuit's encoding, before stitching."""

    result: RoutingResult
    encoding: QmrEncoding | None = None
    model: dict[int, bool] | None = None


class SatMapRouter:
    """Qubit mapping and routing via MaxSAT.

    Parameters
    ----------
    slice_size:
        Number of two-qubit gates per slice for the locally optimal
        relaxation; ``None`` disables slicing (NL-SATMAP).
    swaps_per_gate:
        The paper's ``n``: SWAP slots available before each two-qubit gate.
    time_budget:
        Wall-clock budget in seconds for the whole routing call.
    strategy:
        MaxSAT strategy, ``"linear"`` (anytime, default) or ``"core-guided"``.
    backtrack_limit:
        Maximum number of backtracking steps the local relaxation may take.
    noise_model:
        When provided, soft clauses are weighted by gate fidelities (Q6).
    verify:
        Run the independent verifier on every produced solution (default on).
    """

    def __init__(
        self,
        slice_size: int | None = None,
        swaps_per_gate: int = 1,
        time_budget: float = 60.0,
        strategy: str = "linear",
        backtrack_limit: int = 10,
        collapse_repeated_pairs: bool = True,
        noise_model: NoiseModel | None = None,
        verify: bool = True,
        name: str | None = None,
    ) -> None:
        if slice_size is not None and slice_size <= 0:
            raise ValueError("slice_size must be positive or None")
        if time_budget <= 0:
            raise ValueError("time_budget must be positive")
        self.slice_size = slice_size
        self.swaps_per_gate = swaps_per_gate
        self.time_budget = time_budget
        self.strategy = strategy
        self.backtrack_limit = backtrack_limit
        self.collapse_repeated_pairs = collapse_repeated_pairs
        self.noise_model = noise_model
        self.verify = verify
        self.name = name or ("SATMAP" if slice_size is not None else "NL-SATMAP")

    # ------------------------------------------------------------------ API

    def route(self, circuit: QuantumCircuit, architecture: Architecture) -> RoutingResult:
        """Map and route ``circuit`` onto ``architecture``."""
        start = time.monotonic()
        try:
            if self.slice_size is None or circuit.num_two_qubit_gates <= self.slice_size:
                outcome = self.solve_monolithic(circuit, architecture, self.time_budget)
                result = outcome.result
            else:
                from repro.core.slicing import route_sliced

                result = route_sliced(circuit, architecture, self)
        except Exception as error:  # pragma: no cover - defensive reporting
            return RoutingResult(
                status=RoutingStatus.ERROR,
                router_name=self.name,
                circuit_name=circuit.name,
                solve_time=time.monotonic() - start,
                notes=f"{type(error).__name__}: {error}",
            )
        result.solve_time = time.monotonic() - start
        result.router_name = self.name
        result.circuit_name = circuit.name
        if result.solved and self.verify and result.routed_circuit is not None:
            verify_routing(circuit, result.routed_circuit, result.initial_mapping,
                           architecture)
        return result

    # ------------------------------------------------------------ internals

    def encoding_options(self, fixed_initial_mapping: dict[int, int] | None = None,
                         cyclic: bool = False,
                         leading_swap_slot: bool | None = None,
                         leading_slots: int | None = None,
                         swaps_per_gate: int | None = None) -> EncodingOptions:
        """The :class:`EncodingOptions` matching this router's configuration."""
        if leading_swap_slot is None:
            leading_swap_slot = fixed_initial_mapping is not None
        return EncodingOptions(
            swaps_per_gate=swaps_per_gate or self.swaps_per_gate,
            collapse_repeated_pairs=self.collapse_repeated_pairs,
            leading_swap_slot=leading_swap_slot,
            leading_slots=leading_slots,
            cyclic=cyclic,
            fixed_initial_mapping=fixed_initial_mapping,
            noise_model=self.noise_model,
        )

    def solve_monolithic(
        self,
        circuit: QuantumCircuit,
        architecture: Architecture,
        time_budget: float,
        fixed_initial_mapping: dict[int, int] | None = None,
        cyclic: bool = False,
        excluded_final_mappings: list[dict[int, int]] | None = None,
        leading_slots: int | None = None,
        swaps_per_gate: int | None = None,
    ) -> MonolithicOutcome:
        """Encode and solve one circuit as a single MaxSAT instance.

        ``excluded_final_mappings`` lists final maps that must not be returned
        again; the local relaxation uses it to implement backtracking (each
        entry becomes the negation of that mapping's assignment, Example 10).
        """
        options = self.encoding_options(fixed_initial_mapping, cyclic,
                                        leading_slots=leading_slots,
                                        swaps_per_gate=swaps_per_gate)
        encoder = QmrEncoder(architecture, options)
        encoding = encoder.encode(circuit)
        final_step = len(encoding.steps) - 1 if encoding.steps else 0
        for mapping in excluded_final_mappings or []:
            clause = [-variable for (logical, physical) in mapping.items()
                      if (variable := encoding.registry.map_vars.get(
                          (logical, physical, final_step))) is not None]
            if clause:
                encoding.builder.add_hard(clause)

        solver = MaxSatSolver(self.strategy)
        maxsat_result = solver.solve(encoding.builder, time_budget=time_budget)

        base = RoutingResult(
            status=RoutingStatus.TIMEOUT,
            router_name=self.name,
            circuit_name=circuit.name,
            sat_calls=maxsat_result.sat_calls,
            num_variables=encoding.num_variables,
            num_hard_clauses=encoding.num_hard_clauses,
            num_soft_clauses=encoding.num_soft_clauses,
        )
        if maxsat_result.status is MaxSatStatus.UNSATISFIABLE:
            base.status = RoutingStatus.UNSATISFIABLE
            return MonolithicOutcome(base, encoding, None)
        if not maxsat_result.has_model:
            return MonolithicOutcome(base, encoding, None)

        solution = extract_solution(encoding, maxsat_result.model)
        routed = build_routed_circuit(circuit, encoding, solution)
        base.status = (RoutingStatus.OPTIMAL if maxsat_result.is_optimal
                       else RoutingStatus.FEASIBLE)
        base.optimal = maxsat_result.is_optimal
        base.initial_mapping = solution.initial_mapping
        base.final_mapping = solution.final_mapping
        base.routed_circuit = routed
        base.swap_count = solution.swap_count
        if self.noise_model is not None:
            base.objective_value = _routed_fidelity(routed, self.noise_model)
        return MonolithicOutcome(base, encoding, maxsat_result.model)


def _routed_fidelity(routed: QuantumCircuit, noise: NoiseModel) -> float:
    """Estimated success probability of a routed circuit under ``noise``."""
    executed_edges: list[tuple[int, int]] = []
    for gate in routed.gates:
        if not gate.is_two_qubit:
            continue
        edge = (gate.qubits[0], gate.qubits[1])
        repetitions = 3 if gate.name == "swap" else 1
        executed_edges.extend([edge] * repetitions)
    return noise.circuit_fidelity(executed_edges)
