"""The SATMAP router.

:class:`SatMapRouter` is the main entry point of the library, mirroring the
paper's tool of the same name:

* with ``slice_size=None`` it encodes the whole circuit as one MaxSAT instance
  (the paper's NL-SATMAP configuration);
* with a ``slice_size`` it applies the locally optimal relaxation of Section V
  (implemented in :mod:`repro.core.slicing`);
* :func:`repro.core.cyclic.route_cyclic` layers the cyclic relaxation of
  Section VI on top.

The ``time_budget`` plays the role of the paper's 30-minute compilation
budget: the MaxSAT search is anytime, so when the budget expires the best
model found so far is extracted and reported as a feasible (non-optimal)
solution.

Solving is *incremental* by default: each (sub)circuit encoding streams into
a persistent :class:`~repro.sat.session.SatSession` and the resulting
:class:`SliceContext` can be handed back to :meth:`SatMapRouter.solve_monolithic`
to re-solve the same encoding -- with extra excluded final mappings, or under
a different inherited initial map expressed as assumptions -- without
re-encoding and without losing what the SAT solver has learnt.  Set
``incremental=False`` to restore the historical rebuild-everything behaviour
(the benchmark uses this as its from-scratch arm).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.api.protocol import BaseRouter
from repro.circuits.circuit import QuantumCircuit
from repro.obs import trace as obs_trace
from repro.core.encoder import EncodingOptions, QmrEncoder, QmrEncoding
from repro.core.extraction import build_routed_circuit, extract_solution
from repro.core.result import RoutingResult, RoutingStatus
from repro.hardware.architecture import Architecture
from repro.hardware.noise import NoiseModel
from repro.maxsat.solver import MaxSatSolver, MaxSatStatus
from repro.sat.session import SatSession


@dataclass
class SliceContext:
    """Reusable solve state for one (sub)circuit encoding.

    Bundles the persistent session, the encoding built on top of it, and the
    MaxSAT facade whose relaxation state (selectors, bound totalizer) is tied
    to both.  A context is only reusable for the *same* slot configuration;
    escalation (more leading slots, more swaps per gate) changes the encoding
    shape and forces a rebuild.
    """

    session: SatSession
    encoding: QmrEncoding
    maxsat: MaxSatSolver
    #: Identity of the instance the encoding was built for (circuit
    #: interactions + architecture); reuse with anything else is refused.
    instance_key: tuple = ()
    #: The excluded final mappings already streamed into the session, in
    #: order.  Exclusion clauses are permanent, so a reuse request must
    #: *extend* this list; anything else gets a fresh context.
    excluded: list[dict[int, int]] = field(default_factory=list)
    leading_slots: int | None = None
    swaps_per_gate: int | None = None
    cyclic: bool = False
    solves: int = 0

    @property
    def excluded_count(self) -> int:
        return len(self.excluded)

    def matches(self, instance_key: tuple, leading_slots: int | None,
                swaps_per_gate: int | None, cyclic: bool,
                fixed_initial_mapping: dict[int, int] | None,
                excluded_final_mappings: list[dict[int, int]]) -> bool:
        """Whether this context can solve the requested configuration."""
        if not self.session.ok:
            return False  # the streamed formula went root-UNSAT; start over
        if self.instance_key != instance_key:
            return False  # a context never answers for a different instance
        if excluded_final_mappings[:len(self.excluded)] != self.excluded:
            # Already-streamed exclusions are permanent; a request that does
            # not extend them needs a clean session.
            return False
        if (self.leading_slots != leading_slots
                or self.swaps_per_gate != swaps_per_gate
                or self.cyclic != cyclic):
            return False
        # A pinned initial map is only re-expressible if the encoding pins
        # via assumptions (it always does in incremental mode when built with
        # a fixed map; a context built without one cannot suddenly pin).
        if fixed_initial_mapping is not None:
            return self.encoding.options.pin_initial_via_assumptions
        return self.encoding.options.fixed_initial_mapping is None


@dataclass
class MonolithicOutcome:
    """Result of solving one (sub)circuit's encoding, before stitching."""

    result: RoutingResult
    encoding: QmrEncoding | None = None
    model: dict[int, bool] | None = None
    #: Present in incremental mode: hand it back to ``solve_monolithic`` to
    #: re-solve this encoding without rebuilding.
    context: SliceContext | None = None
    #: The MaxSAT objective value of ``model`` (== swap count unweighted);
    #: ``-1`` when no model was found.  Cube racers compare on this.
    maxsat_cost: int = -1
    #: True when an external incumbent bound clipped the solve (see
    #: :class:`repro.maxsat.solver.MaxSatResult.pruned`).
    pruned: bool = False


class SatMapRouter(BaseRouter):
    """Qubit mapping and routing via MaxSAT.

    Parameters
    ----------
    slice_size:
        Number of two-qubit gates per slice for the locally optimal
        relaxation; ``None`` disables slicing (NL-SATMAP).
    swaps_per_gate:
        The paper's ``n``: SWAP slots available before each two-qubit gate.
    time_budget:
        Wall-clock budget in seconds for the whole routing call.
    strategy:
        MaxSAT strategy, ``"linear"`` (anytime, default) or ``"core-guided"``.
    backtrack_limit:
        Maximum number of backtracking steps the local relaxation may take.
    noise_model:
        When provided, soft clauses are weighted by gate fidelities (Q6).
    verify:
        Run the independent verifier on every produced solution (default on).
    incremental:
        Solve through persistent :class:`~repro.sat.session.SatSession` s
        (default).  ``False`` rebuilds the SAT solver from scratch on every
        call, the pre-session behaviour.
    cube_workers:
        Opt into cube-and-conquer over the initial-mapping space
        (:mod:`repro.parallel.cubes`): the monolithic solve (or slice 0 of a
        sliced solve) is partitioned into disjoint cubes raced across this
        many worker processes sharing an incumbent bound.  ``None`` (default)
        keeps the serial path; the swap cost is identical either way.
    pipeline_slices:
        Opt into pipeline-parallel slicing (:mod:`repro.parallel.pipeline`):
        while slice ``k`` solves, slice ``k+1``'s encoding is pre-built in a
        worker process.  Requires ``slice_size`` and ``incremental``.
    """

    def __init__(
        self,
        slice_size: int | None = None,
        swaps_per_gate: int = 1,
        time_budget: float = 60.0,
        strategy: str = "linear",
        backtrack_limit: int = 10,
        collapse_repeated_pairs: bool = True,
        noise_model: NoiseModel | None = None,
        verify: bool = True,
        incremental: bool = True,
        cube_workers: int | None = None,
        pipeline_slices: bool = False,
        solver_backend: str | None = None,
        name: str | None = None,
    ) -> None:
        if slice_size is not None and slice_size <= 0:
            raise ValueError("slice_size must be positive or None")
        if cube_workers is not None:
            if (isinstance(cube_workers, bool) or not isinstance(cube_workers, int)
                    or cube_workers < 1):
                raise ValueError("cube_workers must be a positive integer or "
                                 f"None, got {cube_workers!r}")
            if strategy != "linear":
                raise ValueError("cube-and-conquer shares incumbent bounds "
                                 "through the linear search; cube_workers "
                                 f"requires strategy='linear', not {strategy!r}")
        if not isinstance(pipeline_slices, bool):
            raise ValueError("pipeline_slices must be a bool, "
                             f"got {pipeline_slices!r}")
        if pipeline_slices and slice_size is None:
            raise ValueError("pipeline_slices pre-builds slice encodings and "
                             "therefore requires a slice_size")
        if pipeline_slices and not incremental:
            raise ValueError("pipeline_slices pre-builds persistent "
                             "SliceContexts and therefore requires "
                             "incremental=True")
        if solver_backend is not None:
            from repro.sat.backends import BACKEND_CHOICES

            if solver_backend not in BACKEND_CHOICES:
                raise ValueError(
                    "solver_backend must be one of "
                    f"{', '.join(BACKEND_CHOICES)} or None, "
                    f"got {solver_backend!r}")
        super().__init__(time_budget=time_budget, verify=verify)
        self.slice_size = slice_size
        self.swaps_per_gate = swaps_per_gate
        self.strategy = strategy
        self.backtrack_limit = backtrack_limit
        self.collapse_repeated_pairs = collapse_repeated_pairs
        self.noise_model = noise_model
        self.incremental = incremental
        self.cube_workers = cube_workers
        self.pipeline_slices = pipeline_slices
        #: Requested solve core (python | native | auto); ``None`` defers to
        #: ``$REPRO_SAT_BACKEND`` / auto at session-construction time.
        self.solver_backend = solver_backend
        self.name = name or ("SATMAP" if slice_size is not None else "NL-SATMAP")

    # ------------------------------------------------------------------ API

    def _route(self, circuit: QuantumCircuit, architecture: Architecture,
               deadline: float) -> RoutingResult:
        """Map and route ``circuit``; scaffolding lives in ``BaseRouter``."""
        if self.slice_size is None or circuit.num_two_qubit_gates <= self.slice_size:
            remaining = max(0.0, deadline - time.monotonic())
            if self.cube_workers and circuit.num_two_qubit_gates > 0:
                from repro.parallel.cubes import solve_cubed

                return solve_cubed(self, circuit, architecture, remaining).result
            return self.solve_monolithic(circuit, architecture, remaining).result
        from repro.core.slicing import route_sliced

        return route_sliced(circuit, architecture, self)

    # ------------------------------------------------------------ internals

    def encoding_options(self, fixed_initial_mapping: dict[int, int] | None = None,
                         cyclic: bool = False,
                         leading_swap_slot: bool | None = None,
                         leading_slots: int | None = None,
                         swaps_per_gate: int | None = None,
                         pin_initial_via_assumptions: bool = False) -> EncodingOptions:
        """The :class:`EncodingOptions` matching this router's configuration."""
        if leading_swap_slot is None:
            leading_swap_slot = fixed_initial_mapping is not None
        return EncodingOptions(
            swaps_per_gate=swaps_per_gate or self.swaps_per_gate,
            collapse_repeated_pairs=self.collapse_repeated_pairs,
            leading_swap_slot=leading_swap_slot,
            leading_slots=leading_slots,
            cyclic=cyclic,
            fixed_initial_mapping=fixed_initial_mapping,
            pin_initial_via_assumptions=pin_initial_via_assumptions,
            noise_model=self.noise_model,
        )

    def solve_monolithic(
        self,
        circuit: QuantumCircuit,
        architecture: Architecture,
        time_budget: float,
        fixed_initial_mapping: dict[int, int] | None = None,
        cyclic: bool = False,
        excluded_final_mappings: list[dict[int, int]] | None = None,
        leading_slots: int | None = None,
        swaps_per_gate: int | None = None,
        context: SliceContext | None = None,
        cube: dict[int, int] | None = None,
        upper_bound: int | None = None,
        bound_hook=None,
    ) -> MonolithicOutcome:
        """Encode and solve one circuit as a single MaxSAT instance.

        ``excluded_final_mappings`` lists final maps that must not be returned
        again; the local relaxation uses it to implement backtracking (each
        entry becomes the negation of that mapping's assignment, Example 10).

        In incremental mode a compatible ``context`` (from a previous outcome
        on the same circuit) is *reused*: only exclusion clauses the context
        has not seen yet are streamed in, the inherited initial map is pinned
        via assumptions, and the session's learnt clauses carry over.

        ``cube`` pins the placement of some logical qubits via assumption
        literals -- the encoding (and therefore the optimum over all cubes of
        a partition) is exactly the serial one, the pins only restrict which
        initial maps this call may use.  ``upper_bound``/``bound_hook``
        forward an external incumbent to the linear search (see
        :meth:`repro.maxsat.solver.MaxSatSolver.solve`); cube racers use them
        to share the best cost found so far.
        """
        excluded = excluded_final_mappings or []
        timings: dict[str, float] = {}
        encode_start = time.monotonic()
        instance_key = (_instance_key(circuit, architecture)
                        if self.incremental else ())

        with obs_trace.span("encode") as encode_span:
            if (self.incremental and context is not None
                    and context.matches(instance_key,
                                        leading_slots, swaps_per_gate,
                                        cyclic, fixed_initial_mapping, excluded)):
                encoding = context.encoding
                encode_span.set(reused=True)
            else:
                context = self._build_context(circuit, architecture, instance_key,
                                              fixed_initial_mapping, cyclic,
                                              leading_slots, swaps_per_gate)
                encoding = context.encoding if context is not None else None
                if encoding is None:  # non-incremental: plain encode
                    options = self.encoding_options(fixed_initial_mapping, cyclic,
                                                    leading_slots=leading_slots,
                                                    swaps_per_gate=swaps_per_gate)
                    encoding = QmrEncoder(architecture, options).encode(circuit)
            for mapping in excluded[context.excluded_count if context else 0:]:
                clause = encoding.final_mapping_exclusion(mapping)
                if clause:
                    encoding.builder.add_hard(clause)
                if context is not None:
                    context.excluded.append(dict(mapping))
            timings["encode"] = time.monotonic() - encode_start
            encode_span.set(variables=encoding.num_variables,
                            hard_clauses=encoding.num_hard_clauses,
                            soft_clauses=encoding.num_soft_clauses)

        assumptions: list[int] | None = None
        if (fixed_initial_mapping
                and encoding.options.pin_initial_via_assumptions):
            assumptions = encoding.initial_mapping_assumptions(fixed_initial_mapping)
        if cube:
            assumptions = (assumptions or []) + encoding.initial_mapping_assumptions(cube)

        solver = (context.maxsat if context is not None
                  else MaxSatSolver(self.strategy,
                                    solver_backend=self.solver_backend))
        solve_start = time.monotonic()
        with obs_trace.span("solve", strategy=self.strategy) as solve_span:
            maxsat_result = solver.solve(encoding.builder, time_budget=time_budget,
                                         assumptions=assumptions,
                                         upper_bound=upper_bound,
                                         bound_hook=bound_hook)
            timings["solve"] = time.monotonic() - solve_start
            solve_span.set(status=maxsat_result.status.value,
                           sat_calls=maxsat_result.sat_calls)
            if context is not None:
                solve_span.set(**context.session.solver_stats())
        if context is not None:
            context.solves += 1

        base = RoutingResult(
            status=RoutingStatus.TIMEOUT,
            router_name=self.name,
            circuit_name=circuit.name,
            sat_calls=maxsat_result.sat_calls,
            num_variables=encoding.num_variables,
            num_hard_clauses=encoding.num_hard_clauses,
            num_soft_clauses=encoding.num_soft_clauses,
            stage_timings=timings,
        )
        if context is not None:
            base.clauses_streamed = context.session.stats.clauses_streamed
            base.learnt_clauses_retained = context.session.learnt_clauses_retained
            base.solver_stats = context.session.solver_stats()
        if maxsat_result.status is MaxSatStatus.UNSATISFIABLE:
            base.status = RoutingStatus.UNSATISFIABLE
            return MonolithicOutcome(base, encoding, None, context,
                                     pruned=maxsat_result.pruned)
        if not maxsat_result.has_model:
            return MonolithicOutcome(base, encoding, None, context)

        extract_start = time.monotonic()
        with obs_trace.span("extract") as extract_span:
            solution = extract_solution(encoding, maxsat_result.model)
            routed = build_routed_circuit(circuit, encoding, solution)
            timings["extract"] = time.monotonic() - extract_start
            extract_span.set(swaps=solution.swap_count)
        base.status = (RoutingStatus.OPTIMAL if maxsat_result.is_optimal
                       else RoutingStatus.FEASIBLE)
        base.optimal = maxsat_result.is_optimal
        base.initial_mapping = solution.initial_mapping
        base.final_mapping = solution.final_mapping
        base.routed_circuit = routed
        base.swap_count = solution.swap_count
        if self.noise_model is not None:
            base.objective_value = _routed_fidelity(routed, self.noise_model)
        return MonolithicOutcome(base, encoding, maxsat_result.model, context,
                                 maxsat_cost=maxsat_result.cost,
                                 pruned=maxsat_result.pruned)

    def _build_context(
        self,
        circuit: QuantumCircuit,
        architecture: Architecture,
        instance_key: tuple,
        fixed_initial_mapping: dict[int, int] | None,
        cyclic: bool,
        leading_slots: int | None,
        swaps_per_gate: int | None,
    ) -> SliceContext | None:
        """Fresh session + streamed encoding (``None`` when non-incremental)."""
        if not self.incremental:
            return None
        options = self.encoding_options(
            fixed_initial_mapping, cyclic,
            leading_slots=leading_slots,
            swaps_per_gate=swaps_per_gate,
            pin_initial_via_assumptions=fixed_initial_mapping is not None,
        )
        session = SatSession(backend=self.solver_backend)
        encoding = QmrEncoder(architecture, options).encode(circuit, sink=session)
        return SliceContext(
            session=session,
            encoding=encoding,
            maxsat=MaxSatSolver(self.strategy, session=session),
            instance_key=instance_key,
            leading_slots=leading_slots,
            swaps_per_gate=swaps_per_gate,
            cyclic=cyclic,
        )


def _instance_key(circuit: QuantumCircuit, architecture: Architecture) -> tuple:
    """Cheap identity of (circuit interactions, architecture) for context reuse."""
    return (circuit.num_qubits,
            tuple(circuit.interaction_sequence()),
            architecture.num_qubits,
            tuple(sorted(tuple(sorted(edge)) for edge in architecture.edges)))


def _routed_fidelity(routed: QuantumCircuit, noise: NoiseModel) -> float:
    """Estimated success probability of a routed circuit under ``noise``."""
    from repro.circuits.ir import SWAP_OP

    executed_edges: list[tuple[int, int]] = []
    ir = routed.ir
    op, qa, qb = ir.op, ir.qa, ir.qb
    for index in ir.two_qubit_indices():
        absolute = ir.start + index
        edge = (qa[absolute], qb[absolute])
        repetitions = 3 if op[absolute] == SWAP_OP else 1
        executed_edges.extend([edge] * repetitions)
    return noise.circuit_fidelity(executed_edges)
