"""Routing results.

A :class:`RoutingResult` is what every router in this repository returns --
SATMAP itself and all baselines -- so the analysis harness can compare them
uniformly.  Cost is reported the way the paper reports it: the number of
*added CNOT gates*, where one SWAP decomposes into three CNOTs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from repro.circuits.circuit import QuantumCircuit


class RoutingStatus(Enum):
    """How the solution was obtained."""

    OPTIMAL = "optimal"  # proven optimal for the (possibly relaxed) instance
    FEASIBLE = "feasible"  # valid solution, optimality not proven
    TIMEOUT = "timeout"  # no solution found within the budget
    UNSATISFIABLE = "unsatisfiable"  # the instance admits no solution
    ERROR = "error"


@dataclass
class RoutingResult:
    """Outcome of a mapping-and-routing run."""

    status: RoutingStatus
    router_name: str
    circuit_name: str = ""
    initial_mapping: dict[int, int] = field(default_factory=dict)
    final_mapping: dict[int, int] = field(default_factory=dict)
    routed_circuit: QuantumCircuit | None = None
    swap_count: int = 0
    solve_time: float = 0.0
    sat_calls: int = 0
    optimal: bool = False
    num_variables: int = 0
    num_hard_clauses: int = 0
    num_soft_clauses: int = 0
    num_slices: int = 1
    backtracks: int = 0
    objective_value: float | None = None
    notes: str = ""
    #: Wall-clock seconds per solve stage ("encode" / "solve" / "extract"),
    #: summed across slices for sliced runs.  Populated by the MaxSAT-based
    #: routers; heuristics leave it empty.
    stage_timings: dict[str, float] = field(default_factory=dict)
    #: Cumulative hard clauses streamed into the live session(s) that
    #: produced this result, over their whole lifetime (a warm re-solve
    #: reports the session total, not just its own delta).
    clauses_streamed: int = 0
    #: Learnt clauses still retained by the session(s) when the result was
    #: produced -- the visible payoff of incremental reuse.
    learnt_clauses_retained: int = 0
    #: CDCL depth counters (conflicts / decisions / propagations / restarts /
    #: learnt_clauses) accumulated by the session(s) behind this result,
    #: summed across slices.  Heuristic routers leave it empty.
    solver_stats: dict = field(default_factory=dict)
    #: Serialised trace tree (a :meth:`repro.obs.Span.to_dict` payload) when
    #: the job ran under a tracer; excluded from equality so cached results
    #: compare by routing content only.
    trace: dict | None = field(default=None, repr=False, compare=False)

    SWAP_CNOT_COST: int = 3

    @property
    def solved(self) -> bool:
        """Whether a valid routed circuit was produced."""
        return self.status in (RoutingStatus.OPTIMAL, RoutingStatus.FEASIBLE)

    @property
    def added_cnots(self) -> int:
        """Cost in added CNOT gates (one SWAP = three CNOTs), as in the paper."""
        return self.SWAP_CNOT_COST * self.swap_count

    def summary(self) -> str:
        """One-line human-readable summary."""
        if not self.solved:
            return (f"{self.router_name} on {self.circuit_name}: {self.status.value} "
                    f"({self.solve_time:.2f}s)")
        tag = "optimal" if self.optimal else "feasible"
        return (f"{self.router_name} on {self.circuit_name}: {self.swap_count} swaps "
                f"({self.added_cnots} CNOTs, {tag}, {self.solve_time:.2f}s)")
