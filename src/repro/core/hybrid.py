"""The hybrid mapper: MaxSAT placement plus heuristic routing (Section IX).

The paper's discussion section sketches one way to keep constraint-based
tools ahead of growing qubit counts: "we can only solve the mapping
constraints (optimally) and leave the routing process for a heuristic
approach".  :class:`HybridSatMapRouter` is that design point, built from the
pieces already in the repository:

1. **Placement** -- a small weighted MaxSAT instance over a *single* map step
   chooses the initial logical-to-physical mapping.  Hard constraints are the
   paper's Hard A (injectivity/totality); each interacting logical pair
   contributes a soft constraint, weighted by how often the pair interacts,
   that is satisfied exactly when the pair lands on an edge.  The optimum is
   therefore the placement that makes as much of the circuit as possible
   directly executable.
2. **Routing** -- SABRE's routing pass runs with that placement pinned (its
   bidirectional initial-mapping search is skipped).

The instance solved in step 1 has one map step instead of one per gate, so it
stays tractable far beyond the point where full SATMAP times out; the price is
that routing quality is back in heuristic territory.  The ablation benchmark
``bench_ablation_hybrid.py`` measures that trade-off.
"""

from __future__ import annotations

import time

from repro.api.protocol import BaseRouter
from repro.baselines.base import interaction_counts
from repro.baselines.sabre import SabreRouter
from repro.circuits.circuit import QuantumCircuit
from repro.core.result import RoutingResult, RoutingStatus
from repro.hardware.architecture import Architecture
from repro.maxsat.solver import MaxSatSolver
from repro.maxsat.wcnf import WcnfBuilder
from repro.sat.session import SatSession


class HybridSatMapRouter(BaseRouter):
    """Optimal MaxSAT placement followed by SABRE routing."""

    def __init__(self, time_budget: float = 60.0, placement_share: float = 0.5,
                 strategy: str = "linear", verify: bool = True,
                 solver_backend: str | None = None,
                 name: str = "HYBRID-SATMAP") -> None:
        if not 0.0 < placement_share < 1.0:
            raise ValueError("placement_share must be strictly between 0 and 1")
        super().__init__(time_budget=time_budget, verify=verify)
        self.placement_share = placement_share
        self.strategy = strategy
        self.solver_backend = solver_backend
        self.name = name

    # ------------------------------------------------------------------ API

    def _route(self, circuit: QuantumCircuit, architecture: Architecture,
               deadline: float) -> RoutingResult:
        """Place with MaxSAT, route with SABRE, and report one result."""
        start = time.monotonic()
        if circuit.num_qubits > architecture.num_qubits:
            return RoutingResult(
                status=RoutingStatus.ERROR,
                router_name=self.name,
                circuit_name=circuit.name,
                notes="circuit has more qubits than the architecture",
            )
        placement_budget = self.time_budget * self.placement_share
        mapping, placement_stats = self.solve_placement(circuit, architecture,
                                                        placement_budget)

        routing_budget = max(0.001, deadline - time.monotonic())
        sabre = SabreRouter(time_budget=routing_budget, initial_mapping=mapping,
                            verify=False)
        result = sabre.route(circuit, architecture)
        result.sat_calls = placement_stats["sat_calls"]
        result.num_variables = placement_stats["num_variables"]
        result.num_hard_clauses = placement_stats["num_hard_clauses"]
        result.num_soft_clauses = placement_stats["num_soft_clauses"]
        result.notes = ("placement " + placement_stats["placement_quality"]
                        + "; routing heuristic")
        return result

    # ------------------------------------------------------------ placement

    def solve_placement(self, circuit: QuantumCircuit, architecture: Architecture,
                        time_budget: float) -> tuple[dict[int, int], dict]:
        """Choose an initial mapping by weighted MaxSAT over one map step.

        Returns the mapping and a statistics dictionary.  Falls back to the
        identity mapping if the solver produces no model within the budget
        (possible only for extremely tight budgets, since the hard constraints
        are trivially satisfiable).
        """
        # The placement instance streams straight into a live session while it
        # is built, so the MaxSAT call below starts from a loaded solver
        # instead of replaying the clause list.
        session = SatSession(backend=self.solver_backend)
        builder = WcnfBuilder()
        builder.attach_sink(session)
        num_logical = circuit.num_qubits
        num_physical = architecture.num_qubits
        map_var = {(logical, physical): builder.new_var()
                   for logical in range(num_logical)
                   for physical in range(num_physical)}

        # Hard A: every logical qubit sits on exactly one physical qubit and
        # no two logical qubits share one (the paper's injectivity/totality).
        for logical in range(num_logical):
            builder.add_hard([map_var[(logical, physical)]
                              for physical in range(num_physical)])
            for first in range(num_physical):
                for second in range(first + 1, num_physical):
                    builder.add_hard([-map_var[(logical, first)],
                                      -map_var[(logical, second)]])
        for physical in range(num_physical):
            for first in range(num_logical):
                for second in range(first + 1, num_logical):
                    builder.add_hard([-map_var[(first, physical)],
                                      -map_var[(second, physical)]])

        # Soft: an interacting pair placed on an edge satisfies its clause.
        counts = interaction_counts(circuit)
        for (first, second), count in sorted(counts.items()):
            adjacency_literals = []
            for (physical_a, physical_b) in architecture.edges:
                for (pa, pb) in ((physical_a, physical_b), (physical_b, physical_a)):
                    placed = builder.new_var()
                    builder.add_hard([-placed, map_var[(first, pa)]])
                    builder.add_hard([-placed, map_var[(second, pb)]])
                    adjacency_literals.append(placed)
            builder.add_soft(adjacency_literals, weight=count)

        result = MaxSatSolver(self.strategy, session=session).solve(
            builder, time_budget=time_budget)
        stats = {
            "sat_calls": result.sat_calls,
            "num_variables": builder.num_vars,
            "num_hard_clauses": builder.num_hard,
            "num_soft_clauses": builder.num_soft,
            "clauses_streamed": session.stats.clauses_streamed,
            "learnt_retained": session.learnt_clauses_retained,
            "placement_quality": "optimal" if result.is_optimal else "anytime",
        }
        if not result.has_model:
            stats["placement_quality"] = "fallback-identity"
            return {logical: logical for logical in range(num_logical)}, stats

        mapping: dict[int, int] = {}
        for (logical, physical), variable in map_var.items():
            if result.model.get(variable, False):
                mapping[logical] = physical
        # Guard against partially-assigned models from early termination.
        used = set(mapping.values())
        for logical in range(num_logical):
            if logical not in mapping:
                mapping[logical] = next(p for p in range(num_physical) if p not in used)
                used.add(mapping[logical])
        return mapping, stats


def placement_adjacency_score(circuit: QuantumCircuit, architecture: Architecture,
                              mapping: dict[int, int]) -> int:
    """Total interaction weight placed on edges by ``mapping``.

    This is the objective the hybrid placement maximises; exposing it lets
    tests and benchmarks compare placements from different strategies.
    """
    counts = interaction_counts(circuit)
    score = 0
    for (first, second), count in counts.items():
        if architecture.are_adjacent(mapping[first], mapping[second]):
            score += count
    return score
