"""The MaxSAT encoding of the QMR problem (Fig. 5 of the paper).

Given a circuit's two-qubit interaction sequence and a connectivity graph, the
encoder produces a weighted partial MaxSAT instance whose optimal models are
optimal QMR solutions:

* **Hard A** -- maps are injective partial functions (at-most-one physical
  qubit per logical qubit and vice versa), plus at-least-one placement for
  every logical qubit at the first step so the extracted map is total.
* **Hard B** -- the two logical qubits of every two-qubit gate are mapped to
  adjacent physical qubits at that gate's step.
* **Hard C** -- each SWAP slot selects exactly one element of
  ``Edges ∪ {no-op}``.
* **Hard D** -- the effect of the selected SWAP: the map at step ``k`` is the
  map at step ``k-1`` with the swapped qubits exchanged.
* **Soft** -- one clause per slot asserting the no-op, so the MaxSAT optimum
  minimises the number of real SWAPs.  In noise-aware mode the soft clauses
  instead penalise each edge by its log-infidelity (Section "Q6").

The clause count is O(|Phys| x |Logic| x |C|): at-most-one constraints use a
commander encoding beyond a small threshold, and the SWAP-effect constraints
are expressed as forward propagation clauses rather than enumerating SWAP
sequences, matching the size the paper reports for its "only-one" encoding.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.circuits.circuit import QuantumCircuit
from repro.core.variables import NOOP, VariableRegistry
from repro.hardware.architecture import Architecture
from repro.hardware.noise import NoiseModel
from repro.maxsat.cardinality import at_most_one_commander, at_most_one_pairwise
from repro.maxsat.wcnf import WcnfBuilder


@dataclass
class EncodingOptions:
    """Knobs of the encoding.

    ``swaps_per_gate`` is the paper's ``n``; 1 is what the evaluation uses.
    ``collapse_repeated_pairs`` merges consecutive two-qubit gates acting on
    the same logical pair into one step, which preserves optimality and
    shrinks the encoding (no SWAP is ever useful between them).
    """

    swaps_per_gate: int = 1
    collapse_repeated_pairs: bool = True
    commander_threshold: int = 7
    leading_swap_slot: bool = False
    #: Number of SWAP slots in the leading transition (before the first gate)
    #: when ``leading_swap_slot`` is enabled; defaults to ``swaps_per_gate``.
    #: The local relaxation escalates this when a slice with a pinned initial
    #: map turns out unsatisfiable.
    leading_slots: int | None = None
    trailing_swap_slot: bool = False
    cyclic: bool = False
    fixed_initial_mapping: dict[int, int] | None = None
    #: When true, ``fixed_initial_mapping`` is *not* baked in as hard unit
    #: clauses; callers pin it per solve call via
    #: :meth:`QmrEncoding.initial_mapping_assumptions`.  This is what lets a
    #: live session re-solve one encoding under a different inherited map.
    pin_initial_via_assumptions: bool = False
    noise_model: NoiseModel | None = None

    def __post_init__(self) -> None:
        if self.swaps_per_gate < 1:
            raise ValueError("swaps_per_gate must be at least 1")
        if self.leading_slots is not None and self.leading_slots < 1:
            raise ValueError("leading_slots must be at least 1")
        if self.commander_threshold < 3:
            raise ValueError("commander_threshold must be at least 3")


@dataclass
class QmrEncoding:
    """A built encoding: the WCNF plus everything needed to read models back."""

    builder: WcnfBuilder
    registry: VariableRegistry
    architecture: Architecture
    num_logical: int
    steps: list[tuple[int, int]]
    step_of_gate: list[int]
    options: EncodingOptions
    #: SWAP slots, in circuit order: (step, slot) pairs that carry swap variables.
    swap_slots: list[tuple[int, int]] = field(default_factory=list)

    @property
    def num_steps(self) -> int:
        return len(self.steps)

    @property
    def num_hard_clauses(self) -> int:
        return self.builder.num_hard

    @property
    def num_soft_clauses(self) -> int:
        return self.builder.num_soft

    @property
    def num_variables(self) -> int:
        return self.builder.num_vars

    @property
    def root_step(self) -> int:
        """Step index holding the initial map (-1 with a leading SWAP slot)."""
        if not self.steps:
            return 0
        return -1 if self.options.leading_swap_slot else 0

    @property
    def final_step(self) -> int:
        """Step index holding the final map."""
        if not self.steps:
            return 0
        if self.options.trailing_swap_slot or self.options.cyclic:
            return len(self.steps)
        return len(self.steps) - 1

    def initial_mapping_assumptions(self, mapping: dict[int, int]) -> list[int]:
        """Assumption literals pinning the initial map for one solve call.

        Used with :attr:`EncodingOptions.pin_initial_via_assumptions`: the
        same encoding (and the same live solver) can then be re-solved under
        a different inherited map by swapping the assumption set, which is
        how slicing backtracks without re-encoding.
        """
        root = self.root_step
        return [self.registry.map_var(logical, physical, root)
                for logical, physical in sorted(mapping.items())
                if logical < self.num_logical]

    def final_mapping_exclusion(self, mapping: dict[int, int]) -> list[int]:
        """Hard clause (as literals) forbidding ``mapping`` as the final map.

        Only variables the encoding already knows are used; an empty list
        means the mapping cannot be excluded (nothing to negate).
        """
        final = self.final_step
        return [-variable for logical, physical in mapping.items()
                if (variable := self.registry.map_vars.get(
                    (logical, physical, final))) is not None]


class QmrEncoder:
    """Builds the MaxSAT instance of Fig. 5 for a circuit and an architecture."""

    def __init__(self, architecture: Architecture,
                 options: EncodingOptions | None = None) -> None:
        self.architecture = architecture
        self.options = options or EncodingOptions()

    # ------------------------------------------------------------------ API

    def encode(self, circuit: QuantumCircuit, sink=None) -> QmrEncoding:
        """Encode ``circuit`` (its two-qubit interaction sequence) as MaxSAT.

        With a ``sink`` (a :class:`~repro.sat.session.ClauseSink`, typically a
        live :class:`~repro.sat.session.SatSession`), every hard clause is
        streamed into it the moment it is produced, so by the time this
        method returns the attached solver already holds the formula.

        Interaction extraction reads the circuit IR's two-qubit columns
        directly (O(#interactions), no gate-list rescans), so slice views
        encode without ever materialising their gates.
        """
        interactions = circuit.interaction_sequence()
        return self.encode_interactions(interactions, circuit.num_qubits, sink=sink)

    def encode_interactions(self, interactions: list[tuple[int, int]],
                            num_logical: int, sink=None) -> QmrEncoding:
        """Encode an explicit interaction sequence over ``num_logical`` qubits."""
        architecture = self.architecture
        options = self.options
        if num_logical > architecture.num_qubits:
            raise ValueError(
                f"circuit uses {num_logical} logical qubits but the architecture "
                f"only has {architecture.num_qubits} physical qubits"
            )

        steps, step_of_gate = self._build_steps(interactions)
        builder = WcnfBuilder()
        if sink is not None:
            builder.attach_sink(sink)
        registry = VariableRegistry(builder)
        encoding = QmrEncoding(
            builder=builder,
            registry=registry,
            architecture=architecture,
            num_logical=num_logical,
            steps=steps,
            step_of_gate=step_of_gate,
            options=options,
        )

        if not steps:
            # A circuit with no two-qubit gates: any injective map works.
            self._encode_single_free_map(encoding)
            return encoding

        # With a leading SWAP slot the map *before* any gate lives at virtual
        # step -1, and the slot transforms it into the step-0 map; otherwise
        # step 0 itself is the initial map.
        root_step = -1 if options.leading_swap_slot else 0
        if root_step == -1:
            self._encode_injectivity_at_index(encoding, -1)
        for step in range(len(steps)):
            self._encode_injectivity(encoding, step)
        self._encode_totality(encoding, step=root_step)
        for step, (first, second) in enumerate(steps):
            self._encode_gate_adjacency(encoding, step, first, second)
        self._encode_swap_slots(encoding)
        self._encode_initial_mapping(encoding, root_step)
        if options.cyclic:
            self._encode_cyclic_closure(encoding)
        self._encode_soft(encoding)
        return encoding

    # ------------------------------------------------------------ step setup

    def _build_steps(self, interactions: list[tuple[int, int]]
                     ) -> tuple[list[tuple[int, int]], list[int]]:
        """Collapse consecutive same-pair gates into steps (if enabled)."""
        steps: list[tuple[int, int]] = []
        step_of_gate: list[int] = []
        for first, second in interactions:
            pair = (min(first, second), max(first, second))
            if (self.options.collapse_repeated_pairs and steps
                    and steps[-1] == pair):
                step_of_gate.append(len(steps) - 1)
                continue
            steps.append(pair)
            step_of_gate.append(len(steps) - 1)
        return steps, step_of_gate

    # ------------------------------------------------------------ components

    def _encode_single_free_map(self, encoding: QmrEncoding) -> None:
        """Degenerate case: only constrain one injective, total map at step 0."""
        encoding.steps = []
        builder = encoding.builder
        registry = encoding.registry
        architecture = encoding.architecture
        for logical in range(encoding.num_logical):
            placements = [registry.map_var(logical, physical, 0)
                          for physical in range(architecture.num_qubits)]
            builder.add_hard(placements)
            self._at_most_one(builder, placements)
        for physical in range(architecture.num_qubits):
            occupants = [registry.map_var(logical, physical, 0)
                         for logical in range(encoding.num_logical)]
            self._at_most_one(builder, occupants)
        self._encode_initial_mapping(encoding)

    def _encode_injectivity(self, encoding: QmrEncoding, step: int) -> None:
        """Hard A: at every step each map is an injective partial function."""
        builder = encoding.builder
        registry = encoding.registry
        architecture = encoding.architecture
        for logical in range(encoding.num_logical):
            placements = [registry.map_var(logical, physical, step)
                          for physical in range(architecture.num_qubits)]
            self._at_most_one(builder, placements)
        for physical in range(architecture.num_qubits):
            occupants = [registry.map_var(logical, physical, step)
                         for logical in range(encoding.num_logical)]
            self._at_most_one(builder, occupants)

    def _encode_totality(self, encoding: QmrEncoding, step: int) -> None:
        """Every logical qubit is placed somewhere at ``step``.

        Together with the SWAP-effect constraints this makes every map in the
        sequence total, so extraction never has to invent placements for
        qubits that participate in gates.
        """
        builder = encoding.builder
        registry = encoding.registry
        for logical in range(encoding.num_logical):
            builder.add_hard([registry.map_var(logical, physical, step)
                              for physical in range(encoding.architecture.num_qubits)])

    def _encode_gate_adjacency(self, encoding: QmrEncoding, step: int,
                               first: int, second: int) -> None:
        """Hard B: the gate's qubits sit on adjacent physical qubits at its step."""
        builder = encoding.builder
        registry = encoding.registry
        architecture = encoding.architecture
        for logical, other in ((first, second), (second, first)):
            for physical in range(architecture.num_qubits):
                neighbors = architecture.neighbors_sorted(physical)
                clause = [-registry.map_var(logical, physical, step)]
                clause.extend(registry.map_var(other, neighbor, step)
                              for neighbor in neighbors)
                builder.add_hard(clause)

    def _encode_swap_slots(self, encoding: QmrEncoding) -> None:
        """Hard C and Hard D for every SWAP slot between consecutive steps."""
        options = encoding.options
        num_steps = len(encoding.steps)
        for step in range(num_steps):
            if step == 0 and not options.leading_swap_slot:
                continue
            previous = step - 1  # -1 is the virtual pre-circuit step
            slots = options.swaps_per_gate
            if step == 0 and options.leading_slots is not None:
                slots = options.leading_slots
            self._encode_one_transition(encoding, previous_step=previous,
                                        current_step=step, num_slots=slots)
        if options.trailing_swap_slot or options.cyclic:
            # A final slot after the last gate, producing the "final map" step
            # used by the cyclic relaxation (step index == num_steps).
            self._encode_injectivity(encoding, num_steps)
            self._encode_one_transition(encoding, previous_step=num_steps - 1,
                                        current_step=num_steps,
                                        num_slots=options.swaps_per_gate)

    def _encode_one_transition(self, encoding: QmrEncoding, previous_step: int,
                               current_step: int, num_slots: int) -> None:
        """Slots between ``previous_step`` and ``current_step`` (chained if > 1)."""
        architecture = encoding.architecture
        options = encoding.options
        # Intermediate maps are represented as fractional pseudo-steps encoded
        # with dedicated step indices only when n > 1; for n == 1 the slot
        # connects the two real steps directly.
        for slot in range(num_slots):
            is_last_slot = slot == num_slots - 1
            source = previous_step if slot == 0 else self._pseudo_step(encoding, current_step, slot - 1)
            target = current_step if is_last_slot else self._pseudo_step(encoding, current_step, slot)
            if not is_last_slot:
                self._encode_injectivity_pseudo(encoding, target)
            self._encode_slot(encoding, source, target, current_step, slot)

    def _pseudo_step(self, encoding: QmrEncoding, step: int, slot: int) -> int:
        """Step index used for intermediate maps when ``swaps_per_gate > 1``."""
        return (step + 1) * 10_000 + slot

    def _encode_injectivity_pseudo(self, encoding: QmrEncoding, step: int) -> None:
        self._encode_injectivity_at_index(encoding, step)

    def _encode_injectivity_at_index(self, encoding: QmrEncoding, step: int) -> None:
        builder = encoding.builder
        registry = encoding.registry
        architecture = encoding.architecture
        for logical in range(encoding.num_logical):
            placements = [registry.map_var(logical, physical, step)
                          for physical in range(architecture.num_qubits)]
            self._at_most_one(builder, placements)
        for physical in range(architecture.num_qubits):
            occupants = [registry.map_var(logical, physical, step)
                         for logical in range(encoding.num_logical)]
            self._at_most_one(builder, occupants)

    def _encode_slot(self, encoding: QmrEncoding, source_step: int,
                     target_step: int, real_step: int, slot: int) -> None:
        """One SWAP slot: Hard C (exactly one choice) + Hard D (its effect)."""
        builder = encoding.builder
        registry = encoding.registry
        architecture = encoding.architecture
        edges = list(architecture.edges)

        noop_var = registry.swap_var(NOOP, real_step, slot)
        choice_vars = [noop_var] + [registry.swap_var(edge, real_step, slot)
                                    for edge in edges]
        # Hard C: exactly one of {no-op} ∪ Edges is selected.
        builder.add_hard(list(choice_vars))
        self._at_most_one(builder, choice_vars)
        encoding.swap_slots.append((real_step, slot))

        # Hard D: forward propagation of every logical qubit's position.
        incident: dict[int, list[tuple[int, int]]] = {
            physical: [] for physical in range(architecture.num_qubits)
        }
        for edge in edges:
            incident[edge[0]].append(edge)
            incident[edge[1]].append(edge)

        for logical in range(encoding.num_logical):
            for physical in range(architecture.num_qubits):
                source_var = registry.map_var(logical, physical, source_step)
                stay_clause = [-source_var]
                for edge in incident[physical]:
                    stay_clause.append(registry.swap_var(edge, real_step, slot))
                stay_clause.append(registry.map_var(logical, physical, target_step))
                builder.add_hard(stay_clause)
                for edge in incident[physical]:
                    other = edge[1] if edge[0] == physical else edge[0]
                    builder.add_hard([
                        -source_var,
                        -registry.swap_var(edge, real_step, slot),
                        registry.map_var(logical, other, target_step),
                    ])

    def _encode_initial_mapping(self, encoding: QmrEncoding, root_step: int = 0) -> None:
        """Pin the initial map to a given mapping (used by the local relaxation).

        ``root_step`` is -1 when a leading SWAP slot exists (the inherited map
        applies *before* that slot), 0 otherwise.

        When ``pin_initial_via_assumptions`` is set the mapping is *not*
        encoded as hard clauses; the caller assumes the corresponding map
        variables per solve call instead (see
        :meth:`QmrEncoding.initial_mapping_assumptions`).
        """
        fixed = encoding.options.fixed_initial_mapping
        if not fixed or encoding.options.pin_initial_via_assumptions:
            return
        builder = encoding.builder
        registry = encoding.registry
        for logical, physical in fixed.items():
            if logical >= encoding.num_logical:
                continue
            builder.add_hard([registry.map_var(logical, physical, root_step)])

    def _encode_cyclic_closure(self, encoding: QmrEncoding) -> None:
        """Section VI: the final map equals the initial map, qubit by qubit."""
        builder = encoding.builder
        registry = encoding.registry
        final_step = len(encoding.steps)
        for logical in range(encoding.num_logical):
            for physical in range(encoding.architecture.num_qubits):
                initial = registry.map_var(logical, physical, 0)
                final = registry.map_var(logical, physical, final_step)
                builder.add_hard([-initial, final])
                builder.add_hard([initial, -final])

    def _encode_soft(self, encoding: QmrEncoding) -> None:
        """Soft constraints: prefer no-ops (unweighted) or high fidelity (weighted)."""
        builder = encoding.builder
        registry = encoding.registry
        noise = encoding.options.noise_model
        for step, slot in encoding.swap_slots:
            if noise is None:
                builder.add_soft([registry.swap_var(NOOP, step, slot)], weight=1)
            else:
                for edge in encoding.architecture.edges:
                    weight = noise.swap_weight(*edge)
                    builder.add_soft([-registry.swap_var(edge, step, slot)],
                                     weight=weight)
        if noise is not None:
            self._encode_noise_aware_gate_costs(encoding)

    def _encode_noise_aware_gate_costs(self, encoding: QmrEncoding) -> None:
        """Penalise executing each gate on a low-fidelity edge (Q6 objective).

        For every step and every edge we introduce an auxiliary "executed on
        this edge" variable implied by the two map placements, and attach a
        soft clause weighted by the edge's CNOT log-infidelity.
        """
        builder = encoding.builder
        registry = encoding.registry
        noise = encoding.options.noise_model
        architecture = encoding.architecture
        for step, (first, second) in enumerate(encoding.steps):
            for edge in architecture.edges:
                physical_a, physical_b = edge
                executed = builder.new_var()
                for qubit_one, qubit_two in ((first, second), (second, first)):
                    builder.add_hard([
                        -registry.map_var(qubit_one, physical_a, step),
                        -registry.map_var(qubit_two, physical_b, step),
                        executed,
                    ])
                error = noise.edge_error(*edge)
                weight = max(1, round(-noise.weight_scale *
                                      _log_one_minus(error)))
                builder.add_soft([-executed], weight=weight)

    # -------------------------------------------------------------- helpers

    def _at_most_one(self, builder: WcnfBuilder, literals: list[int]) -> None:
        if len(literals) <= 1:
            return
        if len(literals) < self.options.commander_threshold:
            at_most_one_pairwise(builder, literals)
        else:
            at_most_one_commander(builder, literals)


def _log_one_minus(error: float) -> float:
    """Natural log of (1 - error), guarded against error == 1."""
    import math

    return math.log(max(1e-12, 1.0 - error))
