"""Independent verifier for routed circuits.

Section VII: "To ensure correctness of our QMR solutions, we implemented an
independent verifier.  The verifier traverses a circuit, evaluating its
effects on an initial map and checking that all two-qubit gates act on
connected qubits."  This module is that verifier, extended to also check that
the routed circuit preserves the original circuit's logical gate sequence.

The verifier shares no code with the encoder or the extraction logic: it works
purely on the routed circuit, the original circuit, the initial mapping, and
the connectivity graph.  It traverses both circuits as flat
``(name, qubits, params)`` tuples straight off their IR columns -- the routed
circuit is usually the largest object a routing run produces, and the
verifier runs on every solved result, so it must not box a ``Gate`` per
emitted operation.
"""

from __future__ import annotations

from array import array

from repro.circuits.circuit import QuantumCircuit
from repro.hardware.architecture import Architecture


class VerificationError(AssertionError):
    """Raised when a routed circuit fails verification."""


def verify_routing(original: QuantumCircuit, routed: QuantumCircuit,
                   initial_mapping: dict[int, int],
                   architecture: Architecture) -> int:
    """Check a routed circuit and return the number of SWAPs it contains.

    Checks performed:

    1. the initial mapping is an injective map from the original circuit's
       logical qubits into the architecture's physical qubits;
    2. every two-qubit gate of the routed circuit (including SWAPs) acts on an
       edge of the connectivity graph;
    3. stripping the SWAPs and translating physical operands back to logical
       qubits through the evolving mapping yields a circuit equivalent to the
       original up to reordering of gates on disjoint qubits: for every
       logical qubit, the sequence of gates touching it (names, parameters,
       and co-operands) is identical to the original's.  This is the standard
       dependency-preserving equivalence, and it is what DAG-driven routers
       such as SABRE produce.

    Raises :class:`VerificationError` on any violation.
    """
    _check_initial_mapping(original, initial_mapping, architecture)

    # physical -> logical view of the evolving map (-1 marks an empty qubit)
    physical_to_logical = array("i", [-1]) * architecture.num_qubits
    for logical, physical in initial_mapping.items():
        if physical_to_logical[physical] >= 0:
            raise VerificationError(
                f"initial mapping sends two logical qubits to physical {physical}"
            )
        physical_to_logical[physical] = logical

    translated_gates: list[tuple[str, tuple[str, ...], tuple[int, ...]]] = []
    swap_count = 0

    for position, (name, qubits, params) in enumerate(routed.iter_ops()):
        if len(qubits) == 2:
            first, second = qubits
            if not architecture.are_adjacent(first, second):
                raise VerificationError(
                    f"gate #{position} ({name}) acts on non-adjacent physical "
                    f"qubits {first} and {second} of {architecture.name}"
                )
            if name == "swap":
                swap_count += 1
                logical_first = physical_to_logical[first]
                logical_second = physical_to_logical[second]
                physical_to_logical[second] = logical_first
                physical_to_logical[first] = logical_second
                continue

        translated = []
        for physical in qubits:
            logical = physical_to_logical[physical]
            if logical < 0:
                raise VerificationError(
                    f"gate #{position} ({name}) touches physical qubit "
                    f"{physical}, which holds no logical qubit"
                )
            translated.append(logical)
        translated_gates.append((name, params, tuple(translated)))

    _check_per_qubit_sequences(original, translated_gates)
    return swap_count


def _check_per_qubit_sequences(
    original: QuantumCircuit,
    translated_gates: list[tuple[str, tuple[str, ...], tuple[int, ...]]],
) -> None:
    """Compare per-logical-qubit gate sequences of the original and routed circuits."""
    if len(translated_gates) != len(original):
        raise VerificationError(
            f"routed circuit has {len(translated_gates)} non-SWAP gates, the "
            f"original has {len(original)}"
        )

    def project(gates) -> dict[int, list[tuple]]:
        sequences: dict[int, list[tuple]] = {q: [] for q in range(original.num_qubits)}
        for name, params, qubits in gates:
            for qubit in qubits:
                sequences[qubit].append((name, params, qubits))
        return sequences

    original_view = [(name, params, qubits)
                     for name, qubits, params in original.iter_ops()]
    expected = project(original_view)
    actual = project(translated_gates)
    for qubit in range(original.num_qubits):
        if expected[qubit] != actual[qubit]:
            raise VerificationError(
                f"the gate sequence on logical qubit {qubit} differs between the "
                f"original and the routed circuit (first divergence at position "
                f"{_first_divergence(expected[qubit], actual[qubit])})"
            )


def _first_divergence(expected: list, actual: list) -> int:
    for index, (left, right) in enumerate(zip(expected, actual)):
        if left != right:
            return index
    return min(len(expected), len(actual))


def _check_initial_mapping(original: QuantumCircuit, initial_mapping: dict[int, int],
                           architecture: Architecture) -> None:
    used = original.used_qubits()
    missing = [qubit for qubit in used if qubit not in initial_mapping]
    if missing:
        raise VerificationError(f"initial mapping misses logical qubits {missing}")
    values = list(initial_mapping.values())
    if len(set(values)) != len(values):
        raise VerificationError("initial mapping is not injective")
    for logical, physical in initial_mapping.items():
        if not 0 <= physical < architecture.num_qubits:
            raise VerificationError(
                f"logical qubit {logical} mapped to nonexistent physical qubit {physical}"
            )
