"""Gate-level representation.

QMR only cares about *which* qubits a gate touches (one or two) and the order
of gates; the specific unitary is irrelevant.  We nevertheless keep the gate
name and parameters so circuits can be round-tripped through OpenQASM and so
the SWAP insertions produced by routing can be emitted as real gates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum


class GateKind(Enum):
    """Coarse classification used by the router."""

    SINGLE_QUBIT = "single"
    TWO_QUBIT = "two"
    SWAP = "swap"
    BARRIER = "barrier"
    MEASURE = "measure"


#: Gate names understood by the QASM reader/writer, mapped to arity.
KNOWN_GATES: dict[str, int] = {
    "id": 1, "x": 1, "y": 1, "z": 1, "h": 1, "s": 1, "sdg": 1, "t": 1, "tdg": 1,
    "rx": 1, "ry": 1, "rz": 1, "u1": 1, "u2": 1, "u3": 1, "sx": 1, "p": 1,
    "cx": 2, "cz": 2, "cy": 2, "ch": 2, "crz": 2, "cp": 2, "cu1": 2, "rzz": 2,
    "rxx": 2, "swap": 2, "iswap": 2, "ecr": 2,
}


@dataclass(frozen=True)
class Gate:
    """A single gate application on logical qubits.

    ``qubits`` holds logical qubit indices; one entry for single-qubit gates,
    two for two-qubit gates.  ``params`` holds rotation angles (as strings to
    preserve symbolic QASM parameters exactly).
    """

    name: str
    qubits: tuple[int, ...]
    params: tuple[str, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if not self.qubits:
            raise ValueError("a gate must act on at least one qubit")
        if len(set(self.qubits)) != len(self.qubits):
            raise ValueError(f"gate {self.name} repeats a qubit: {self.qubits}")
        if len(self.qubits) > 2:
            raise ValueError(
                f"gate {self.name} acts on {len(self.qubits)} qubits; "
                "decompose to one- and two-qubit gates before routing"
            )

    @property
    def kind(self) -> GateKind:
        if self.name == "swap":
            return GateKind.SWAP
        if self.name == "barrier":
            return GateKind.BARRIER
        if self.name == "measure":
            return GateKind.MEASURE
        return GateKind.TWO_QUBIT if len(self.qubits) == 2 else GateKind.SINGLE_QUBIT

    @property
    def is_two_qubit(self) -> bool:
        return len(self.qubits) == 2

    @property
    def is_single_qubit(self) -> bool:
        return len(self.qubits) == 1

    def remapped(self, mapping: dict[int, int]) -> "Gate":
        """Return a copy of this gate with qubits renamed through ``mapping``."""
        return Gate(self.name, tuple(mapping[q] for q in self.qubits), self.params)


def cx(control: int, target: int) -> Gate:
    """Convenience constructor for a CNOT gate."""
    return Gate("cx", (control, target))


def swap(first: int, second: int) -> Gate:
    """Convenience constructor for a SWAP gate."""
    return Gate("swap", (first, second))


def h(qubit: int) -> Gate:
    """Convenience constructor for a Hadamard gate."""
    return Gate("h", (qubit,))


def rz(qubit: int, angle: str | float) -> Gate:
    """Convenience constructor for an RZ rotation."""
    return Gate("rz", (qubit,), (str(angle),))


def rzz(first: int, second: int, angle: str | float) -> Gate:
    """Convenience constructor for an RZZ (ZZ-interaction) gate, as in QAOA."""
    return Gate("rzz", (first, second), (str(angle),))
