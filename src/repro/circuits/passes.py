"""Circuit transformation passes.

Routing is one step of a compilation pipeline; the passes here cover the
steps immediately around it that the paper's cost accounting depends on:

* :func:`decompose_swaps` -- expand every SWAP into three CNOTs (the paper's
  cost metric counts added CNOTs, with "SWAP decomposes to 3 CNOTs");
* :func:`cancel_adjacent_inverses` -- remove pairs of adjacent self-inverse
  gates on the same qubits (CX·CX, H·H, X·X, SWAP·SWAP, ...), the cleanup
  pass run after stitching slices or cycles back together;
* :func:`merge_rotations` -- fuse adjacent RZ/RX/RY rotations on the same
  qubit into one gate (summing symbolic parameters textually);
* :func:`remove_trivial_gates` -- drop identity gates and barriers;
* :func:`mirror_cnots_for_directed_coupling` -- orient CNOTs along a directed
  coupling map by conjugating with Hadamards when needed.

All passes iterate the circuit's flat IR as ``(name, qubits, params)``
tuples and stream their output through
:meth:`~repro.circuits.circuit.QuantumCircuit.append_op`; no ``Gate`` object
is boxed on either side.

:class:`PassManager` chains passes and records per-pass statistics, mirroring
how production compilers report what each stage removed or added.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable

from repro.circuits.circuit import QuantumCircuit

#: Gates that are their own inverse (on the same qubit tuple).
SELF_INVERSE_GATES = {"x", "y", "z", "h", "cx", "cz", "swap", "id"}

#: Rotation gates whose adjacent applications on one qubit can be merged.
MERGEABLE_ROTATIONS = {"rz", "rx", "ry", "p", "u1"}

_NO_PARAMS: tuple[str, ...] = ()

#: An IR operation as plain data.
_Op = tuple[str, tuple[int, ...], tuple[str, ...]]


def decompose_swaps(circuit: QuantumCircuit) -> QuantumCircuit:
    """Expand every SWAP gate into three alternating CNOTs.

    This is the decomposition the paper uses for cost accounting: each routed
    SWAP contributes three CNOTs to the added-gate count.
    """
    result = QuantumCircuit(circuit.num_qubits, name=circuit.name)
    for name, qubits, params in circuit.iter_ops():
        if name == "swap":
            first, second = qubits
            result.append_op("cx", (first, second))
            result.append_op("cx", (second, first))
            result.append_op("cx", (first, second))
        else:
            result.append_op(name, qubits, params)
    return result


def remove_trivial_gates(circuit: QuantumCircuit) -> QuantumCircuit:
    """Drop identity gates, barriers, and zero-angle rotations."""
    result = QuantumCircuit(circuit.num_qubits, name=circuit.name)
    for name, qubits, params in circuit.iter_ops():
        if name in ("id", "barrier"):
            continue
        if name in MERGEABLE_ROTATIONS and _is_zero_angle(params):
            continue
        result.append_op(name, qubits, params)
    return result


def cancel_adjacent_inverses(circuit: QuantumCircuit) -> QuantumCircuit:
    """Cancel adjacent pairs of identical self-inverse gates.

    Two gates cancel when they are the same self-inverse gate on the same
    qubit tuple and no gate touching any of those qubits lies between them.
    The pass repeats until no further cancellation applies, so chains like
    ``H H H H`` collapse completely.
    """
    ops = list(circuit.iter_ops())
    changed = True
    while changed:
        ops, changed = _cancel_one_round(ops)
    result = QuantumCircuit(circuit.num_qubits, name=circuit.name)
    for name, qubits, params in ops:
        result.append_op(name, qubits, params)
    return result


def _cancel_one_round(ops: list[_Op]) -> tuple[list[_Op], bool]:
    cancelled_indices: set[int] = set()
    last_on_qubit: dict[int, int] = {}
    for index, (name, qubits, params) in enumerate(ops):
        partner = None
        if name in SELF_INVERSE_GATES:
            candidates = [last_on_qubit.get(q) for q in qubits]
            if (candidates and candidates[0] is not None
                    and all(c == candidates[0] for c in candidates)):
                previous_index = candidates[0]
                previous = ops[previous_index]
                if (previous_index not in cancelled_indices
                        and previous == (name, qubits, params)):
                    partner = previous_index
        if partner is not None:
            cancelled_indices.add(partner)
            cancelled_indices.add(index)
            for qubit in qubits:
                last_on_qubit.pop(qubit, None)
        else:
            for qubit in qubits:
                last_on_qubit[qubit] = index
    if not cancelled_indices:
        return ops, False
    kept = [op for index, op in enumerate(ops) if index not in cancelled_indices]
    return kept, True


def merge_rotations(circuit: QuantumCircuit) -> QuantumCircuit:
    """Fuse adjacent same-axis rotations on the same qubit.

    Numeric angles are summed; symbolic angles are joined with ``+`` so the
    merged gate remains printable as QASM.  Merged rotations whose numeric
    angle sums to zero are dropped.
    """
    result = QuantumCircuit(circuit.num_qubits, name=circuit.name)
    pending: dict[int, _Op] = {}

    def flush(qubit: int) -> None:
        op = pending.pop(qubit, None)
        if op is not None and not _is_zero_angle(op[2]):
            result.append_op(*op)

    for name, qubits, params in circuit.iter_ops():
        if name in MERGEABLE_ROTATIONS and len(qubits) == 1:
            qubit = qubits[0]
            waiting = pending.get(qubit)
            if waiting is not None and waiting[0] == name:
                pending[qubit] = (name, qubits,
                                  (_add_angles(waiting[2][0], params[0]),))
            else:
                flush(qubit)
                pending[qubit] = (name, qubits, params)
        else:
            for qubit in qubits:
                flush(qubit)
            result.append_op(name, qubits, params)
    for qubit in sorted(pending):
        flush(qubit)
    return result


def mirror_cnots_for_directed_coupling(
        circuit: QuantumCircuit,
        allowed_directions: Iterable[tuple[int, int]]) -> QuantumCircuit:
    """Orient CNOTs along a directed coupling map.

    Devices such as the IBM QX family only implement CNOT in one direction per
    edge; a reversed CNOT is realised by conjugating both qubits with
    Hadamards.  ``allowed_directions`` lists the (control, target) pairs the
    device supports; any CX not in that set but whose reverse is gets the
    four-Hadamard treatment.  CX gates on unsupported edges raise, because
    routing should have eliminated them.
    """
    allowed = set(allowed_directions)
    result = QuantumCircuit(circuit.num_qubits, name=circuit.name)
    for name, qubits, params in circuit.iter_ops():
        if name != "cx":
            result.append_op(name, qubits, params)
            continue
        control, target = qubits
        if (control, target) in allowed:
            result.append_op(name, qubits, params)
        elif (target, control) in allowed:
            result.append_op("h", (control,))
            result.append_op("h", (target,))
            result.append_op("cx", (target, control))
            result.append_op("h", (control,))
            result.append_op("h", (target,))
        else:
            raise ValueError(
                f"cx on ({control}, {target}) is not available in either direction")
    return result


def _is_zero_angle(params: tuple[str, ...]) -> bool:
    if not params:
        return False
    try:
        return abs(float(params[0])) < 1e-12
    except ValueError:
        return False


def _add_angles(first: str, second: str) -> str:
    try:
        return repr(float(first) + float(second))
    except ValueError:
        return f"({first})+({second})"


@dataclass
class PassRecord:
    """Statistics for one pass application."""

    name: str
    gates_before: int
    gates_after: int

    @property
    def removed(self) -> int:
        return self.gates_before - self.gates_after


@dataclass
class PassManager:
    """Chain of circuit passes applied in order, with per-pass statistics."""

    passes: list[Callable[[QuantumCircuit], QuantumCircuit]] = field(default_factory=list)
    history: list[PassRecord] = field(default_factory=list)

    def add(self, pass_fn: Callable[[QuantumCircuit], QuantumCircuit]) -> "PassManager":
        """Append a pass; returns ``self`` for chaining."""
        self.passes.append(pass_fn)
        return self

    def run(self, circuit: QuantumCircuit) -> QuantumCircuit:
        """Apply every pass in order, recording gate counts before and after."""
        self.history = []
        current = circuit
        for pass_fn in self.passes:
            before = len(current)
            current = pass_fn(current)
            self.history.append(PassRecord(
                name=getattr(pass_fn, "__name__", type(pass_fn).__name__),
                gates_before=before,
                gates_after=len(current),
            ))
        return current

    @property
    def total_removed(self) -> int:
        return sum(record.removed for record in self.history)


def default_cleanup_pipeline() -> PassManager:
    """The cleanup applied to routed circuits before reporting costs."""
    return (PassManager()
            .add(remove_trivial_gates)
            .add(cancel_adjacent_inverses)
            .add(merge_rotations))
