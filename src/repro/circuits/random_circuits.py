"""Deterministic random circuit generation.

Used both for the synthetic benchmark suite (stand-in for RevLib circuits of a
given size) and for property-based tests.  All generation is seeded so the
suite is reproducible run to run.
"""

from __future__ import annotations

import random

from repro.circuits.circuit import QuantumCircuit


SINGLE_QUBIT_POOL = ("h", "x", "t", "tdg", "s", "rz")
TWO_QUBIT_POOL = ("cx", "cz", "cx", "cx")  # CX-heavy, like RevLib circuits


def random_circuit(
    num_qubits: int,
    num_two_qubit_gates: int,
    seed: int = 0,
    single_qubit_ratio: float = 0.5,
    interaction_bias: float = 0.0,
    name: str | None = None,
) -> QuantumCircuit:
    """Generate a random circuit with a prescribed number of two-qubit gates.

    Parameters
    ----------
    num_qubits:
        Number of logical qubits.
    num_two_qubit_gates:
        Exact number of two-qubit gates in the result.
    seed:
        RNG seed; the same arguments always produce the same circuit.
    single_qubit_ratio:
        Expected number of single-qubit gates per two-qubit gate.
    interaction_bias:
        In ``[0, 1]``.  0 draws qubit pairs uniformly; values towards 1
        concentrate interactions on a few "hub" qubits, which mimics the
        highly non-uniform interaction graphs of reversible-logic benchmarks
        (one qubit interacting with many others forces more routing).
    """
    if num_qubits < 2:
        raise ValueError("need at least two qubits for two-qubit gates")
    if num_two_qubit_gates < 0:
        raise ValueError("num_two_qubit_gates must be non-negative")
    if not 0.0 <= interaction_bias <= 1.0:
        raise ValueError("interaction_bias must be in [0, 1]")

    rng = random.Random(seed)
    circuit = QuantumCircuit(
        num_qubits,
        name=name or f"random_q{num_qubits}_g{num_two_qubit_gates}_s{seed}",
    )
    hub_count = max(1, round(num_qubits * 0.25))
    hubs = list(range(hub_count))

    for _ in range(num_two_qubit_gates):
        while rng.random() < single_qubit_ratio / (1.0 + single_qubit_ratio):
            gate_name = rng.choice(SINGLE_QUBIT_POOL)
            qubit = rng.randrange(num_qubits)
            params = ("0.5",) if gate_name == "rz" else ()
            circuit.append_op(gate_name, (qubit,), params)
        if rng.random() < interaction_bias:
            first = rng.choice(hubs)
        else:
            first = rng.randrange(num_qubits)
        second = rng.randrange(num_qubits)
        while second == first:
            second = rng.randrange(num_qubits)
        circuit.append_op(rng.choice(TWO_QUBIT_POOL), (first, second))
    return circuit


def layered_random_circuit(
    num_qubits: int, num_layers: int, seed: int = 0, name: str | None = None
) -> QuantumCircuit:
    """Random circuit built from layers of disjoint two-qubit gates.

    Each layer pairs up as many qubits as possible, giving dense parallel
    structure similar to quantum-volume style circuits.
    """
    if num_qubits < 2:
        raise ValueError("need at least two qubits")
    rng = random.Random(seed)
    circuit = QuantumCircuit(num_qubits, name=name or f"layered_q{num_qubits}_l{num_layers}_s{seed}")
    for _ in range(num_layers):
        qubits = list(range(num_qubits))
        rng.shuffle(qubits)
        for first, second in zip(qubits[0::2], qubits[1::2]):
            circuit.append_op("cx", (first, second))
    return circuit
