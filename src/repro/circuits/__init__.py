"""Quantum circuit infrastructure.

The paper evaluates QMR on circuits drawn from the RevLib / Quipper /
ScaffoldCC benchmark collection, QAOA circuits, and circuits expressed in
OpenQASM 2.0.  This package provides everything QMR needs to know about a
circuit: a flat structure-of-arrays IR (:mod:`repro.circuits.ir`) behind the
:class:`QuantumCircuit` facade, a CSR dependency DAG with topological layers,
an OpenQASM 2.0 reader/writer, generators for random and QAOA circuits, and a
named benchmark suite that stands in for the paper's 160-circuit collection.
Post-routing tooling lives here too: transformation passes (SWAP
decomposition, inverse cancellation, rotation merging), ASAP/ALAP scheduling,
structured kernel generators (QFT, GHZ, adders), and a text-mode drawer.
"""

from repro.circuits.gates import Gate, GateKind
from repro.circuits.circuit import QuantumCircuit
from repro.circuits.ir import CircuitIR
from repro.circuits.passes import (
    PassManager,
    cancel_adjacent_inverses,
    decompose_swaps,
    default_cleanup_pipeline,
    merge_rotations,
    remove_trivial_gates,
)
from repro.circuits.scheduling import (
    GateDurations,
    Schedule,
    alap_schedule,
    asap_schedule,
    routing_latency_overhead,
)
from repro.circuits.named_circuits import (
    bernstein_vazirani_circuit,
    cuccaro_adder_circuit,
    ghz_circuit,
    hidden_shift_circuit,
    ising_model_circuit,
    qft_circuit,
)
from repro.circuits.drawer import circuit_summary, draw_circuit
from repro.circuits.dag import CircuitDag, topological_layers
from repro.circuits.qasm import parse_qasm, circuit_to_qasm, load_qasm, save_qasm
from repro.circuits.random_circuits import random_circuit
from repro.circuits.qaoa import maxcut_qaoa_circuit, random_regular_graph
from repro.circuits.library import BenchmarkCircuit, benchmark_suite, get_benchmark

__all__ = [
    "Gate",
    "GateKind",
    "QuantumCircuit",
    "CircuitIR",
    "CircuitDag",
    "topological_layers",
    "parse_qasm",
    "circuit_to_qasm",
    "load_qasm",
    "save_qasm",
    "random_circuit",
    "maxcut_qaoa_circuit",
    "random_regular_graph",
    "BenchmarkCircuit",
    "benchmark_suite",
    "get_benchmark",
    "PassManager",
    "decompose_swaps",
    "cancel_adjacent_inverses",
    "merge_rotations",
    "remove_trivial_gates",
    "default_cleanup_pipeline",
    "GateDurations",
    "Schedule",
    "asap_schedule",
    "alap_schedule",
    "routing_latency_overhead",
    "qft_circuit",
    "ghz_circuit",
    "bernstein_vazirani_circuit",
    "cuccaro_adder_circuit",
    "ising_model_circuit",
    "hidden_shift_circuit",
    "draw_circuit",
    "circuit_summary",
]
