"""A small OpenQASM 2.0 reader and writer.

The public benchmark circuits the paper uses are distributed as OpenQASM 2.0
files.  This module implements the subset of the language those files use:
``OPENQASM``/``include`` headers, ``qreg``/``creg`` declarations, the standard
gate set from ``qelib1.inc`` (with parameters), ``measure`` and ``barrier``
statements.  Gate definitions (``gate ... { ... }``) are parsed and expanded
only when they are simple (non-recursive) compositions of known gates; the
benchmark files do not need more.
"""

from __future__ import annotations

import re
from pathlib import Path

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.gates import KNOWN_GATES
from repro.circuits.ir import CircuitIR


class QasmError(ValueError):
    """Raised when a QASM file cannot be parsed."""


#: An expanded statement: ``(name, qubits, params)`` -- plain data, no boxing.
_Op = tuple[str, tuple[int, ...], tuple[str, ...]]


_STATEMENT_RE = re.compile(r"[^;]+;")
_QREG_RE = re.compile(r"qreg\s+(\w+)\s*\[\s*(\d+)\s*\]")
_CREG_RE = re.compile(r"creg\s+(\w+)\s*\[\s*(\d+)\s*\]")
_APPLICATION_RE = re.compile(r"^\s*(\w+)\s*(\(([^)]*)\))?\s+(.+)$", re.DOTALL)
_OPERAND_RE = re.compile(r"(\w+)\s*(\[\s*(\d+)\s*\])?")


def parse_qasm(text: str, name: str = "qasm_circuit") -> QuantumCircuit:
    """Parse OpenQASM 2.0 text into a :class:`QuantumCircuit`.

    Multi-register programs are flattened into a single contiguous qubit index
    space in declaration order.  Measurements and barriers are dropped (they
    are irrelevant to mapping and routing).

    Statements stream straight into a flat :class:`CircuitIR` as they are
    expanded -- no per-gate object is allocated while reading -- and the
    circuit facade is wrapped around the finished columns at the end.
    """
    text = _strip_comments(text)
    register_offsets: dict[str, int] = {}
    register_sizes: dict[str, int] = {}
    total_qubits = 0
    ir = CircuitIR()
    custom_gates: dict[str, tuple[list[str], list[str], list[str]]] = {}

    body = _extract_gate_definitions(text, custom_gates)

    for statement_match in _STATEMENT_RE.finditer(body):
        statement = statement_match.group(0).strip().rstrip(";").strip()
        if not statement:
            continue
        lowered = statement.lower()
        if lowered.startswith(("openqasm", "include", "creg", "//")):
            continue
        if lowered.startswith("qreg"):
            match = _QREG_RE.search(statement)
            if not match:
                raise QasmError(f"malformed qreg statement: {statement!r}")
            register, size = match.group(1), int(match.group(2))
            register_offsets[register] = total_qubits
            register_sizes[register] = size
            total_qubits += size
            continue
        if lowered.startswith(("measure", "barrier", "reset", "if")):
            continue
        parsed = _parse_application(statement, register_offsets, register_sizes)
        if parsed is None:
            continue
        gate_name, params, qubits = parsed
        for op_name, op_qubits, op_params in _expand(gate_name, params, qubits,
                                                     custom_gates):
            ir.append(op_name, op_qubits, op_params)

    if total_qubits == 0:
        raise QasmError("no qreg declaration found")
    # Register bounds were checked per statement, so every operand already
    # lies inside 0..total_qubits-1; wrap the columns without revalidating.
    return QuantumCircuit.from_ir(total_qubits, ir, name=name)


def _strip_comments(text: str) -> str:
    lines = []
    for line in text.splitlines():
        if "//" in line:
            line = line.split("//", 1)[0]
        lines.append(line)
    return "\n".join(lines)


def _extract_gate_definitions(
    text: str, custom_gates: dict[str, tuple[list[str], list[str], list[str]]]
) -> str:
    """Pull ``gate name(params) args { body }`` blocks out of the program text."""
    definition_re = re.compile(
        r"gate\s+(\w+)\s*(\(([^)]*)\))?\s*([\w\s,]*)\{([^}]*)\}", re.DOTALL
    )

    def record(match: re.Match) -> str:
        gate_name = match.group(1)
        params = [p.strip() for p in (match.group(3) or "").split(",") if p.strip()]
        args = [a.strip() for a in (match.group(4) or "").split(",") if a.strip()]
        body_statements = [s.strip() for s in match.group(5).split(";") if s.strip()]
        custom_gates[gate_name] = (params, args, body_statements)
        return ""

    return definition_re.sub(record, text)


def _parse_application(
    statement: str,
    register_offsets: dict[str, int],
    register_sizes: dict[str, int],
) -> tuple[str, tuple[str, ...], list[int]] | None:
    match = _APPLICATION_RE.match(statement)
    if not match:
        raise QasmError(f"cannot parse statement: {statement!r}")
    gate_name = match.group(1)
    params = tuple(p.strip() for p in (match.group(3) or "").split(",") if p.strip())
    operand_text = match.group(4)
    qubits: list[int] = []
    for operand_match in _OPERAND_RE.finditer(operand_text):
        register = operand_match.group(1)
        if register not in register_offsets:
            raise QasmError(f"unknown register {register!r} in: {statement!r}")
        if operand_match.group(3) is None:
            raise QasmError(
                f"whole-register application is not supported: {statement!r}"
            )
        index = int(operand_match.group(3))
        if index >= register_sizes[register]:
            raise QasmError(f"qubit index out of range in: {statement!r}")
        qubits.append(register_offsets[register] + index)
    if not qubits:
        raise QasmError(f"no qubit operands in: {statement!r}")
    return gate_name, params, qubits


def _expand(
    gate_name: str,
    params: tuple[str, ...],
    qubits: list[int],
    custom_gates: dict[str, tuple[list[str], list[str], list[str]]],
    depth: int = 0,
) -> list[_Op]:
    """Expand a gate application into known primitive gates (as plain tuples)."""
    if depth > 16:
        raise QasmError(f"gate definition nesting too deep at {gate_name!r}")
    if gate_name in KNOWN_GATES:
        expected_arity = KNOWN_GATES[gate_name]
        if len(qubits) != expected_arity:
            raise QasmError(
                f"gate {gate_name} expects {expected_arity} qubits, got {len(qubits)}"
            )
        if len(set(qubits)) != len(qubits):
            raise QasmError(f"gate {gate_name} repeats a qubit: {tuple(qubits)}")
        return [(gate_name, tuple(qubits), params)]
    if gate_name == "ccx" or gate_name == "ccz":
        return _expand_toffoli(qubits)
    if gate_name in custom_gates:
        formal_params, formal_args, body = custom_gates[gate_name]
        if len(formal_args) != len(qubits):
            raise QasmError(
                f"gate {gate_name} expects {len(formal_args)} qubits, got {len(qubits)}"
            )
        binding = dict(zip(formal_args, qubits))
        expanded: list[_Op] = []
        for statement in body:
            parsed = _APPLICATION_RE.match(statement)
            if not parsed:
                raise QasmError(f"cannot parse gate body statement: {statement!r}")
            inner_name = parsed.group(1)
            inner_params = tuple(
                p.strip() for p in (parsed.group(3) or "").split(",") if p.strip()
            )
            inner_qubits = []
            for token in parsed.group(4).split(","):
                token = token.strip()
                if token not in binding:
                    raise QasmError(f"unbound qubit {token!r} in gate {gate_name}")
                inner_qubits.append(binding[token])
            expanded.extend(
                _expand(inner_name, inner_params, inner_qubits, custom_gates, depth + 1)
            )
        return expanded
    raise QasmError(f"unknown gate {gate_name!r}")


def _expand_toffoli(qubits: list[int]) -> list[_Op]:
    """Standard 6-CNOT decomposition of the Toffoli gate.

    RevLib benchmarks use ``ccx`` heavily; QMR only needs the CNOT skeleton,
    but we keep the single-qubit gates so gate counts stay faithful.
    """
    if len(qubits) != 3:
        raise QasmError("ccx expects exactly 3 qubits")
    if len(set(qubits)) != 3:
        raise QasmError(f"ccx repeats a qubit: {tuple(qubits)}")
    a, b, c = qubits
    no_params: tuple[str, ...] = ()
    return [
        ("h", (c,), no_params),
        ("cx", (b, c), no_params),
        ("tdg", (c,), no_params),
        ("cx", (a, c), no_params),
        ("t", (c,), no_params),
        ("cx", (b, c), no_params),
        ("tdg", (c,), no_params),
        ("cx", (a, c), no_params),
        ("t", (b,), no_params),
        ("t", (c,), no_params),
        ("cx", (a, b), no_params),
        ("h", (c,), no_params),
        ("t", (a,), no_params),
        ("tdg", (b,), no_params),
        ("cx", (a, b), no_params),
    ]


def circuit_to_qasm(circuit: QuantumCircuit, register_name: str = "q") -> str:
    """Render a circuit as OpenQASM 2.0 text."""
    lines = [
        "OPENQASM 2.0;",
        'include "qelib1.inc";',
        f"qreg {register_name}[{circuit.num_qubits}];",
    ]
    for gate_name, qubits, params in circuit.iter_ops():
        operands = ",".join(f"{register_name}[{qubit}]" for qubit in qubits)
        if params:
            lines.append(f"{gate_name}({','.join(params)}) {operands};")
        else:
            lines.append(f"{gate_name} {operands};")
    return "\n".join(lines) + "\n"


def load_qasm(path: str | Path) -> QuantumCircuit:
    """Load an OpenQASM 2.0 file from disk."""
    path = Path(path)
    return parse_qasm(path.read_text(), name=path.stem)


def save_qasm(circuit: QuantumCircuit, path: str | Path) -> None:
    """Write a circuit to disk as OpenQASM 2.0."""
    Path(path).write_text(circuit_to_qasm(circuit))
