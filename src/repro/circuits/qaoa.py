"""QAOA circuit generation for MaxCut on random 3-regular graphs.

Section VI and Table IV of the paper evaluate the cyclic relaxation on QAOA
circuits "for solving the maximum cut problem on 3-regular graphs,
parameterized by the number of qubits and the number of cycles".  This module
reproduces that workload generator: each cycle applies one RZZ interaction per
graph edge followed by the RX mixer on every qubit, and the same cycle
structure repeats.
"""

from __future__ import annotations

import random

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.gates import Gate


def random_regular_graph(num_nodes: int, degree: int = 3, seed: int = 0) -> list[tuple[int, int]]:
    """Generate a random ``degree``-regular graph via the pairing model.

    Returns a sorted edge list with no self-loops or parallel edges.  Raises
    ``ValueError`` if ``num_nodes * degree`` is odd (no such graph exists).
    """
    if num_nodes <= degree:
        raise ValueError("need more nodes than the degree")
    if (num_nodes * degree) % 2 != 0:
        raise ValueError("num_nodes * degree must be even")
    rng = random.Random(seed)
    for _ in range(1000):
        stubs = [node for node in range(num_nodes) for _ in range(degree)]
        rng.shuffle(stubs)
        edges: set[tuple[int, int]] = set()
        ok = True
        for first, second in zip(stubs[0::2], stubs[1::2]):
            if first == second:
                ok = False
                break
            edge = (min(first, second), max(first, second))
            if edge in edges:
                ok = False
                break
            edges.add(edge)
        if ok:
            return sorted(edges)
    raise RuntimeError(
        f"failed to sample a simple {degree}-regular graph on {num_nodes} nodes"
    )


def qaoa_cycle(edges: list[tuple[int, int]], num_qubits: int,
               gamma: str = "gamma", beta: str = "beta") -> QuantumCircuit:
    """One QAOA cycle ``C_{gamma,beta}``: cost layer (RZZ per edge) + mixer (RX per qubit)."""
    cycle = QuantumCircuit(num_qubits, name="qaoa_cycle")
    for first, second in edges:
        cycle.append(Gate("rzz", (first, second), (gamma,)))
    for qubit in range(num_qubits):
        cycle.append(Gate("rx", (qubit,), (beta,)))
    return cycle


def maxcut_qaoa_circuit(
    num_qubits: int, num_cycles: int, degree: int = 3, seed: int = 0
) -> QuantumCircuit:
    """Full QAOA MaxCut circuit: Hadamard prelude plus ``num_cycles`` repeated cycles.

    The per-cycle parameters differ numerically in a real QAOA run, but as the
    paper notes they do not affect QMR, so we keep symbolic parameters.
    """
    if num_cycles <= 0:
        raise ValueError("num_cycles must be positive")
    edges = random_regular_graph(num_qubits, degree=degree, seed=seed)
    circuit = QuantumCircuit(
        num_qubits, name=f"qaoa_maxcut_q{num_qubits}_c{num_cycles}_s{seed}"
    )
    for qubit in range(num_qubits):
        circuit.append(Gate("h", (qubit,)))
    for cycle_index in range(num_cycles):
        cycle = qaoa_cycle(edges, num_qubits,
                           gamma=f"gamma{cycle_index}", beta=f"beta{cycle_index}")
        circuit.extend(cycle)
    return circuit


def qaoa_repeated_block(num_qubits: int, degree: int = 3, seed: int = 0) -> QuantumCircuit:
    """The repeating subcircuit of a QAOA circuit (input to the cyclic relaxation)."""
    edges = random_regular_graph(num_qubits, degree=degree, seed=seed)
    return qaoa_cycle(edges, num_qubits)
