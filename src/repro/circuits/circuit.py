"""The :class:`QuantumCircuit` container.

A circuit is an ordered sequence of gate applications over logical qubits
``0 .. num_qubits - 1``, exactly the object Section III of the paper calls
``C``.  Convenience methods expose the views the router and the encoders
need: the two-qubit interaction sequence, slices, repetition (for cyclic
circuits), and statistics.

Since the flat-IR refactor the class is a thin facade over
:class:`~repro.circuits.ir.CircuitIR`: gates live in parallel ``array``
columns, statistics are answered from prefix sums in O(1) (no rescans),
``sliced_by_two_qubit_gates`` returns O(1) views sharing the backing arrays,
and ``extend`` with another circuit is an array-level bulk copy.  The public
surface -- :class:`~repro.circuits.gates.Gate` objects out of ``gates`` /
iteration / indexing, the constructor signature, equality -- is unchanged;
``Gate`` objects are materialised lazily and cached.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.circuits.gates import Gate
from repro.circuits.ir import CircuitIR


class QuantumCircuit:
    """An ordered list of gates over ``num_qubits`` logical qubits."""

    __slots__ = ("num_qubits", "name", "_ir", "_gates_cache")

    def __init__(self, num_qubits: int,
                 gates: Iterable[Gate] | None = None,
                 name: str = "circuit") -> None:
        if num_qubits <= 0:
            raise ValueError("a circuit needs at least one qubit")
        self.num_qubits = num_qubits
        self.name = name
        self._ir = CircuitIR()
        self._gates_cache: list[Gate] | None = None
        if gates is not None:
            self.extend(gates)

    # ------------------------------------------------------------- internals

    @classmethod
    def from_ir(cls, num_qubits: int, ir: CircuitIR,
                name: str = "circuit") -> "QuantumCircuit":
        """Wrap an existing IR (or IR view) without copying or validating it."""
        circuit = cls.__new__(cls)
        circuit.num_qubits = num_qubits
        circuit.name = name
        circuit._ir = ir
        circuit._gates_cache = None
        return circuit

    @property
    def ir(self) -> CircuitIR:
        """The backing flat IR (a view for sliced circuits)."""
        return self._ir

    def _writable_ir(self) -> CircuitIR:
        if self._ir.is_view:
            self._ir = self._ir.compact()
        self._gates_cache = None
        return self._ir

    def _check_qubits(self, name: str, qubits: tuple[int, ...]) -> None:
        for qubit in qubits:
            if not 0 <= qubit < self.num_qubits:
                raise ValueError(
                    f"gate {name} touches qubit {qubit}, but the circuit "
                    f"only has qubits 0..{self.num_qubits - 1}"
                )

    # ------------------------------------------------------------- mutation

    def append(self, gate: Gate) -> None:
        """Append a gate, validating its qubit indices."""
        self._check_qubits(gate.name, gate.qubits)
        self._writable_ir().append(gate.name, gate.qubits, gate.params)

    def append_op(self, name: str, qubits: tuple[int, ...],
                  params: tuple[str, ...] = ()) -> None:
        """Append a gate given as plain data, skipping ``Gate`` construction.

        This is the streaming path the QASM reader, the circuit passes, and
        the routing builders use; it performs the same validation as
        :meth:`append` (arity, distinct operands, qubit range) but never
        boxes the gate.
        """
        arity = len(qubits)
        if arity == 0:
            raise ValueError("a gate must act on at least one qubit")
        if arity > 2:
            raise ValueError(
                f"gate {name} acts on {arity} qubits; decompose to one- and "
                "two-qubit gates before routing"
            )
        if arity == 2 and qubits[0] == qubits[1]:
            raise ValueError(f"gate {name} repeats a qubit: {qubits}")
        self._check_qubits(name, qubits)
        self._writable_ir().append(name, qubits, params)

    def extend(self, gates: "QuantumCircuit | Iterable[Gate]") -> None:
        """Append gates; another circuit is bulk-copied at the array level."""
        if isinstance(gates, QuantumCircuit):
            other = gates._ir
            if other.max_qubit >= self.num_qubits:
                # The shared root may hold wider gates than this window; fall
                # back to a per-gate check only when the cheap bound trips.
                strict_max = other._window_max_qubit()
                if strict_max >= self.num_qubits:
                    raise ValueError(
                        f"gate touches qubit {strict_max}, but the circuit "
                        f"only has qubits 0..{self.num_qubits - 1}"
                    )
            self._writable_ir().extend_ir(other)
            return
        ir = None
        for gate in gates:
            self._check_qubits(gate.name, gate.qubits)
            if ir is None:
                ir = self._writable_ir()
            ir.append(gate.name, gate.qubits, gate.params)

    # --------------------------------------------------------------- queries

    def __len__(self) -> int:
        return len(self._ir)

    def __iter__(self) -> Iterator[Gate]:
        return iter(self.gates)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return self.gates[index]
        length = len(self._ir)
        if index < 0:
            index += length
        name, qubits, params = self._ir.gate(index)
        return Gate(name, qubits, params)

    def __eq__(self, other) -> bool:
        if not isinstance(other, QuantumCircuit):
            return NotImplemented
        return (self.num_qubits == other.num_qubits
                and self.name == other.name
                and self.gates == other.gates)

    @property
    def gates(self) -> list[Gate]:
        """The gates as :class:`Gate` objects (materialised lazily, cached).

        Returns a fresh list each access (sharing the cached ``Gate``
        objects), so mutating it never touches the circuit -- the columns
        are the single source of truth; use :meth:`append`/:meth:`extend`.
        """
        if self._gates_cache is None or len(self._gates_cache) != len(self._ir):
            self._gates_cache = [Gate(name, qubits, params)
                                 for name, qubits, params in self._ir.iter_ops()]
        return list(self._gates_cache)

    def iter_ops(self) -> Iterator[tuple[str, tuple[int, ...], tuple[str, ...]]]:
        """Yield ``(name, qubits, params)`` triples without boxing gates."""
        return self._ir.iter_ops()

    @property
    def two_qubit_gates(self) -> list[Gate]:
        """All gates acting on two qubits (including SWAPs), in order."""
        ir = self._ir
        return [Gate(*ir.gate(index)) for index in ir.two_qubit_indices()]

    @property
    def num_two_qubit_gates(self) -> int:
        return self._ir.num_two_qubit

    @property
    def num_single_qubit_gates(self) -> int:
        return len(self._ir) - self._ir.num_two_qubit

    @property
    def num_swaps(self) -> int:
        return self._ir.num_swaps

    def interaction_sequence(self) -> list[tuple[int, int]]:
        """The ordered list of qubit pairs touched by two-qubit gates.

        This is the only information the QMR encoders need about the circuit.
        """
        return self._ir.interaction_sequence()

    def used_qubits(self) -> set[int]:
        """Logical qubits that appear in at least one gate."""
        return self._ir.used_qubits()

    def depth(self) -> int:
        """Circuit depth: length of the longest gate dependency chain."""
        return self._ir.depth(self.num_qubits)

    # ------------------------------------------------------------ transforms

    def sliced_by_two_qubit_gates(self, slice_size: int) -> list["QuantumCircuit"]:
        """Split into consecutive slices containing ``slice_size`` two-qubit gates.

        Single-qubit gates travel with the two-qubit gate that follows them
        (or the final slice if none follows), matching the paper's definition
        of slice size as "number of two-qubit gates per slice".  Slices are
        O(1) views over this circuit's columns -- no gate is copied.
        """
        bounds = self._ir.slice_bounds_by_two_qubit_gates(slice_size)
        return [QuantumCircuit.from_ir(self.num_qubits,
                                       self._ir.view(start, stop),
                                       name=f"{self.name}[slice {index}]")
                for index, (start, stop) in enumerate(bounds)]

    def repeated(self, times: int) -> "QuantumCircuit":
        """Return this circuit concatenated with itself ``times`` times."""
        if times <= 0:
            raise ValueError("times must be positive")
        repeated = QuantumCircuit(self.num_qubits, name=f"{self.name}x{times}")
        for _ in range(times):
            repeated.extend(self)
        return repeated

    def without_single_qubit_gates(self) -> "QuantumCircuit":
        """Return a copy containing only the two-qubit gates (QMR-relevant part)."""
        filtered = QuantumCircuit(self.num_qubits, name=f"{self.name}(2q)")
        ir = self._ir
        target = filtered._writable_ir()
        for index in ir.two_qubit_indices():
            name, qubits, params = ir.gate(index)
            target.append(name, qubits, params)
        return filtered

    def copy(self) -> "QuantumCircuit":
        """An independent copy (fresh backing arrays)."""
        return QuantumCircuit.from_ir(self.num_qubits, self._ir.compact(),
                                      self.name)

    # --------------------------------------------------------------- pickling

    def __getstate__(self) -> dict:
        return {"num_qubits": self.num_qubits, "name": self.name,
                "ir": self._ir if not self._ir.is_view else self._ir.compact()}

    def __setstate__(self, state: dict) -> None:
        self.num_qubits = state["num_qubits"]
        self.name = state["name"]
        self._ir = state["ir"]
        self._gates_cache = None

    def __repr__(self) -> str:
        return (
            f"QuantumCircuit(name={self.name!r}, qubits={self.num_qubits}, "
            f"gates={len(self)}, two_qubit={self.num_two_qubit_gates})"
        )
