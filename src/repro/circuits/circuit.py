"""The :class:`QuantumCircuit` container.

A circuit is an ordered sequence of :class:`~repro.circuits.gates.Gate`
applications over logical qubits ``0 .. num_qubits - 1``, exactly the object
Section III of the paper calls ``C``.  Convenience methods expose the views
the router and the encoders need: the two-qubit interaction sequence, slices,
repetition (for cyclic circuits), and statistics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator

from repro.circuits.gates import Gate


@dataclass
class QuantumCircuit:
    """An ordered list of gates over ``num_qubits`` logical qubits."""

    num_qubits: int
    gates: list[Gate] = field(default_factory=list)
    name: str = "circuit"

    def __post_init__(self) -> None:
        if self.num_qubits <= 0:
            raise ValueError("a circuit needs at least one qubit")
        for gate in self.gates:
            self._check_gate(gate)

    def _check_gate(self, gate: Gate) -> None:
        for qubit in gate.qubits:
            if not 0 <= qubit < self.num_qubits:
                raise ValueError(
                    f"gate {gate.name} touches qubit {qubit}, but the circuit "
                    f"only has qubits 0..{self.num_qubits - 1}"
                )

    # ------------------------------------------------------------- mutation

    def append(self, gate: Gate) -> None:
        """Append a gate, validating its qubit indices."""
        self._check_gate(gate)
        self.gates.append(gate)

    def extend(self, gates: Iterable[Gate]) -> None:
        for gate in gates:
            self.append(gate)

    # --------------------------------------------------------------- queries

    def __len__(self) -> int:
        return len(self.gates)

    def __iter__(self) -> Iterator[Gate]:
        return iter(self.gates)

    def __getitem__(self, index):
        return self.gates[index]

    @property
    def two_qubit_gates(self) -> list[Gate]:
        """All gates acting on two qubits (including SWAPs), in order."""
        return [gate for gate in self.gates if gate.is_two_qubit]

    @property
    def num_two_qubit_gates(self) -> int:
        return sum(1 for gate in self.gates if gate.is_two_qubit)

    @property
    def num_single_qubit_gates(self) -> int:
        return sum(1 for gate in self.gates if gate.is_single_qubit)

    @property
    def num_swaps(self) -> int:
        return sum(1 for gate in self.gates if gate.name == "swap")

    def interaction_sequence(self) -> list[tuple[int, int]]:
        """The ordered list of qubit pairs touched by two-qubit gates.

        This is the only information the QMR encoders need about the circuit.
        """
        return [tuple(gate.qubits) for gate in self.gates if gate.is_two_qubit]

    def used_qubits(self) -> set[int]:
        """Logical qubits that appear in at least one gate."""
        used: set[int] = set()
        for gate in self.gates:
            used.update(gate.qubits)
        return used

    def depth(self) -> int:
        """Circuit depth: length of the longest gate dependency chain."""
        frontier = [0] * self.num_qubits
        for gate in self.gates:
            level = max(frontier[q] for q in gate.qubits) + 1
            for qubit in gate.qubits:
                frontier[qubit] = level
        return max(frontier, default=0)

    # ------------------------------------------------------------ transforms

    def sliced_by_two_qubit_gates(self, slice_size: int) -> list["QuantumCircuit"]:
        """Split into consecutive slices containing ``slice_size`` two-qubit gates.

        Single-qubit gates travel with the two-qubit gate that follows them
        (or the final slice if none follows), matching the paper's definition
        of slice size as "number of two-qubit gates per slice".
        """
        if slice_size <= 0:
            raise ValueError("slice_size must be positive")
        slices: list[QuantumCircuit] = []
        current = QuantumCircuit(self.num_qubits, name=f"{self.name}[slice {len(slices)}]")
        count = 0
        for gate in self.gates:
            current.append(gate)
            if gate.is_two_qubit:
                count += 1
                if count == slice_size:
                    slices.append(current)
                    current = QuantumCircuit(
                        self.num_qubits, name=f"{self.name}[slice {len(slices)}]"
                    )
                    count = 0
        if current.gates:
            slices.append(current)
        if not slices:
            slices.append(current)
        return slices

    def repeated(self, times: int) -> "QuantumCircuit":
        """Return this circuit concatenated with itself ``times`` times."""
        if times <= 0:
            raise ValueError("times must be positive")
        repeated = QuantumCircuit(self.num_qubits, name=f"{self.name}x{times}")
        for _ in range(times):
            repeated.extend(self.gates)
        return repeated

    def without_single_qubit_gates(self) -> "QuantumCircuit":
        """Return a copy containing only the two-qubit gates (QMR-relevant part)."""
        filtered = QuantumCircuit(self.num_qubits, name=f"{self.name}(2q)")
        filtered.extend(gate for gate in self.gates if gate.is_two_qubit)
        return filtered

    def copy(self) -> "QuantumCircuit":
        return QuantumCircuit(self.num_qubits, list(self.gates), self.name)

    def __repr__(self) -> str:
        return (
            f"QuantumCircuit(name={self.name!r}, qubits={self.num_qubits}, "
            f"gates={len(self.gates)}, two_qubit={self.num_two_qubit_gates})"
        )
