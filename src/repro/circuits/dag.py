"""Dependency DAG and topological layers of a circuit.

The heuristic baselines (SABRE, the TKET-style router, and the MQT-style A*
router) all operate on the circuit's dependency structure rather than on its
flat gate list: a gate becomes executable once every earlier gate sharing a
qubit with it has been executed.  This module provides that structure.

Since the flat-IR refactor the DAG is stored in CSR (compressed sparse row)
form, specialised to this graph's fixed arity: every gate touches at most
two qubits, so every node has at most two predecessors and two successors
and the row pointers are implicit.  Four flat ``array('i')`` columns --
``pred0``/``pred1`` and ``succ0``/``succ1``, ``-1`` marking an absent edge
-- are filled in a single iterative pass over the circuit's qubit columns;
no per-gate node object or Python set is allocated.  The routers consume
the columns directly (see :meth:`CircuitDag.indegrees`); generic CSR
``ptr``/``idx`` buffers and the legacy :attr:`CircuitDag.nodes` view are
derived lazily for consumers that want them.
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass, field

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.gates import Gate


@dataclass
class DagNode:
    """A gate together with its dependency links (compatibility view)."""

    index: int
    gate: Gate
    predecessors: set[int] = field(default_factory=set)
    successors: set[int] = field(default_factory=set)


class CircuitDag:
    """Gate dependency DAG built from qubit sharing.

    Node ``i`` depends on node ``j`` iff ``j`` is the most recent earlier gate
    acting on one of ``i``'s qubits.
    """

    __slots__ = ("circuit", "pred0", "pred1", "succ0", "succ1", "_num_gates",
                 "_csr", "_nodes")

    def __init__(self, circuit: QuantumCircuit) -> None:
        self.circuit = circuit
        ir = circuit.ir
        num_gates = len(ir)
        qa, qb = ir.qa, ir.qb
        start = ir.start

        # Scratch as plain lists (fastest int storage inside the loop); the
        # persistent columns are converted to arrays once at the end.
        minus_ones = [-1] * num_gates
        pred0 = minus_ones[:]
        pred1 = minus_ones[:]
        succ0 = minus_ones[:]
        succ1 = minus_ones[:]
        last_on_qubit = [-1] * circuit.num_qubits
        for index in range(num_gates):
            absolute = start + index
            a = qa[absolute]
            b = qb[absolute]
            pa = last_on_qubit[a]
            last_on_qubit[a] = index
            if b >= 0:
                pb = last_on_qubit[b]
                last_on_qubit[b] = index
                if pb == pa:
                    pb = -1
            else:
                pb = -1
            if pa >= 0:
                pred0[index] = pa
                # Successor slots fill in node order, so each pair comes out
                # ascending without a sort.
                if succ0[pa] < 0:
                    succ0[pa] = index
                else:
                    succ1[pa] = index
            if pb >= 0:
                # Keep the invariant "pred1 set only if pred0 set" so a node
                # with no predecessors is recognisable from pred0 alone.
                if pa >= 0:
                    pred1[index] = pb
                else:
                    pred0[index] = pb
                if succ0[pb] < 0:
                    succ0[pb] = index
                else:
                    succ1[pb] = index

        self._num_gates = num_gates
        self.pred0 = array("i", pred0)
        self.pred1 = array("i", pred1)
        self.succ0 = array("i", succ0)
        self.succ1 = array("i", succ1)
        self._csr: tuple[array, array, array, array] | None = None
        self._nodes: list[DagNode] | None = None

    def __len__(self) -> int:
        return self._num_gates

    # ----------------------------------------------------------- array access

    def indegrees(self) -> list[int]:
        """A fresh per-node predecessor count (the routers' work array)."""
        pred0, pred1 = self.pred0, self.pred1
        return [(pred0[i] >= 0) + (pred1[i] >= 0)
                for i in range(self._num_gates)]

    def initial_front(self) -> list[int]:
        """Indices of the nodes with no predecessors, ascending."""
        pred0 = self.pred0
        return [i for i in range(self._num_gates) if pred0[i] < 0]

    def successor_range(self, index: int) -> list[int]:
        """The successor indices of ``index`` (ascending, at most two)."""
        first = self.succ0[index]
        if first < 0:
            return []
        second = self.succ1[index]
        return [first] if second < 0 else [first, second]

    def predecessor_range(self, index: int) -> list[int]:
        """The predecessor indices of ``index`` (at most two)."""
        first = self.pred0[index]
        if first < 0:
            return []
        second = self.pred1[index]
        return [first] if second < 0 else [first, second]

    def csr(self) -> tuple[array, array, array, array]:
        """Generic ``(pred_ptr, pred_idx, succ_ptr, succ_idx)`` CSR buffers.

        Derived lazily from the fixed-arity columns for consumers that want
        classic row-pointer iteration.
        """
        if self._csr is None:
            num_gates = self._num_gates
            pred_ptr = array("i", bytes(4 * (num_gates + 1)))
            succ_ptr = array("i", bytes(4 * (num_gates + 1)))
            pred_idx = array("i")
            succ_idx = array("i")
            for index in range(num_gates):
                pred_ptr[index] = len(pred_idx)
                pred_idx.extend(self.predecessor_range(index))
                succ_ptr[index] = len(succ_idx)
                succ_idx.extend(self.successor_range(index))
            pred_ptr[num_gates] = len(pred_idx)
            succ_ptr[num_gates] = len(succ_idx)
            self._csr = (pred_ptr, pred_idx, succ_ptr, succ_idx)
        return self._csr

    def layer_indices(self) -> list[list[int]]:
        """Topological (ASAP) layers as node-index lists, iteratively."""
        num_gates = self._num_gates
        level = [0] * num_gates
        layers: list[list[int]] = []
        pred0, pred1 = self.pred0, self.pred1
        for index in range(num_gates):  # nodes are already topologically sorted
            depth = 0
            first = pred0[index]
            if first >= 0:
                depth = level[first] + 1
            second = pred1[index]
            if second >= 0:
                candidate = level[second] + 1
                if candidate > depth:
                    depth = candidate
            level[index] = depth
            if depth == len(layers):
                layers.append([])
            layers[depth].append(index)
        return layers

    # ------------------------------------------------------ compatibility API

    @property
    def nodes(self) -> list[DagNode]:
        """Per-gate :class:`DagNode` objects (materialised lazily)."""
        if self._nodes is None:
            gates = self.circuit.gates
            self._nodes = [
                DagNode(index, gates[index],
                        set(self.predecessor_range(index)),
                        set(self.successor_range(index)))
                for index in range(self._num_gates)
            ]
        return self._nodes

    def front_layer(self, executed: set[int]) -> list[DagNode]:
        """Nodes whose predecessors have all been executed and which are not yet executed."""
        nodes = self.nodes
        pred0, pred1 = self.pred0, self.pred1
        result = []
        for index in range(self._num_gates):
            if index in executed:
                continue
            first = pred0[index]
            if first >= 0 and first not in executed:
                continue
            second = pred1[index]
            if second >= 0 and second not in executed:
                continue
            result.append(nodes[index])
        return result

    def successors_of(self, index: int) -> list[DagNode]:
        nodes = self.nodes
        return [nodes[successor] for successor in self.successor_range(index)]

    def layers(self) -> list[list[DagNode]]:
        """Partition the nodes into topological layers (ASAP schedule)."""
        nodes = self.nodes
        return [[nodes[index] for index in layer]
                for layer in self.layer_indices()]

    def two_qubit_layers(self) -> list[list[DagNode]]:
        """Topological layers restricted to two-qubit gates.

        This is the view the MQT-style A* mapper works on: it advances layer
        by layer, making every gate of a layer executable before moving on.
        """
        dependency_only_two_qubit = CircuitDag(self.circuit.without_single_qubit_gates())
        return dependency_only_two_qubit.layers()


def topological_layers(circuit: QuantumCircuit) -> list[list[Gate]]:
    """Return the ASAP topological layers of ``circuit`` as lists of gates."""
    dag = CircuitDag(circuit)
    gates = circuit.gates
    return [[gates[index] for index in layer] for layer in dag.layer_indices()]
