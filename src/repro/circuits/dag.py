"""Dependency DAG and topological layers of a circuit.

The heuristic baselines (SABRE, the TKET-style router, and the MQT-style A*
router) all operate on the circuit's dependency structure rather than on its
flat gate list: a gate becomes executable once every earlier gate sharing a
qubit with it has been executed.  This module provides that structure.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.gates import Gate


@dataclass
class DagNode:
    """A gate together with its dependency links."""

    index: int
    gate: Gate
    predecessors: set[int] = field(default_factory=set)
    successors: set[int] = field(default_factory=set)


class CircuitDag:
    """Gate dependency DAG built from qubit sharing.

    Node ``i`` depends on node ``j`` iff ``j`` is the most recent earlier gate
    acting on one of ``i``'s qubits.
    """

    def __init__(self, circuit: QuantumCircuit) -> None:
        self.circuit = circuit
        self.nodes: list[DagNode] = []
        last_on_qubit: dict[int, int] = {}
        for index, gate in enumerate(circuit.gates):
            node = DagNode(index, gate)
            for qubit in gate.qubits:
                if qubit in last_on_qubit:
                    predecessor = last_on_qubit[qubit]
                    node.predecessors.add(predecessor)
                    self.nodes[predecessor].successors.add(index)
                last_on_qubit[qubit] = index
            self.nodes.append(node)

    def __len__(self) -> int:
        return len(self.nodes)

    def front_layer(self, executed: set[int]) -> list[DagNode]:
        """Nodes whose predecessors have all been executed and which are not yet executed."""
        return [
            node for node in self.nodes
            if node.index not in executed
            and node.predecessors.issubset(executed)
        ]

    def successors_of(self, index: int) -> list[DagNode]:
        return [self.nodes[successor] for successor in sorted(self.nodes[index].successors)]

    def layers(self) -> list[list[DagNode]]:
        """Partition the nodes into topological layers (ASAP schedule)."""
        level_of: dict[int, int] = {}
        layers: list[list[DagNode]] = []
        for node in self.nodes:  # nodes are already in topological order
            level = 0
            for predecessor in node.predecessors:
                level = max(level, level_of[predecessor] + 1)
            level_of[node.index] = level
            while len(layers) <= level:
                layers.append([])
            layers[level].append(node)
        return layers

    def two_qubit_layers(self) -> list[list[DagNode]]:
        """Topological layers restricted to two-qubit gates.

        This is the view the MQT-style A* mapper works on: it advances layer
        by layer, making every gate of a layer executable before moving on.
        """
        dependency_only_two_qubit = CircuitDag(self.circuit.without_single_qubit_gates())
        return dependency_only_two_qubit.layers()


def topological_layers(circuit: QuantumCircuit) -> list[list[Gate]]:
    """Return the ASAP topological layers of ``circuit`` as lists of gates."""
    return [[node.gate for node in layer] for layer in CircuitDag(circuit).layers()]
