"""Gate scheduling and timing analysis.

Routing decisions change more than the gate count: every inserted SWAP also
lengthens the schedule, and the paper motivates SWAP minimisation partly by
the decoherence cost of longer circuits.  This module provides the timing
view of a circuit:

* :class:`GateDurations` -- per-gate-name durations (defaults modelled on
  superconducting devices, in nanoseconds);
* :func:`asap_schedule` / :func:`alap_schedule` -- as-soon-as-possible and
  as-late-as-possible start times under qubit-exclusion dependencies;
* :class:`Schedule` -- the resulting start/finish times, makespan, critical
  path, and per-timestep parallelism profile.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.gates import Gate

#: Default durations (ns), loosely modelled on IBM backend calibrations.
DEFAULT_DURATIONS = {
    "single": 35.0,
    "cx": 300.0,
    "swap": 900.0,  # three back-to-back CNOTs
    "measure": 700.0,
    "barrier": 0.0,
}


@dataclass(frozen=True)
class GateDurations:
    """Lookup table from gate name to duration.

    Unknown two-qubit gates default to the CX duration and unknown
    single-qubit gates to the generic single-qubit duration, so circuits with
    exotic gate names still schedule sensibly.
    """

    durations: dict[str, float] = field(default_factory=dict)

    def table(self) -> dict[str, float]:
        """The merged name->duration table (build once, look up per gate)."""
        return {**DEFAULT_DURATIONS, **self.durations}

    def of(self, gate: Gate) -> float:
        table = self.table()
        if gate.name in table:
            return table[gate.name]
        return table["cx"] if gate.is_two_qubit else table["single"]

    def of_op(self, name: str, qubits: tuple[int, ...],
              table: dict[str, float]) -> float:
        """Duration of a gate given as plain data against a prebuilt table."""
        if name in table:
            return table[name]
        return table["cx"] if len(qubits) == 2 else table["single"]


@dataclass
class ScheduledGate:
    """A gate with its assigned start and finish time."""

    gate: Gate
    index: int
    start: float
    finish: float

    @property
    def duration(self) -> float:
        return self.finish - self.start


@dataclass
class Schedule:
    """A full schedule: one :class:`ScheduledGate` per circuit gate, in order."""

    entries: list[ScheduledGate]
    num_qubits: int

    @property
    def makespan(self) -> float:
        """Total schedule length (the finish time of the last gate)."""
        return max((entry.finish for entry in self.entries), default=0.0)

    def start_of(self, index: int) -> float:
        return self.entries[index].start

    def critical_path(self) -> list[int]:
        """Indices of gates on one longest dependency chain."""
        if not self.entries:
            return []
        # Walk backwards from the gate that finishes last, at each step moving
        # to the predecessor on a shared qubit that finishes exactly when this
        # gate starts.
        by_finish: dict[int, ScheduledGate] = {e.index: e for e in self.entries}
        current = max(self.entries, key=lambda e: e.finish)
        path = [current.index]
        while current.start > 0:
            predecessor = None
            for candidate in self.entries:
                if candidate.index >= current.index:
                    continue
                if not set(candidate.gate.qubits) & set(current.gate.qubits):
                    continue
                if abs(candidate.finish - current.start) < 1e-9:
                    predecessor = candidate
            if predecessor is None:
                break
            path.append(predecessor.index)
            current = predecessor
        path.reverse()
        return path

    def parallelism_profile(self, resolution: int = 20) -> list[int]:
        """Number of gates active in each of ``resolution`` equal time bins."""
        if not self.entries or self.makespan == 0:
            return [0] * resolution
        bin_width = self.makespan / resolution
        profile = []
        for bin_index in range(resolution):
            bin_start = bin_index * bin_width
            bin_end = bin_start + bin_width
            active = sum(1 for entry in self.entries
                         if entry.start < bin_end and entry.finish > bin_start
                         and entry.duration > 0)
            profile.append(active)
        return profile

    def qubit_busy_time(self, qubit: int) -> float:
        """Total time ``qubit`` spends inside gates."""
        return sum(entry.duration for entry in self.entries
                   if qubit in entry.gate.qubits)

    def idle_time(self, qubit: int) -> float:
        """Time ``qubit`` spends waiting between its first and last gate."""
        touching = [entry for entry in self.entries if qubit in entry.gate.qubits]
        if not touching:
            return 0.0
        span = max(e.finish for e in touching) - min(e.start for e in touching)
        return span - sum(e.duration for e in touching)


def asap_schedule(circuit: QuantumCircuit,
                  durations: GateDurations | None = None) -> Schedule:
    """Schedule every gate as soon as its qubits are free."""
    durations = durations or GateDurations()
    table = durations.table()
    qubit_free_at = [0.0] * circuit.num_qubits
    entries: list[ScheduledGate] = []
    for index, gate in enumerate(circuit.gates):
        start = max(qubit_free_at[q] for q in gate.qubits)
        finish = start + durations.of_op(gate.name, gate.qubits, table)
        for qubit in gate.qubits:
            qubit_free_at[qubit] = finish
        entries.append(ScheduledGate(gate, index, start, finish))
    return Schedule(entries, circuit.num_qubits)


def alap_schedule(circuit: QuantumCircuit,
                  durations: GateDurations | None = None) -> Schedule:
    """Schedule every gate as late as possible without extending the makespan."""
    durations = durations or GateDurations()
    table = durations.table()
    makespan = asap_schedule(circuit, durations).makespan
    qubit_needed_at = [makespan] * circuit.num_qubits
    reversed_entries: list[ScheduledGate] = []
    gates = circuit.gates
    for index in range(len(gates) - 1, -1, -1):
        gate = gates[index]
        finish = min(qubit_needed_at[q] for q in gate.qubits)
        start = finish - durations.of_op(gate.name, gate.qubits, table)
        for qubit in gate.qubits:
            qubit_needed_at[qubit] = start
        reversed_entries.append(ScheduledGate(gate, index, start, finish))
    return Schedule(list(reversed(reversed_entries)), circuit.num_qubits)


def schedule_length(circuit: QuantumCircuit,
                    durations: GateDurations | None = None) -> float:
    """Convenience wrapper: the ASAP makespan of ``circuit``."""
    return asap_schedule(circuit, durations).makespan


def routing_latency_overhead(original: QuantumCircuit, routed: QuantumCircuit,
                             durations: GateDurations | None = None) -> float:
    """How much longer the routed circuit's schedule is than the original's.

    Returns the ratio ``routed_makespan / original_makespan`` (1.0 means the
    inserted SWAPs fit entirely into idle time).
    """
    original_length = schedule_length(original, durations)
    routed_length = schedule_length(routed, durations)
    if original_length == 0:
        return 1.0 if routed_length == 0 else float("inf")
    return routed_length / original_length
