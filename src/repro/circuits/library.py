"""Named benchmark suite standing in for the paper's 160-circuit collection.

The paper's evaluation uses circuits from the RevLib, Quipper, and ScaffoldCC
collections (via the MQT qmap examples), spanning 3-16 qubits and 5 to over
200,000 two-qubit gates with a median of 123.  Those QASM files are not
redistributable here, so this module provides a deterministic synthetic suite
with the same *shape*:

* a set of *named* small benchmarks whose qubit and two-qubit-gate counts
  match well-known RevLib circuits (``miller_11``, ``3_17_13``, ...), so the
  per-circuit plots (Fig. 10/11) have recognisable x-axes; and
* :func:`benchmark_suite`, which generates a full log-spread distribution of
  ``count`` circuits between configurable size bounds, defaulting to the
  paper's 160-circuit envelope.

Users with the original QASM files can load them with
:func:`repro.circuits.qasm.load_qasm` and run the same experiment harness.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.random_circuits import random_circuit


@dataclass(frozen=True)
class BenchmarkCircuit:
    """A named benchmark: metadata plus the generated circuit."""

    name: str
    num_qubits: int
    num_two_qubit_gates: int
    circuit: QuantumCircuit
    source: str = "synthetic"


#: (name, qubits, two-qubit gates) of well-known small RevLib circuits, taken
#: from the published size tables of the MQT qmap example set.  The circuits
#: generated under these names are synthetic but size-faithful.
NAMED_BENCHMARK_SIZES: list[tuple[str, int, int]] = [
    ("ex-1_166", 3, 9),
    ("ham3_102", 3, 11),
    ("3_17_13", 3, 17),
    ("miller_11", 3, 23),
    ("4gt11_84", 5, 9),
    ("4mod5-v0_20", 5, 10),
    ("4mod5-v1_22", 5, 11),
    ("mod5d1_63", 5, 13),
    ("4gt11_83", 5, 14),
    ("4gt11_82", 5, 18),
    ("rd32-v0_66", 4, 16),
    ("rd32-v1_68", 4, 16),
    ("alu-v0_27", 5, 17),
    ("alu-v1_28", 5, 18),
    ("alu-v1_29", 5, 17),
    ("alu-v2_33", 5, 17),
    ("alu-v3_34", 5, 24),
    ("alu-v3_35", 5, 18),
    ("alu-v4_37", 5, 18),
    ("4mod5-v0_19", 5, 16),
    ("4mod5-v1_24", 5, 16),
    ("4mod5-bdd_287", 7, 31),
    ("alu-bdd_288", 7, 38),
    ("decod24-v0_38", 4, 23),
    ("decod24-v1_41", 4, 38),
    ("decod24-v2_43", 4, 22),
    ("4gt13_92", 5, 30),
    ("4gt13-v1_93", 5, 30),
    ("4gt5_75", 5, 38),
    ("mod5mils_65", 5, 16),
    ("qe_qft_4", 4, 30),
    ("qe_qft_5", 5, 50),
    ("xor5_254", 6, 5),
    ("graycode6_47", 6, 5),
    ("ising_model_10", 10, 90),
    ("qaoa_like_12", 12, 54),
    ("sym6_145", 7, 1701),
    ("rd73_140", 10, 76),
    ("sys6-v0_111", 10, 62),
    ("wim_266", 11, 427),
    ("cm152a_212", 12, 532),
    ("z4_268", 11, 1343),
    ("adr4_197", 13, 1498),
    ("radd_250", 13, 1405),
    ("cycle10_2_110", 12, 2648),
    ("square_root_7", 15, 3089),
    ("ham15_107", 15, 3858),
    ("misex1_241", 15, 2100),
]


def get_benchmark(name: str, seed: int = 7) -> BenchmarkCircuit:
    """Return the named synthetic benchmark.

    Raises ``KeyError`` for unknown names; :data:`NAMED_BENCHMARK_SIZES` lists
    what is available.
    """
    for bench_name, qubits, gates in NAMED_BENCHMARK_SIZES:
        if bench_name == name:
            circuit = random_circuit(
                qubits, gates, seed=seed + _stable_hash(name),
                interaction_bias=0.5, name=name,
            )
            return BenchmarkCircuit(name, qubits, gates, circuit)
    raise KeyError(f"unknown benchmark {name!r}")


def named_benchmarks(max_two_qubit_gates: int | None = None, seed: int = 7) -> list[BenchmarkCircuit]:
    """All named benchmarks, optionally filtered by two-qubit gate count."""
    benchmarks = []
    for name, qubits, gates in NAMED_BENCHMARK_SIZES:
        if max_two_qubit_gates is not None and gates > max_two_qubit_gates:
            continue
        benchmarks.append(get_benchmark(name, seed=seed))
    return benchmarks


def benchmark_suite(
    count: int = 160,
    min_qubits: int = 3,
    max_qubits: int = 16,
    min_two_qubit_gates: int = 5,
    max_two_qubit_gates: int = 200_000,
    seed: int = 11,
) -> list[BenchmarkCircuit]:
    """Generate a suite with a log-uniform spread of two-qubit gate counts.

    The default bounds match the paper's description of its 160-circuit
    collection (3-16 qubits, 5 to over 200k two-qubit gates).  For experiments
    with the pure-Python solver use smaller ``count`` / ``max_two_qubit_gates``
    (see :mod:`repro.analysis.suite` for the scaled presets).
    """
    if count <= 0:
        raise ValueError("count must be positive")
    if min_two_qubit_gates <= 0 or max_two_qubit_gates < min_two_qubit_gates:
        raise ValueError("invalid two-qubit gate bounds")
    if min_qubits < 2 or max_qubits < min_qubits:
        raise ValueError("invalid qubit bounds")

    suite: list[BenchmarkCircuit] = []
    log_low = math.log(min_two_qubit_gates)
    log_high = math.log(max_two_qubit_gates)
    for index in range(count):
        fraction = index / max(1, count - 1)
        gates = round(math.exp(log_low + fraction * (log_high - log_low)))
        qubits = min_qubits + round(fraction * (max_qubits - min_qubits))
        qubits = max(min_qubits, min(max_qubits, qubits))
        name = f"suite_{index:03d}_q{qubits}_g{gates}"
        circuit = random_circuit(
            qubits, gates, seed=seed + index, interaction_bias=0.4, name=name
        )
        suite.append(BenchmarkCircuit(name, qubits, gates, circuit))
    return suite


def _stable_hash(text: str) -> int:
    """Deterministic small hash (Python's ``hash`` is salted per process)."""
    value = 0
    for character in text:
        value = (value * 131 + ord(character)) % 1_000_003
    return value
