"""Structured circuit generators (QFT, GHZ, adders, and friends).

The paper's benchmark collection mixes reversible-logic circuits with
structured kernels (its named set includes ``qe_qft_*`` and
``ising_model_10``).  These generators build the structured kernels exactly,
so examples and tests can exercise routing on circuits whose interaction
patterns are *known* rather than random:

* :func:`qft_circuit` -- the quantum Fourier transform (all-to-all controlled
  phases), the classic worst case for limited connectivity;
* :func:`ghz_circuit` -- a CNOT fan-out chain, the classic best case;
* :func:`bernstein_vazirani_circuit` -- one CNOT per secret bit, all sharing
  a target;
* :func:`cuccaro_adder_circuit` -- the ripple-carry adder, a nearest-neighbour
  friendly pattern;
* :func:`ising_model_circuit` -- nearest-neighbour ZZ interactions repeated
  over Trotter steps, matching the paper's ``ising_model_10`` benchmark;
* :func:`hidden_shift_circuit` -- a CZ-pattern circuit parameterised by a
  bitmask.
"""

from __future__ import annotations

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.gates import Gate


def qft_circuit(num_qubits: int, include_swaps: bool = False) -> QuantumCircuit:
    """The quantum Fourier transform on ``num_qubits`` qubits.

    Every qubit pair interacts through a controlled phase, which makes QFT a
    stress test for any router: on a line architecture the SWAP overhead is
    quadratic.  ``include_swaps`` appends the final bit-reversal SWAP network.
    """
    if num_qubits < 1:
        raise ValueError("QFT needs at least one qubit")
    circuit = QuantumCircuit(num_qubits, name=f"qft_{num_qubits}")
    for target in range(num_qubits):
        circuit.append(Gate("h", (target,)))
        for control in range(target + 1, num_qubits):
            angle = f"pi/{2 ** (control - target)}"
            circuit.append(Gate("cp", (control, target), (angle,)))
    if include_swaps:
        for low in range(num_qubits // 2):
            high = num_qubits - 1 - low
            if low != high:
                circuit.append(Gate("swap", (low, high)))
    return circuit


def ghz_circuit(num_qubits: int, linear: bool = True) -> QuantumCircuit:
    """A GHZ-state preparation circuit.

    ``linear=True`` chains CNOTs qubit-to-qubit (routes for free on a line);
    ``linear=False`` fans every CNOT out from qubit 0 (requires routing on
    anything but a star-shaped device).
    """
    if num_qubits < 2:
        raise ValueError("GHZ needs at least two qubits")
    circuit = QuantumCircuit(num_qubits, name=f"ghz_{num_qubits}")
    circuit.append(Gate("h", (0,)))
    for qubit in range(1, num_qubits):
        control = qubit - 1 if linear else 0
        circuit.append(Gate("cx", (control, qubit)))
    return circuit


def bernstein_vazirani_circuit(secret: str) -> QuantumCircuit:
    """Bernstein-Vazirani for the given secret bitstring.

    Uses ``len(secret)`` data qubits plus one ancilla (the last qubit); each
    ``1`` in the secret contributes one CNOT onto the ancilla, so all
    two-qubit gates share a target -- a star-shaped interaction graph.
    """
    if not secret or any(bit not in "01" for bit in secret):
        raise ValueError("secret must be a non-empty bitstring")
    num_qubits = len(secret) + 1
    ancilla = num_qubits - 1
    circuit = QuantumCircuit(num_qubits, name=f"bv_{secret}")
    circuit.append(Gate("x", (ancilla,)))
    for qubit in range(num_qubits):
        circuit.append(Gate("h", (qubit,)))
    for index, bit in enumerate(secret):
        if bit == "1":
            circuit.append(Gate("cx", (index, ancilla)))
    for qubit in range(len(secret)):
        circuit.append(Gate("h", (qubit,)))
    return circuit


def cuccaro_adder_circuit(num_bits: int) -> QuantumCircuit:
    """The Cuccaro ripple-carry adder on two ``num_bits``-bit registers.

    Register layout: ``a_0..a_{n-1}``, ``b_0..b_{n-1}``, carry-in, carry-out.
    The MAJ / UMA ladder structure makes this circuit nearly
    nearest-neighbour, so good routers should add very few SWAPs on a line.
    Toffoli gates are decomposed into the standard 6-CNOT construction so the
    output contains only one- and two-qubit gates.
    """
    if num_bits < 1:
        raise ValueError("the adder needs at least one bit per register")
    num_qubits = 2 * num_bits + 2
    carry_in = 2 * num_bits
    carry_out = 2 * num_bits + 1
    circuit = QuantumCircuit(num_qubits, name=f"cuccaro_adder_{num_bits}")

    def a(i: int) -> int:
        return i

    def b(i: int) -> int:
        return num_bits + i

    def maj(x: int, y: int, z: int) -> None:
        circuit.append(Gate("cx", (z, y)))
        circuit.append(Gate("cx", (z, x)))
        _toffoli(circuit, x, y, z)

    def uma(x: int, y: int, z: int) -> None:
        _toffoli(circuit, x, y, z)
        circuit.append(Gate("cx", (z, x)))
        circuit.append(Gate("cx", (x, y)))

    maj(carry_in, b(0), a(0))
    for i in range(1, num_bits):
        maj(a(i - 1), b(i), a(i))
    circuit.append(Gate("cx", (a(num_bits - 1), carry_out)))
    for i in range(num_bits - 1, 0, -1):
        uma(a(i - 1), b(i), a(i))
    uma(carry_in, b(0), a(0))
    return circuit


def ising_model_circuit(num_qubits: int, trotter_steps: int = 3) -> QuantumCircuit:
    """Trotterised 1-D transverse-field Ising evolution.

    Each step applies an RZZ on every nearest-neighbour pair followed by an RX
    mixer, the same structure as the paper's ``ising_model_10`` benchmark
    (which needs zero SWAPs on any line-containing device).
    """
    if num_qubits < 2:
        raise ValueError("the Ising chain needs at least two qubits")
    if trotter_steps < 1:
        raise ValueError("need at least one Trotter step")
    circuit = QuantumCircuit(num_qubits, name=f"ising_model_{num_qubits}")
    for _ in range(trotter_steps):
        for qubit in range(num_qubits - 1):
            circuit.append(Gate("rzz", (qubit, qubit + 1), ("theta",)))
        for qubit in range(num_qubits):
            circuit.append(Gate("rx", (qubit,), ("phi",)))
    return circuit


def hidden_shift_circuit(shift: str) -> QuantumCircuit:
    """A hidden-shift style circuit over ``len(shift)`` qubits.

    CZ gates connect qubit pairs ``(2i, 2i+1)``; the shift string controls
    which qubits receive X gates.  The interaction graph is a perfect
    matching, the easiest non-trivial routing instance.
    """
    if not shift or any(bit not in "01" for bit in shift):
        raise ValueError("shift must be a non-empty bitstring")
    num_qubits = len(shift)
    circuit = QuantumCircuit(num_qubits, name=f"hidden_shift_{shift}")
    for qubit in range(num_qubits):
        circuit.append(Gate("h", (qubit,)))
    for index, bit in enumerate(shift):
        if bit == "1":
            circuit.append(Gate("x", (index,)))
    for qubit in range(0, num_qubits - 1, 2):
        circuit.append(Gate("cz", (qubit, qubit + 1)))
    for index, bit in enumerate(shift):
        if bit == "1":
            circuit.append(Gate("x", (index,)))
    for qubit in range(num_qubits):
        circuit.append(Gate("h", (qubit,)))
    return circuit


def _toffoli(circuit: QuantumCircuit, control_a: int, control_b: int, target: int) -> None:
    """Standard 6-CNOT + T-gate decomposition of the Toffoli gate."""
    circuit.append(Gate("h", (target,)))
    circuit.append(Gate("cx", (control_b, target)))
    circuit.append(Gate("tdg", (target,)))
    circuit.append(Gate("cx", (control_a, target)))
    circuit.append(Gate("t", (target,)))
    circuit.append(Gate("cx", (control_b, target)))
    circuit.append(Gate("tdg", (target,)))
    circuit.append(Gate("cx", (control_a, target)))
    circuit.append(Gate("t", (control_b,)))
    circuit.append(Gate("t", (target,)))
    circuit.append(Gate("h", (target,)))
    circuit.append(Gate("cx", (control_a, control_b)))
    circuit.append(Gate("t", (control_a,)))
    circuit.append(Gate("tdg", (control_b,)))
    circuit.append(Gate("cx", (control_a, control_b)))
