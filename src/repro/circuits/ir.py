"""Flat structure-of-arrays circuit IR.

The object-per-gate representation (:class:`~repro.circuits.gates.Gate`
dataclasses in a Python list) is convenient at the API surface but it is the
allocation-bound bottleneck for large circuits: every property rescan is
O(n) over boxed objects, every slice copies gates one by one, and the
dependency DAG allocates a node with two Python sets per gate.

:class:`CircuitIR` stores the same information as parallel ``array``-backed
columns:

* ``op`` -- per-gate opcode, an index into a process-wide interned name table
  (:func:`opcode` / :func:`opcode_name`);
* ``qa`` / ``qb`` -- qubit operands (``qb`` is ``-1`` for one-qubit gates);
* ``cum2q`` / ``cumswap`` -- prefix counts of two-qubit gates and SWAPs, so
  any contiguous range answers its statistics in O(1);
* ``pos2q`` -- gate indices of the two-qubit gates, which makes interaction
  extraction and slicing-by-two-qubit-gates index arithmetic instead of a
  rescan;
* ``params`` -- a sparse ``{gate index: tuple of strings}`` map (most gates
  carry no parameters, so a dense column would waste a pointer per gate).

Views (:meth:`CircuitIR.view`) share the columns of their base IR and differ
only in a ``[start, stop)`` window, so slicing a circuit is O(1) and carries
the prefix arrays with it.  Views are immutable; the
:class:`~repro.circuits.circuit.QuantumCircuit` facade transparently
compacts a view into a fresh root IR if someone appends to it.  A root IR
only ever *grows*, so views taken earlier stay valid when the root appends.

Opcodes are process-local: pickling translates the ``op`` column back to
names and re-interns on load, so circuits cross process boundaries (the
service worker pool) safely.
"""

from __future__ import annotations

from array import array
from bisect import bisect_left
from typing import Iterator

from repro.circuits.gates import KNOWN_GATES

# --------------------------------------------------------------- opcode table

_OPCODE_OF: dict[str, int] = {}
_OPCODE_NAMES: list[str] = []


def opcode(name: str) -> int:
    """Intern a gate name, returning its process-wide opcode."""
    code = _OPCODE_OF.get(name)
    if code is None:
        code = len(_OPCODE_NAMES)
        _OPCODE_OF[name] = code
        _OPCODE_NAMES.append(name)
    return code


def opcode_name(code: int) -> str:
    """The gate name behind an opcode."""
    return _OPCODE_NAMES[code]


# Seed the table so the common gate set gets small, early codes.
for _name in ("swap", "barrier", "measure", *KNOWN_GATES):
    opcode(_name)

SWAP_OP = opcode("swap")

_EMPTY_PARAMS: tuple[str, ...] = ()


class CircuitIR:
    """Parallel-column gate storage with O(1) windows and cached statistics."""

    __slots__ = ("op", "qa", "qb", "cum2q", "cumswap", "pos2q", "params",
                 "start", "_stop", "max_qubit")

    def __init__(self) -> None:
        self.op = array("i")
        self.qa = array("i")
        self.qb = array("i")
        self.cum2q = array("i", [0])
        self.cumswap = array("i", [0])
        self.pos2q = array("i")
        self.params: dict[int, tuple[str, ...]] = {}
        self.start = 0
        #: ``None`` marks a growable root IR; views pin a concrete stop.
        self._stop: int | None = None
        #: Largest qubit index seen (root-wide); -1 when empty.  Used for the
        #: bulk-extend fast path, which validates once instead of per gate.
        self.max_qubit = -1

    # ----------------------------------------------------------------- window

    @property
    def stop(self) -> int:
        return len(self.op) if self._stop is None else self._stop

    @property
    def is_view(self) -> bool:
        return self._stop is not None

    def __len__(self) -> int:
        return self.stop - self.start

    def view(self, start: int, stop: int) -> "CircuitIR":
        """An O(1) immutable window ``[start, stop)`` (relative indices)."""
        absolute_start = self.start + start
        absolute_stop = self.start + stop
        if not (self.start <= absolute_start <= absolute_stop <= self.stop):
            raise IndexError(f"view [{start}:{stop}) outside 0..{len(self)}")
        sub = CircuitIR.__new__(CircuitIR)
        sub.op = self.op
        sub.qa = self.qa
        sub.qb = self.qb
        sub.cum2q = self.cum2q
        sub.cumswap = self.cumswap
        sub.pos2q = self.pos2q
        sub.params = self.params
        sub.start = absolute_start
        sub._stop = absolute_stop
        sub.max_qubit = self.max_qubit
        return sub

    def compact(self) -> "CircuitIR":
        """A fresh root IR holding exactly this window's gates."""
        start, stop = self.start, self.stop
        fresh = CircuitIR.__new__(CircuitIR)
        fresh.op = self.op[start:stop]
        fresh.qa = self.qa[start:stop]
        fresh.qb = self.qb[start:stop]
        base2q = self.cum2q[start]
        baseswap = self.cumswap[start]
        fresh.cum2q = array("i", [value - base2q
                                  for value in self.cum2q[start:stop + 1]])
        fresh.cumswap = array("i", [value - baseswap
                                    for value in self.cumswap[start:stop + 1]])
        lo = bisect_left(self.pos2q, start)
        hi = bisect_left(self.pos2q, stop)
        fresh.pos2q = array("i", [position - start
                                  for position in self.pos2q[lo:hi]])
        fresh.params = {index - start: value
                        for index, value in self.params.items()
                        if start <= index < stop}
        fresh.start = 0
        fresh._stop = None
        fresh.max_qubit = self._window_max_qubit()
        return fresh

    def _window_max_qubit(self) -> int:
        if self.start == 0 and self._stop is None:
            return self.max_qubit
        if len(self) == 0:
            return -1
        return max(max(self.qa[self.start:self.stop], default=-1),
                   max(self.qb[self.start:self.stop], default=-1))

    # --------------------------------------------------------------- mutation

    def append(self, name: str, qubits: tuple[int, ...],
               params: tuple[str, ...] = _EMPTY_PARAMS) -> None:
        """Append one gate to a root IR (raises on views)."""
        if self._stop is not None:
            raise TypeError("cannot append to an IR view; compact() it first")
        self.append_coded(opcode(name), qubits, params)

    def append_coded(self, code: int, qubits: tuple[int, ...],
                     params: tuple[str, ...] = _EMPTY_PARAMS) -> None:
        index = len(self.op)
        self.op.append(code)
        qa = qubits[0]
        if len(qubits) == 2:
            qb = qubits[1]
            self.pos2q.append(index)
            self.cum2q.append(self.cum2q[-1] + 1)
        else:
            qb = -1
            self.cum2q.append(self.cum2q[-1])
        self.qa.append(qa)
        self.qb.append(qb)
        self.cumswap.append(self.cumswap[-1] + (1 if code == SWAP_OP else 0))
        if params:
            self.params[index] = params
        if qa > self.max_qubit:
            self.max_qubit = qa
        if qb > self.max_qubit:
            self.max_qubit = qb

    def extend_ir(self, other: "CircuitIR") -> None:
        """Bulk-append another IR's window (array-level, no per-gate boxing)."""
        if self._stop is not None:
            raise TypeError("cannot extend an IR view; compact() it first")
        ostart, ostop = other.start, other.stop
        if ostart == ostop:
            return
        base = len(self.op)
        self.op.extend(other.op[ostart:ostop])
        self.qa.extend(other.qa[ostart:ostop])
        self.qb.extend(other.qb[ostart:ostop])
        shift2q = self.cum2q[-1] - other.cum2q[ostart]
        self.cum2q.extend(array("i", [value + shift2q
                                      for value in other.cum2q[ostart + 1:ostop + 1]]))
        shiftswap = self.cumswap[-1] - other.cumswap[ostart]
        self.cumswap.extend(array("i", [value + shiftswap
                                        for value in other.cumswap[ostart + 1:ostop + 1]]))
        lo = bisect_left(other.pos2q, ostart)
        hi = bisect_left(other.pos2q, ostop)
        offset = base - ostart
        self.pos2q.extend(array("i", [position + offset
                                      for position in other.pos2q[lo:hi]]))
        if other.params:
            # Snapshot first: ``other`` may share this dict (extending a
            # circuit with itself or one of its own slice views).
            window_params = [(index, value) for index, value in other.params.items()
                             if ostart <= index < ostop]
            for index, value in window_params:
                self.params[index + offset] = value
        other_max = other._window_max_qubit()
        if other_max > self.max_qubit:
            self.max_qubit = other_max

    # ---------------------------------------------------------------- queries

    def gate(self, index: int) -> tuple[str, tuple[int, ...], tuple[str, ...]]:
        """The ``(name, qubits, params)`` triple of gate ``index`` (relative)."""
        absolute = self.start + index
        if not self.start <= absolute < self.stop:
            raise IndexError(f"gate index {index} outside 0..{len(self) - 1}")
        qb = self.qb[absolute]
        qubits = (self.qa[absolute],) if qb < 0 else (self.qa[absolute], qb)
        return (opcode_name(self.op[absolute]), qubits,
                self.params.get(absolute, _EMPTY_PARAMS))

    def iter_ops(self) -> Iterator[tuple[str, tuple[int, ...], tuple[str, ...]]]:
        """Yield ``(name, qubits, params)`` per gate without building objects."""
        op, qa, qb, params = self.op, self.qa, self.qb, self.params
        names = _OPCODE_NAMES
        for index in range(self.start, self.stop):
            b = qb[index]
            qubits = (qa[index],) if b < 0 else (qa[index], b)
            yield names[op[index]], qubits, params.get(index, _EMPTY_PARAMS)

    @property
    def num_two_qubit(self) -> int:
        return self.cum2q[self.stop] - self.cum2q[self.start]

    @property
    def num_swaps(self) -> int:
        return self.cumswap[self.stop] - self.cumswap[self.start]

    def two_qubit_indices(self) -> array:
        """Relative indices of this window's two-qubit gates (a fresh array)."""
        lo = bisect_left(self.pos2q, self.start)
        hi = bisect_left(self.pos2q, self.stop)
        if self.start == 0:
            return self.pos2q[lo:hi]
        return array("i", [position - self.start
                           for position in self.pos2q[lo:hi]])

    def interaction_sequence(self) -> list[tuple[int, int]]:
        """Ordered ``(qa, qb)`` pairs of the window's two-qubit gates."""
        lo = bisect_left(self.pos2q, self.start)
        hi = bisect_left(self.pos2q, self.stop)
        qa, qb, pos2q = self.qa, self.qb, self.pos2q
        return [(qa[position], qb[position]) for position in pos2q[lo:hi]]

    def used_qubits(self) -> set[int]:
        used = set(self.qa[self.start:self.stop])
        used.update(self.qb[self.start:self.stop])
        used.discard(-1)
        return used

    def depth(self, num_qubits: int) -> int:
        frontier = [0] * num_qubits
        qa, qb = self.qa, self.qb
        deepest = 0
        for index in range(self.start, self.stop):
            a = qa[index]
            b = qb[index]
            if b < 0:
                level = frontier[a] + 1
                frontier[a] = level
            else:
                level = max(frontier[a], frontier[b]) + 1
                frontier[a] = level
                frontier[b] = level
            if level > deepest:
                deepest = level
        return deepest

    def slice_bounds_by_two_qubit_gates(self, slice_size: int) -> list[tuple[int, int]]:
        """``[start, stop)`` windows each holding ``slice_size`` two-qubit gates.

        Single-qubit gates travel with the two-qubit gate that follows them;
        trailing gates join the final slice.  Index arithmetic over the
        ``pos2q`` column -- no gate is ever copied or even touched.
        """
        if slice_size <= 0:
            raise ValueError("slice_size must be positive")
        total = len(self)
        lo = bisect_left(self.pos2q, self.start)
        hi = bisect_left(self.pos2q, self.stop)
        bounds: list[tuple[int, int]] = []
        cursor = 0
        for cut in range(lo + slice_size - 1, hi, slice_size):
            end = self.pos2q[cut] - self.start + 1
            bounds.append((cursor, end))
            cursor = end
        if cursor < total or not bounds:
            bounds.append((cursor, total))
        return bounds

    # ---------------------------------------------------------------- pickling

    def __getstate__(self) -> dict:
        window = self if not self.is_view else None
        source = window if window is not None else self.compact()
        return {
            "names": [opcode_name(code) for code in source.op],
            "qa": source.qa,
            "qb": source.qb,
            "params": source.params,
        }

    def __setstate__(self, state: dict) -> None:
        self.__init__()
        qa, qb, params = state["qa"], state["qb"], state["params"]
        for index, name in enumerate(state["names"]):
            b = qb[index]
            qubits = (qa[index],) if b < 0 else (qa[index], b)
            self.append(name, qubits, params.get(index, _EMPTY_PARAMS))


__all__ = [
    "CircuitIR",
    "SWAP_OP",
    "opcode",
    "opcode_name",
]
