"""Plain-text circuit rendering.

The paper's figures show circuits as wire diagrams (Fig. 3, Fig. 6, Fig. 8).
:func:`draw_circuit` produces the terminal equivalent: one row of text per
qubit, gates placed left to right in dependency columns, with two-qubit gates
drawn as connected symbols.  The CLI's ``show`` command and the examples use
it so routed circuits can be inspected without any plotting dependency.
"""

from __future__ import annotations

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.gates import Gate

#: Symbols for the "active" endpoints of common two-qubit gates.
_CONTROL_SYMBOL = "●"
_TARGET_SYMBOLS = {"cx": "⊕", "cz": "●", "swap": "✕"}
_PLAIN_TARGET_SYMBOLS = {"cx": "X", "cz": "*", "swap": "x"}


def draw_circuit(circuit: QuantumCircuit, max_columns: int | None = None,
                 unicode: bool = True) -> str:
    """Render ``circuit`` as an ASCII/Unicode wire diagram.

    Parameters
    ----------
    max_columns:
        Truncate the drawing after this many gate columns (an ellipsis row is
        appended when truncation happens).
    unicode:
        Use box-drawing symbols; set to ``False`` for a 7-bit-ASCII rendering.
    """
    columns = _layout_columns(circuit)
    truncated = False
    if max_columns is not None and len(columns) > max_columns:
        columns = columns[:max_columns]
        truncated = True

    cells = [[_wire(unicode)] * len(columns) for _ in range(circuit.num_qubits)]
    for column_index, column in enumerate(columns):
        for gate in column:
            _place_gate(cells, gate, column_index, unicode)

    width = max((len(cell) for row in cells for cell in row), default=1)
    lines = []
    for qubit in range(circuit.num_qubits):
        label = f"q{qubit}: "
        wire = _wire(unicode)
        body = wire.join(cell.center(width, wire) for cell in cells[qubit])
        suffix = " ..." if truncated else ""
        lines.append(label + body + suffix)
    return "\n".join(lines)


def gate_label(gate: Gate) -> str:
    """Short printable label of a gate (name plus any parameters)."""
    if gate.params:
        return f"{gate.name}({','.join(gate.params)})"
    return gate.name


def _layout_columns(circuit: QuantumCircuit) -> list[list[Gate]]:
    """Assign gates to columns so gates in one column act on disjoint qubits."""
    columns: list[list[Gate]] = []
    frontier = [0] * circuit.num_qubits
    for gate in circuit:
        column = max((frontier[q] for q in gate.qubits), default=0)
        while len(columns) <= column:
            columns.append([])
        columns[column].append(gate)
        for qubit in gate.qubits:
            frontier[qubit] = column + 1
    return columns


def _wire(unicode: bool) -> str:
    return "─" if unicode else "-"


def _place_gate(cells: list[list[str]], gate: Gate, column: int, unicode: bool) -> None:
    if gate.is_single_qubit:
        cells[gate.qubits[0]][column] = f"[{gate_label(gate)}]"
        return
    first, second = gate.qubits
    top, bottom = min(first, second), max(first, second)
    if gate.name in _TARGET_SYMBOLS:
        control_symbol = _CONTROL_SYMBOL if unicode else "o"
        targets = _TARGET_SYMBOLS if unicode else _PLAIN_TARGET_SYMBOLS
        target_symbol = targets[gate.name]
        if gate.name == "swap":
            cells[first][column] = target_symbol
            cells[second][column] = target_symbol
        else:
            cells[gate.qubits[0]][column] = control_symbol
            cells[gate.qubits[1]][column] = target_symbol
    else:
        label = gate_label(gate)
        cells[first][column] = f"[{label}]"
        cells[second][column] = f"[{label}]"
    # Mark the qubits strictly between the endpoints so crossings are visible.
    for qubit in range(top + 1, bottom):
        if cells[qubit][column] == _wire(unicode):
            cells[qubit][column] = "│" if unicode else "|"


def circuit_summary(circuit: QuantumCircuit) -> str:
    """A one-paragraph textual summary of a circuit's size and composition."""
    gate_names: dict[str, int] = {}
    for gate in circuit:
        gate_names[gate.name] = gate_names.get(gate.name, 0) + 1
    composition = ", ".join(f"{name}: {count}" for name, count in sorted(gate_names.items()))
    return (f"{circuit.name}: {circuit.num_qubits} qubits, {len(circuit)} gates "
            f"({circuit.num_two_qubit_gates} two-qubit, depth {circuit.depth()}) "
            f"[{composition}]")
