"""Structured operational event logging: leveled, field-typed JSONL.

An :class:`EventLog` replaces ad-hoc prints with queryable records: every
job failure, worker restart, cache eviction, and admission rejection
becomes one JSON object with a level, a wall-clock timestamp, typed fields,
and -- when a span is active on the calling thread -- the trace/span ids
that correlate the event to its trace.  Records land in a bounded
in-memory ring (served at ``/v1/events``) and, when a directory is given,
in size-rotated JSONL files via :class:`~repro.obs.export.JsonlWriter`
(per-``owner`` filenames, so a fleet shares one ``--events-dir`` safely).

Emitting is cheap and never raises into the caller: a failing file sink
disables itself and counts the failure rather than aborting the job that
triggered the event.
"""

from __future__ import annotations

import os
import threading
import time
from collections import deque
from pathlib import Path

from repro.obs.export import JsonlWriter, read_jsonl
from repro.obs.trace import current_span

__all__ = ["EventLog", "LEVELS", "read_events"]

#: Severity order; emit() refuses levels below the log's threshold.
LEVELS = {"debug": 10, "info": 20, "warning": 30, "error": 40}


def _coerce(value):
    """Force a field value to a JSON scalar (field-typed, never lossy-crashy)."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    return repr(value)


class EventLog:
    """Bounded in-memory event ring with an optional rotating JSONL sink.

    Parameters
    ----------
    directory:
        When set, events append to ``events.jsonl`` under it (size-rotated;
        see :class:`~repro.obs.export.JsonlWriter`).  ``None`` keeps events
        in memory only.
    owner:
        Per-writer tag for shared directories (fleet workers pass
        ``shard-N``, the dispatcher ``dispatcher``).
    level:
        Minimum severity recorded (``debug`` records everything).
    max_events:
        In-memory ring capacity; the file sink is unaffected.
    """

    def __init__(self, directory: str | Path | None = None,
                 filename: str = "events.jsonl",
                 max_bytes: int = 16 * 1024 * 1024,
                 owner: str | None = None, level: str = "debug",
                 max_events: int = 2048, clock=time.time) -> None:
        if level not in LEVELS:
            raise ValueError(f"unknown level {level!r}; "
                             f"pick one of {sorted(LEVELS)}")
        if max_events <= 0:
            raise ValueError("max_events must be positive")
        self.level = level
        self.owner = owner
        self._clock = clock
        self._lock = threading.Lock()
        self._ring: deque[dict] = deque(maxlen=max_events)
        #: Emitted events per (level, event) pair; exact despite eviction.
        self.counts: dict[tuple[str, str], int] = {}
        self.dropped = 0  # below-threshold emits
        self.sink_errors = 0
        self._sink = (JsonlWriter(directory, filename=filename,
                                  max_bytes=max_bytes, owner=owner)
                      if directory is not None else None)

    @property
    def path(self) -> Path | None:
        return self._sink.path if self._sink is not None else None

    # -------------------------------------------------------------- emitting

    def emit(self, event: str, level: str = "info", **fields) -> dict | None:
        """Record one event; returns the record, or ``None`` if filtered.

        The active span (if any) stamps ``trace_id``/``span_id`` onto the
        record so ``repro trace`` and the event stream cross-reference;
        explicit ``trace_id=...`` fields win over the ambient span.
        """
        severity = LEVELS.get(level)
        if severity is None:
            raise ValueError(f"unknown level {level!r}")
        if severity < LEVELS[self.level]:
            with self._lock:
                self.dropped += 1
            return None
        record = {"ts": self._clock(), "level": level, "event": event,
                  "pid": os.getpid()}
        if self.owner is not None:
            record["owner"] = self.owner
        span = current_span()
        if span is not None:
            record["trace_id"] = span.trace_id
            record["span_id"] = span.span_id
        for key, value in fields.items():
            record[key] = _coerce(value)
        with self._lock:
            self._ring.append(record)
            key = (level, event)
            self.counts[key] = self.counts.get(key, 0) + 1
        if self._sink is not None:
            try:
                self._sink.write_record(record)
            except OSError:
                # A full or vanished disk must not fail the job that was
                # merely being narrated; keep the ring, drop the sink.
                self.sink_errors += 1
                self._sink = None
        return record

    # --------------------------------------------------------------- queries

    def tail(self, limit: int = 50, level: str | None = None,
             event: str | None = None) -> list[dict]:
        """Most recent matching events, oldest first."""
        if level is not None and level not in LEVELS:
            raise ValueError(f"unknown level {level!r}")
        floor = LEVELS[level] if level is not None else 0
        with self._lock:
            records = list(self._ring)
        matching = [record for record in records
                    if LEVELS[record["level"]] >= floor
                    and (event is None or record["event"] == event)]
        return matching[-max(0, limit):]

    def counts_by_level(self) -> dict[str, int]:
        with self._lock:
            totals: dict[str, int] = {}
            for (level, _), count in self.counts.items():
                totals[level] = totals.get(level, 0) + count
        return totals

    def __len__(self) -> int:
        with self._lock:
            return len(self._ring)


def read_events(directory: str | Path,
                filename: str = "events.jsonl") -> list[dict]:
    """Load every event record any log left under ``directory``."""
    return read_jsonl(directory, filename)
