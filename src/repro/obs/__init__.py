"""Observability core: tracing, metrics, SLOs, events, and profiling.

``repro.obs`` is the dependency-free telemetry substrate the rest of the
repository builds on:

* :mod:`repro.obs.trace` -- nested spans with monotonic durations and a
  context that crosses process boundaries (the worker pool serialises a span
  context into the job payload and reattaches the finished subtree), plus a
  tree renderer and a structural validator;
* :mod:`repro.obs.metrics` -- counters, gauges, and fixed-bucket histograms
  behind a :class:`MetricsRegistry`, rendered as Prometheus text exposition;
* :mod:`repro.obs.promcheck` -- a small text-format checker (HELP/TYPE
  pairing, label escaping, monotone histogram buckets ending in ``+Inf``,
  ``_sum``/``_count`` consistency) used by the tests and the CI smoke gate;
* :mod:`repro.obs.export` -- size-rotated, multi-writer-safe JSONL
  persistence for traces and other record streams;
* :mod:`repro.obs.slo` -- rolling-window SLO tracking: streaming latency
  quantiles over fixed-bucket CDFs, availability, error-budget burn rate;
* :mod:`repro.obs.events` -- leveled, field-typed structured event logs
  correlated to the active trace;
* :mod:`repro.obs.sampling` -- tail-based trace sampling that keeps every
  error/deadline/slow trace and probabilistically samples the fast ones;
* :mod:`repro.obs.profiler` -- an on-demand wall-clock sampling profiler
  producing collapsed stacks (flamegraph input);
* :mod:`repro.obs.dashboard` -- the ``repro top`` live fleet dashboard.

The module deliberately imports nothing from the rest of ``repro`` so every
layer -- the SAT core included -- can emit spans without import cycles.
"""

from repro.obs.dashboard import normalize_snapshot, render_dashboard, run_top
from repro.obs.events import EventLog, read_events
from repro.obs.export import JsonlTraceWriter, JsonlWriter, read_jsonl, read_traces
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    quantile_from_counts,
    render_families,
)
from repro.obs.profiler import SamplingProfiler, profile
from repro.obs.promcheck import check_exposition, parse_exposition
from repro.obs.sampling import SamplingDecision, TailSampler
from repro.obs.slo import (
    SloObjective,
    SloTracker,
    merge_slo_statuses,
    mirror_slo,
)
from repro.obs.trace import (
    Span,
    Tracer,
    activate,
    add_attributes,
    current_span,
    current_tracer,
    find_span,
    record,
    render_trace,
    span,
    span_names,
    validate_trace,
)

__all__ = [
    "Span",
    "Tracer",
    "activate",
    "add_attributes",
    "current_span",
    "current_tracer",
    "find_span",
    "record",
    "render_trace",
    "span",
    "span_names",
    "validate_trace",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "quantile_from_counts",
    "render_families",
    "check_exposition",
    "parse_exposition",
    "JsonlTraceWriter",
    "JsonlWriter",
    "read_jsonl",
    "read_traces",
    "SloObjective",
    "SloTracker",
    "merge_slo_statuses",
    "mirror_slo",
    "EventLog",
    "read_events",
    "SamplingDecision",
    "TailSampler",
    "SamplingProfiler",
    "profile",
    "normalize_snapshot",
    "render_dashboard",
    "run_top",
]
