"""Observability core: tracing, histogram metrics, and exposition tooling.

``repro.obs`` is the dependency-free telemetry substrate the rest of the
repository builds on:

* :mod:`repro.obs.trace` -- nested spans with monotonic durations and a
  context that crosses process boundaries (the worker pool serialises a span
  context into the job payload and reattaches the finished subtree), plus a
  tree renderer and a structural validator;
* :mod:`repro.obs.metrics` -- counters, gauges, and fixed-bucket histograms
  behind a :class:`MetricsRegistry`, rendered as Prometheus text exposition;
* :mod:`repro.obs.promcheck` -- a small text-format checker (HELP/TYPE
  pairing, label escaping, monotone histogram buckets ending in ``+Inf``,
  ``_sum``/``_count`` consistency) used by the tests and the CI smoke gate;
* :mod:`repro.obs.export` -- size-rotated JSONL persistence for finished
  traces (``repro serve --trace-dir``).

The module deliberately imports nothing from the rest of ``repro`` so every
layer -- the SAT core included -- can emit spans without import cycles.
"""

from repro.obs.export import JsonlTraceWriter, read_traces
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    render_families,
)
from repro.obs.promcheck import check_exposition, parse_exposition
from repro.obs.trace import (
    Span,
    Tracer,
    activate,
    add_attributes,
    current_tracer,
    find_span,
    record,
    render_trace,
    span,
    span_names,
    validate_trace,
)

__all__ = [
    "Span",
    "Tracer",
    "activate",
    "add_attributes",
    "current_tracer",
    "find_span",
    "record",
    "render_trace",
    "span",
    "span_names",
    "validate_trace",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "render_families",
    "check_exposition",
    "parse_exposition",
    "JsonlTraceWriter",
    "read_traces",
]
