"""Nested spans, tracers, and cross-process span context.

A :class:`Span` is one timed region of a job's life: it has a name, a
wall-clock start, a duration measured on the monotonic clock, free-form
attributes (SAT counters, swap counts, router names), and children.  A
:class:`Tracer` assembles spans into per-job trees and keeps the most recent
finished trees in a bounded store.

Two propagation mechanisms cover the whole pipeline:

* **In-process** -- :func:`activate` installs a tracer in a
  :class:`contextvars.ContextVar`, and the module-level :func:`span` /
  :func:`record` / :func:`add_attributes` helpers attach to the active
  tracer's current span.  When no tracer is active they are no-ops (a single
  context-variable read), so instrumented library code costs nothing in
  untraced runs.
* **Cross-process** -- a span's :meth:`Span.context` is a small dict
  (``trace_id`` + ``span_id``) that survives pickling inside a job payload.
  The worker builds its own subtree under a fresh tracer, serialises it with
  :meth:`Span.to_dict`, and the parent process grafts it back with
  :meth:`Tracer.attach_tree`.  Wall-clock starts come from ``time.time()``
  (one machine-wide clock, comparable across processes); durations come from
  ``time.monotonic()`` differences, so spans never go negative when NTP
  steps the wall clock.

:func:`validate_trace` checks the structural invariant the CI smoke gate
relies on -- every child interval nests inside its parent's -- and
:func:`render_trace` prints the indented tree ``repro trace`` shows.
"""

from __future__ import annotations

import itertools
import json
import os
import threading
import time
from contextlib import contextmanager
from contextvars import ContextVar

__all__ = [
    "Span",
    "Tracer",
    "activate",
    "add_attributes",
    "current_tracer",
    "current_span",
    "find_span",
    "record",
    "render_trace",
    "span",
    "span_names",
    "validate_trace",
]

#: Process-unique id prefix: spans minted by different processes (pool
#: workers) must never collide when grafted into one tree.
_ID_PREFIX = f"{os.getpid():x}"
_ID_COUNTER = itertools.count(1)


def _new_id() -> str:
    return f"{_ID_PREFIX}-{next(_ID_COUNTER):x}"


class Span:
    """One timed, attributed, nestable region of work.

    ``start`` is wall-clock epoch seconds (``time.time()``); ``duration`` is
    seconds measured from the monotonic clock.  A span is *open* until
    :meth:`finish` stamps its duration.
    """

    __slots__ = ("name", "trace_id", "span_id", "start", "duration",
                 "attributes", "children", "_mono_start")

    def __init__(self, name: str, trace_id: str | None = None,
                 span_id: str | None = None, start: float | None = None,
                 duration: float | None = None, attributes: dict | None = None,
                 ) -> None:
        self.name = name
        self.trace_id = trace_id or _new_id()
        self.span_id = span_id or _new_id()
        now = time.time()
        self.start = now if start is None else float(start)
        self.duration = duration
        self.attributes: dict = dict(attributes or {})
        self.children: list[Span] = []
        # A span opened with an explicit earlier start (the gateway stamps
        # roots with the request arrival time) anchors its monotonic base
        # back by the same offset, so finish() measures from that start.
        self._mono_start = time.monotonic() - max(0.0, now - self.start)

    # ------------------------------------------------------------- lifecycle

    def finish(self, **attributes) -> "Span":
        """Stamp the duration (idempotent) and merge final attributes."""
        if self.duration is None:
            self.duration = time.monotonic() - self._mono_start
        if attributes:
            self.attributes.update(attributes)
        return self

    def set(self, **attributes) -> "Span":
        """Merge attributes into the span."""
        self.attributes.update(attributes)
        return self

    def add_child(self, child: "Span") -> "Span":
        child.trace_id = self.trace_id
        self.children.append(child)
        return child

    # --------------------------------------------------------------- queries

    @property
    def end(self) -> float:
        """Wall-clock end; open spans report their start."""
        return self.start + (self.duration or 0.0)

    @property
    def finished(self) -> bool:
        return self.duration is not None

    def context(self) -> dict:
        """The serialisable propagation context for this span."""
        return {"trace_id": self.trace_id, "span_id": self.span_id}

    def walk(self):
        """Yield this span and every descendant, depth first."""
        yield self
        for child in list(self.children):
            yield from child.walk()

    def find(self, span_id: str) -> "Span | None":
        for candidate in self.walk():
            if candidate.span_id == span_id:
                return candidate
        return None

    # --------------------------------------------------------- serialisation

    def to_dict(self) -> dict:
        """Recursive plain-data form (JSON-serialisable)."""
        return {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "start": self.start,
            "duration": self.duration,
            "attributes": dict(self.attributes),
            "children": [child.to_dict() for child in list(self.children)],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "Span":
        span_obj = cls(
            name=str(payload.get("name", "span")),
            trace_id=payload.get("trace_id"),
            span_id=payload.get("span_id"),
            start=float(payload.get("start", 0.0)),
            duration=payload.get("duration"),
            attributes=payload.get("attributes") or {},
        )
        for child in payload.get("children", []):
            span_obj.children.append(cls.from_dict(child))
        return span_obj

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = f"{self.duration:.6f}s" if self.finished else "open"
        return f"Span({self.name!r}, {state}, children={len(self.children)})"


class Tracer:
    """Builds span trees and stores the most recent finished traces.

    The tracer is thread-safe at the level the gateway needs: the asyncio
    loop thread reads (``/metrics``, ``/v1/jobs/<id>/trace``) while one
    executor thread writes.  The per-thread *current span* stack backs the
    context-manager API; explicit-parent calls bypass it, which is what the
    batch service uses when several jobs' spans interleave in one thread.
    """

    def __init__(self, max_traces: int = 512) -> None:
        self.max_traces = max(1, max_traces)
        self._traces: dict[str, Span] = {}
        self._order: list[str] = []
        self._lock = threading.Lock()
        self._stack = threading.local()

    # ----------------------------------------------------------- span store

    def _register(self, root: Span) -> None:
        with self._lock:
            if root.trace_id in self._traces:
                return
            self._traces[root.trace_id] = root
            self._order.append(root.trace_id)
            while len(self._order) > self.max_traces:
                dropped = self._order.pop(0)
                self._traces.pop(dropped, None)

    def get(self, trace_id: str) -> Span | None:
        with self._lock:
            return self._traces.get(trace_id)

    def discard(self, trace_id: str) -> bool:
        """Drop a stored root (tail sampling evicts unsampled traces)."""
        with self._lock:
            if trace_id not in self._traces:
                return False
            del self._traces[trace_id]
            try:
                self._order.remove(trace_id)
            except ValueError:  # pragma: no cover - defensive
                pass
            return True

    def traces(self) -> list[Span]:
        """Stored roots, oldest first."""
        with self._lock:
            return [self._traces[tid] for tid in self._order
                    if tid in self._traces]

    def latest(self, name: str | None = None, **attr_filter) -> Span | None:
        """Most recent stored root matching ``name`` and attribute equality."""
        for root in reversed(self.traces()):
            if name is not None and root.name != name:
                continue
            if all(root.attributes.get(key) == value
                   for key, value in attr_filter.items()):
                return root
        return None

    # -------------------------------------------------------- span creation

    def start_trace(self, name: str, trace_id: str | None = None,
                    start: float | None = None, **attributes) -> Span:
        """Create, register, and return a new root span."""
        root = Span(name, trace_id=trace_id, start=start,
                    attributes=attributes)
        self._register(root)
        return root

    def start_span(self, name: str, parent: Span, start: float | None = None,
                   **attributes) -> Span:
        """Create an open child span under an explicit parent."""
        child = Span(name, trace_id=parent.trace_id, start=start,
                     attributes=attributes)
        with self._lock:
            parent.children.append(child)
        return child

    def record(self, name: str, parent: Span, start: float,
               duration: float, **attributes) -> Span:
        """Attach an already-measured (closed) span under ``parent``."""
        child = Span(name, trace_id=parent.trace_id, start=start,
                     duration=max(0.0, float(duration)),
                     attributes=attributes)
        with self._lock:
            parent.children.append(child)
        return child

    def attach_tree(self, tree: dict, trace_id: str | None = None,
                    parent_span_id: str | None = None) -> Span | None:
        """Graft a serialised subtree (a worker's) into a stored trace.

        Returns the attached :class:`Span`, or ``None`` when the target
        trace/parent is unknown (the subtree is then silently dropped --
        tracing must never fail a job).
        """
        subtree = Span.from_dict(tree)
        trace_id = trace_id or subtree.trace_id
        root = self.get(trace_id)
        if root is None:
            return None
        with self._lock:
            parent = root.find(parent_span_id) if parent_span_id else root
            if parent is None:
                parent = root
            subtree.trace_id = root.trace_id
            parent.children.append(subtree)
        return subtree

    # -------------------------------------------------- thread-current stack

    def _current_stack(self) -> list[Span]:
        stack = getattr(self._stack, "spans", None)
        if stack is None:
            stack = []
            self._stack.spans = stack
        return stack

    def current_span(self) -> Span | None:
        stack = self._current_stack()
        return stack[-1] if stack else None

    def push(self, span_obj: Span) -> None:
        """Make ``span_obj`` the thread's current span (for nested helpers)."""
        self._current_stack().append(span_obj)

    def pop(self, span_obj: Span) -> None:
        stack = self._current_stack()
        if stack and stack[-1] is span_obj:
            stack.pop()

    @contextmanager
    def span(self, name: str, parent: Span | None = None, **attributes):
        """Open a span as the thread's current; finish it on exit.

        With no explicit ``parent``, the span attaches under the current one
        (and becomes a new root trace if there is none).
        """
        parent = parent if parent is not None else self.current_span()
        if parent is None:
            child = self.start_trace(name, **attributes)
        else:
            child = self.start_span(name, parent, **attributes)
        self.push(child)
        try:
            yield child
        finally:
            child.finish()
            self.pop(child)


# ------------------------------------------------------------ active tracer

#: The active tracer for the current thread/context.  ``ContextVar`` values
#: are per-thread (each pool thread sees its own), which is exactly the
#: isolation a thread-mode worker pool needs.
_ACTIVE: ContextVar[Tracer | None] = ContextVar("repro_obs_tracer",
                                               default=None)


def current_tracer() -> Tracer | None:
    """The tracer installed by :func:`activate`, or ``None``."""
    return _ACTIVE.get()


def current_span() -> Span | None:
    tracer = _ACTIVE.get()
    return tracer.current_span() if tracer is not None else None


@contextmanager
def activate(tracer: Tracer, root: Span | None = None):
    """Install ``tracer`` (and optionally ``root`` as current) for the block."""
    token = _ACTIVE.set(tracer)
    if root is not None:
        tracer.push(root)
    try:
        yield tracer
    finally:
        if root is not None:
            tracer.pop(root)
        _ACTIVE.reset(token)


class _NoopSpan:
    """Inert stand-in so ``with span(...) as s: s.set(...)`` always works."""

    __slots__ = ()

    def set(self, **attributes) -> "_NoopSpan":
        return self

    def finish(self, **attributes) -> "_NoopSpan":
        return self


_NOOP_SPAN = _NoopSpan()


@contextmanager
def _noop_cm():
    yield _NOOP_SPAN


def span(name: str, **attributes):
    """Context manager: a child span of the current one, if tracing is on."""
    tracer = _ACTIVE.get()
    if tracer is None or tracer.current_span() is None:
        return _noop_cm()
    return tracer.span(name, **attributes)


def record(name: str, start: float, duration: float, **attributes) -> None:
    """Attach a closed span under the current one, if tracing is on."""
    tracer = _ACTIVE.get()
    if tracer is None:
        return
    parent = tracer.current_span()
    if parent is None:
        return
    tracer.record(name, parent, start, duration, **attributes)


def add_attributes(**attributes) -> None:
    """Merge attributes into the current span, if tracing is on."""
    tracer = _ACTIVE.get()
    if tracer is None:
        return
    parent = tracer.current_span()
    if parent is not None:
        parent.set(**attributes)


# --------------------------------------------------------------- tree tools

def _as_dict(tree: "Span | dict") -> dict:
    return tree.to_dict() if isinstance(tree, Span) else tree


def find_span(tree: "Span | dict", name: str) -> dict | None:
    """First span named ``name`` in the (serialised) tree, depth first."""
    payload = _as_dict(tree)
    if payload.get("name") == name:
        return payload
    for child in payload.get("children", []):
        found = find_span(child, name)
        if found is not None:
            return found
    return None


def span_names(tree: "Span | dict") -> list[str]:
    """Every span name in the tree, depth first (duplicates preserved)."""
    payload = _as_dict(tree)
    names = [payload.get("name", "")]
    for child in payload.get("children", []):
        names.extend(span_names(child))
    return names


def validate_trace(tree: "Span | dict", epsilon: float = 0.05) -> list[str]:
    """Structural problems of a finished trace tree (empty list = valid).

    Checks that every span is finished with a non-negative duration and that
    every child's ``[start, end]`` interval nests inside its parent's,
    within ``epsilon`` seconds of slack (two processes timestamp against the
    same system clock, but context switches between taking the wall-clock
    and monotonic readings make exact equality too strict).
    """
    problems: list[str] = []

    def visit(payload: dict, path: str) -> None:
        name = payload.get("name", "?")
        label = f"{path}/{name}"
        duration = payload.get("duration")
        if duration is None:
            problems.append(f"{label}: span is not finished")
            duration = 0.0
        elif duration < 0:
            problems.append(f"{label}: negative duration {duration}")
        start = float(payload.get("start", 0.0))
        end = start + float(duration or 0.0)
        for child in payload.get("children", []):
            child_start = float(child.get("start", 0.0))
            child_end = child_start + float(child.get("duration") or 0.0)
            child_name = child.get("name", "?")
            if child_start < start - epsilon:
                problems.append(
                    f"{label}: child {child_name!r} starts "
                    f"{start - child_start:.6f}s before its parent")
            if child_end > end + epsilon:
                problems.append(
                    f"{label}: child {child_name!r} ends "
                    f"{child_end - end:.6f}s after its parent")
            visit(child, label)

    visit(_as_dict(tree), "")
    return problems


#: Attribute keys surfaced inline by the renderer, in display order.
_RENDER_ATTRS = ("status", "router", "strategy", "slice", "iteration",
                 "cube_id", "cube", "cubes", "pruned", "workers", "mode",
                 "swaps", "conflicts", "propagations", "decisions",
                 "restarts", "learnt_retained", "clauses_streamed",
                 "cache_hit", "dedup", "solved")


def _format_value(value) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def render_trace(tree: "Span | dict", indent: str = "  ",
                 slow_threshold: float | None = None) -> str:
    """Human-readable indented tree with durations and key attributes.

    Each finished span also shows its share of the root's duration, so the
    bottleneck stage is visible without manual division.  With a
    ``slow_threshold`` (seconds), spans at or over it are flagged ``!slow``
    -- ``repro trace --slow-ms`` drives this.
    """
    root = _as_dict(tree)
    root_duration = root.get("duration") or 0.0
    lines: list[str] = []

    def visit(payload: dict, depth: int) -> None:
        duration = payload.get("duration")
        if duration is not None:
            timing = f"{duration * 1000.0:10.3f} ms"
            share = (f"{100.0 * duration / root_duration:5.1f}%"
                     if root_duration > 0 else "     -")
        else:
            timing = "      open"
            share = "     -"
        attrs = payload.get("attributes") or {}
        shown = [f"{key}={_format_value(attrs[key])}"
                 for key in _RENDER_ATTRS if key in attrs]
        extra = [f"{key}={_format_value(value)}"
                 for key, value in sorted(attrs.items())
                 if key not in _RENDER_ATTRS]
        detail = " ".join(shown + extra)
        line = (f"{timing} {share}  {indent * depth}{payload.get('name', '?')}"
                + (f"  [{detail}]" if detail else ""))
        if (slow_threshold is not None and duration is not None
                and duration >= slow_threshold):
            line += "  !slow"
        lines.append(line)
        for child in payload.get("children", []):
            visit(child, depth + 1)

    visit(root, 0)
    return "\n".join(lines)


def trace_to_jsonl(tree: "Span | dict") -> str:
    """One-line JSON form of a trace tree (what the JSONL writer appends)."""
    return json.dumps(_as_dict(tree), sort_keys=True, separators=(",", ":"))
